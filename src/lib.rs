//! # ds-upgrade — reproduction of the SOSP 2021 upgrade-failure paper
//!
//! Umbrella crate re-exporting the whole toolchain built for
//! *Understanding and Detecting Software Upgrade Failures in Distributed
//! Systems* (Zhang et al., SOSP 2021):
//!
//! - [`simnet`] — deterministic simulation substrate (the "containers");
//! - [`wire`] — protobuf-like / thrift-like serialization runtime;
//! - [`idl`] — IDL parsers for the schema languages the checker reads;
//! - [`srcmodel`] — Java-subset source model for the enum-ordinal checker;
//! - [`kvstore`], [`dfs`], [`mq`], [`coord`] — four miniature versioned
//!   distributed systems seeded with the studied upgrade bugs;
//! - [`tester`] — DUPTester, the upgrade testing framework (§6.1);
//! - [`checker`] — DUPChecker, the static incompatibility checkers (§6.2);
//! - [`study`] — the 123-failure study dataset and analysis (§2–§5).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]

pub mod prelude {
    //! One-import surface for the common workflow: pick a system, build a
    //! [`Campaign`], run cases, poke the simulator.
    //!
    //! ```no_run
    //! use ds_upgrade::prelude::*;
    //! let report = Campaign::builder(&ds_upgrade::kvstore::KvStoreSystem)
    //!     .seeds([1, 2, 3])
    //!     .run();
    //! print!("{}", report.render_table());
    //! ```

    pub use dup_checker::{
        check_corpus, check_sources, compare_files, generate, table6_specs, Severity,
    };
    pub use dup_core::{ClientOp, NodeSetup, SystemUnderTest, VersionId};
    pub use dup_idl::{parse_proto, parse_thrift};
    pub use dup_simnet::{FaultPlan, Process, Sim, SimDuration};
    pub use dup_study::{
        dataset, render_findings, render_table1, render_table2, render_table3, render_table4,
    };
    pub use dup_tester::{
        fault_plan_for, Campaign, CampaignBuilder, CampaignConfig, CampaignMetrics,
        CampaignObserver, CampaignReport, CaseOutcome, CaseResult, CaseRunner, CaseSignature,
        CaseStatus, Corpus, CoverageMap, Durability, FailureReport, FaultIntensity,
        MetricsObserver, MutationOp, NoopObserver, OpenLoopSpec, PlanNudge, ProgressObserver,
        RenderOptions, Scenario, SearchConfig, SearchInput, SearchReport, TestCase, TraceConfig,
        TraceSlice, WorkloadPlan, WorkloadSpec,
    };
}

pub use dup_checker as checker;
pub use dup_coord as coord;
pub use dup_core as core;
pub use dup_dfs as dfs;
pub use dup_idl as idl;
pub use dup_kvstore as kvstore;
pub use dup_mq as mq;
pub use dup_simnet as simnet;
pub use dup_srcmodel as srcmodel;
pub use dup_study as study;
pub use dup_tester as tester;
pub use dup_wire as wire;
