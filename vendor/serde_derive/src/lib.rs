//! Offline stand-in for `serde_derive`.
//!
//! The workspace tags a handful of study/taxonomy types with
//! `#[derive(Serialize, Deserialize)]` for downstream consumers, but nothing
//! in-tree is generic over the serde traits, so the derives can expand to
//! nothing at all: the attribute stays valid, no impls are emitted, and the
//! build needs no registry access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
