//! Strategies: deterministic value samplers.

use crate::test_runner::Rng;
use std::ops::Range;

/// A source of values of type `Value`, sampled from a deterministic RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// `prop_oneof!`: uniform choice among same-typed alternatives.
pub struct Union<T> {
    options: Vec<Box<dyn Fn(&mut Rng) -> T>>,
}

impl<T> Union<T> {
    pub fn of<S>(strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        Union {
            options: vec![Box::new(move |rng| strategy.sample(rng))],
        }
    }

    pub fn or<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.options.push(Box::new(move |rng| strategy.sample(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        (self.options[i])(rng)
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut Rng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                // Mix edge values in so boundary bugs still surface.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.below(2) == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String strategies from a simple regex subset: a sequence of atoms, each a
/// character class `[a-z0-9_]` or a literal character, optionally followed
/// by `{m,n}` or `{m}`. This covers every pattern the workspace's property
/// tests use (e.g. `"[a-z]{0,16}"`, `"[a-c]/[a-z]{1,4}"`).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut Rng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n =
                atom.min_reps + rng.below(atom.max_reps as u64 - atom.min_reps as u64 + 1) as u32;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min_reps: u32,
    max_reps: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match it.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("range start");
                            let hi = it.next().expect("range end");
                            members.extend((lo..=hi).filter(|ch| ch.is_ascii()));
                        }
                        Some(m) => {
                            if let Some(p) = prev.replace(m) {
                                members.push(p);
                            }
                        }
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    }
                }
                if let Some(p) = prev {
                    members.push(p);
                }
                assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
                members
            }
            '\\' => vec![it.next().expect("escaped char")],
            other => vec![other],
        };
        let (min_reps, max_reps) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&ch| ch != '}').collect();
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("rep min"),
                    n.trim().parse().expect("rep max"),
                ),
                None => {
                    let m = spec.trim().parse().expect("rep count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars,
            min_reps,
            max_reps,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::Rng;

    #[test]
    fn regex_subset_samples_match_shape() {
        let mut rng = Rng::from_case("regex", 0);
        for _ in 0..200 {
            let s = "[a-c]/[a-z]{1,4}".sample(&mut rng);
            let (head, tail) = s.split_once('/').expect("literal slash");
            assert_eq!(head.len(), 1);
            assert!(head.chars().all(|c| ('a'..='c').contains(&c)));
            assert!((1..=4).contains(&tail.len()));
            assert!(tail.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::from_case("ranges", 1);
        for _ in 0..500 {
            let v = (0u32..10).sample(&mut rng);
            assert!(v < 10);
            let s = (-1000i64..1000).sample(&mut rng);
            assert!((-1000..1000).contains(&s));
        }
    }

    #[test]
    fn same_case_same_sample() {
        let sample = |case| {
            let mut rng = Rng::from_case("det", case);
            crate::collection::vec(any::<u64>(), 0..9).sample(&mut rng)
        };
        assert_eq!(sample(3), sample(3));
    }
}
