//! Offline stand-in for `proptest`.
//!
//! The workspace's property tests use a small, well-defined slice of the
//! proptest API: `proptest! { #[test] fn f(x in strategy, ...) { ... } }`
//! with integer-range, `any::<T>()`, tuple, `Just`, `prop_oneof!`,
//! `collection::vec`, simple-regex string strategies, and `prop_map`. This
//! crate reimplements exactly that slice as a deterministic sampler: every
//! case is derived from a fixed per-case seed (SplitMix64), so runs are
//! reproducible without a registry or a persisted regression file. The case
//! count honors `PROPTEST_CASES` (default 64), matching how CI pins it.
//!
//! There is no shrinking: a failing case panics with the sampled inputs in
//! the assertion message, which the deterministic seeding makes replayable.

pub mod strategy;

pub mod test_runner {
    /// Deterministic SplitMix64 stream, seeded per test case.
    #[derive(Clone)]
    pub struct Rng(u64);

    impl Rng {
        pub fn from_case(test_name: &str, case: u32) -> Self {
            // Stable per-test stream: hash the test name, mix in the case.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            Rng(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test macro: expands each property into a plain `#[test]` looping over
/// deterministic cases. The written attributes (`#[test]`, doc comments) are
/// re-emitted verbatim.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut rng =
                        $crate::test_runner::Rng::from_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Chooses uniformly among the listed strategies (all with the same value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let union = $crate::strategy::Union::of($first);
        $(let union = union.or($rest);)*
        union
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
