//! Offline stand-in for `criterion`.
//!
//! Bench targets keep their `criterion_group!`/`criterion_main!` shape, but
//! in registry-less environments this harness runs them as a timing smoke
//! test: each benchmark executes a warm-up pass plus enough timed samples to
//! get a stable mean, then prints one line per benchmark in the shape
//! `scripts/bench_smoke.sh` parses:
//!
//! ```text
//!   group/name: mean 1.234ms/iter, min 1.100ms/iter (50 iters)
//! ```
//!
//! Fast routines are batched so per-sample timer overhead does not swamp
//! the numbers; slow routines (whole campaigns) still get at least two timed
//! samples so min and mean are both meaningful.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target accumulated measurement time per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(600);
/// Never take more samples than this (fast routines hit `TARGET_TIME` first).
const MAX_SAMPLES: usize = 50;
/// Every benchmark gets at least this many timed samples, however slow.
const MIN_SAMPLES: usize = 2;
/// Batch fast routines until one batch takes at least this long.
const MIN_BATCH_TIME: Duration = Duration::from_micros(200);

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&name.into(), None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: Option<usize>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Handed to the closure registered with `bench_function`; `iter`/
/// `iter_batched` time the routine and stash the samples.
pub struct Bencher {
    sample_size: Option<usize>,
    samples: Vec<Duration>,
    batch: u32,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: batch fast routines so timer overhead
        // stays out of the numbers.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let batch = if once < MIN_BATCH_TIME {
            (MIN_BATCH_TIME.as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        } else {
            1
        };
        let max_samples = self.sample_size.unwrap_or(MAX_SAMPLES).max(MIN_SAMPLES);
        let deadline = Instant::now() + TARGET_TIME;
        while self.samples.len() < max_samples
            && (self.samples.len() < MIN_SAMPLES || Instant::now() < deadline)
        {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
        self.batch = batch;
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let max_samples = self.sample_size.unwrap_or(MAX_SAMPLES).max(MIN_SAMPLES);
        let deadline = Instant::now() + TARGET_TIME;
        while self.samples.len() < max_samples
            && (self.samples.len() < MIN_SAMPLES || Instant::now() < deadline)
        {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
        self.batch = 1;
    }
}

fn run_benchmark(name: &str, sample_size: Option<usize>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
        batch: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().expect("non-empty samples");
    println!(
        "  {name}: mean {}/iter, min {}/iter ({} iters)",
        format_duration(mean),
        format_duration(min),
        bencher.samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Expands to a function running every listed benchmark against one
/// `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
