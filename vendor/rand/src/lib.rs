//! Offline placeholder for the `rand` crate.
//!
//! The workspace declares `rand` in a couple of manifests but never calls
//! into it — all randomness goes through the deterministic `SimRng` in
//! `dup-simnet`. This empty crate satisfies the dependency edges without
//! touching any registry.
