//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in environments with no registry access, so the
//! handful of external crates it leans on are vendored as minimal,
//! API-compatible subsets. This one provides [`Bytes`]: a cheaply clonable,
//! immutable byte container. Static slices are carried by reference (no
//! allocation — the simulator's steady-state hot path depends on
//! `Bytes::from_static` + `clone` staying allocation-free); owned payloads
//! are shared behind an `Arc`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty `Bytes`. Does not allocate.
    #[inline]
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice. Does not allocate, and neither do clones.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies `data` into a new shared allocation.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_agree() {
        let a = Bytes::from_static(b"payload");
        let b = Bytes::copy_from_slice(b"payload");
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert!(!a.is_empty());
        assert_eq!(&a[..3], b"pay");
    }

    #[test]
    fn from_vec_roundtrips() {
        let v = vec![1u8, 2, 3];
        let b = Bytes::from(v.clone());
        assert_eq!(b, v);
        let c = b.clone();
        assert_eq!(c, b);
    }
}
