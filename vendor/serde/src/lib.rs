//! Offline stand-in for `serde`.
//!
//! Provides the two trait names plus the derive macros (re-exported from the
//! vendored `serde_derive`, which expands them to nothing). Nothing in this
//! workspace is generic over these traits; the derives on study/taxonomy
//! types exist for downstream consumers and stay syntactically valid.

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    /// Marker counterpart of `serde::ser::Serialize`.
    pub trait Serialize {}
}

pub mod de {
    /// Marker counterpart of `serde::de::Deserialize`.
    pub trait Deserialize<'de> {}
}
