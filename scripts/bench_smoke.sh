#!/usr/bin/env bash
# Smoke-run the simulator criterion benchmarks and emit BENCH_simnet.json
# at the repo root: the parsed per-benchmark numbers from this run, plus the
# recorded pre/post numbers of the allocation-free hot-path PR for context.
#
# Non-gating: CI runs this in a separate job and uploads the JSON as an
# artifact; a slow container never fails the build. Locally:
#
#   ./scripts/bench_smoke.sh
#
# The parser accepts both output shapes:
#   - real criterion:  "simnet/name ... time: [low mid high]"
#   - the offline smoke harness: "  name: 1.234ms/iter (50 iters)"
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=BENCH_simnet.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Criterion's default run already keeps these benches to smoke-test length
# (sample_size is pinned down in the bench file); no extra flags needed.
cargo bench -p dup-bench --bench perf_simnet 2>&1 | tee "$RAW"

python3 - "$RAW" "$OUT" <<'PYEOF'
import json
import re
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
text = open(raw_path, encoding="utf-8", errors="replace").read()

UNITS = {"ns": 1.0, "us": 1e3, "µs": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value: str, unit: str) -> float:
    return float(value) * UNITS[unit]


results = {}

# Offline smoke harness: "  name: 1.234ms/iter (50 iters)"
for m in re.finditer(
    r"^\s+([\w/]+):\s+([\d.]+)(ns|us|µs|ms|s)/iter \((\d+) iters\)",
    text,
    re.M,
):
    name, value, unit, iters = m.groups()
    results[name] = {"mean_ns": round(to_ns(value, unit), 1), "iters": int(iters)}

# Real criterion: "simnet/name\n ... time:   [1.10 ms 1.15 ms 1.21 ms]"
for m in re.finditer(
    r"^([\w/ -]+?)\s*\n\s+time:\s+\[([\d.]+) (\w+) ([\d.]+) (\w+) ([\d.]+) (\w+)\]",
    text,
    re.M,
):
    name = m.group(1).strip().split("/")[-1]
    results[name] = {
        "low_ns": round(to_ns(m.group(2), m.group(3)), 1),
        "mean_ns": round(to_ns(m.group(4), m.group(5)), 1),
        "high_ns": round(to_ns(m.group(6), m.group(7)), 1),
    }

if not results:
    sys.exit("bench_smoke: no benchmark results parsed from criterion output")
for expected in ("faulty_ping_pong", "crashy_upgrade", "traced_ping_pong"):
    if expected not in results:
        print(f"bench_smoke: warning: {expected} missing from results", file=sys.stderr)

report = {
    "schema": "bench-smoke-v1",
    "benchmark": "perf_simnet",
    "generated_by": "scripts/bench_smoke.sh",
    "results": results,
    # Recorded numbers for the allocation-free hot-path change (8 runs each
    # on the same machine, release profile): HostId-interned storage, pooled
    # effect buffers, slab client inboxes, O(1) log-level counts.
    "hot_path_pr": {
        "ping_pong_10k_messages": {
            "before": {"min_ns": 1594071, "mean_ns": 2065239, "runs": 8},
            "after": {"min_ns": 1123287, "mean_ns": 1272455, "runs": 8},
            "improvement_min_pct": 29.5,
            "improvement_mean_pct": 38.4,
        },
        "dispatch_single_message": {"after": {"mean_ns": 140, "runs": 8}},
        "timer_message_storm": {"after": {"mean_ns": 1809324, "runs": 8}},
    },
    # Recorded numbers for the causal trace recorder (4 runs each on the same
    # machine, release profile): traced_ping_pong is ping_pong_10k_messages
    # with the recorder enabled at the default 4096-slot ring, so the delta is
    # the full per-event recording cost (packed 40-byte slot store, no
    # allocation). Disabled-mode overhead is one predictable branch per record
    # site; the alloc-free dispatch test pins it at zero allocations and the
    # untraced digests are byte-identical to the pre-trace simulator.
    "trace_pr": {
        "ping_pong_10k_messages": {"mean_ns": 1309658, "min_ns": 1125796, "runs": 4},
        "traced_ping_pong": {"mean_ns": 1359037, "min_ns": 1184999, "runs": 4},
        "tracing_enabled_overhead_mean_pct": 3.8,
    },
}

with open(out_path, "w", encoding="utf-8") as f:
    json.dump(report, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"bench_smoke: wrote {out_path} with {len(results)} result(s)")
PYEOF
