#!/usr/bin/env bash
# Smoke-run the simulator criterion benchmarks and emit BENCH_simnet.json
# at the repo root: the parsed per-benchmark numbers from this run, plus the
# recorded pre/post numbers of the allocation-free hot-path PR for context.
#
# CI runs this in a separate job, uploads the JSON as an artifact, and gates
# on the campaign_scaling family: threads_4 must not lose to threads_1
# (beyond a small coordination tax on single-CPU runners — the JSON records
# `cpus` so the gate can tell). Locally:
#
#   ./scripts/bench_smoke.sh
#
# The parser accepts all three output shapes:
#   - real criterion:        "simnet/name ... time: [low mid high]"
#   - offline smoke harness: "  group/name: mean 1.2ms/iter, min 1.1ms/iter (50 iters)"
#   - its older single-stat form: "  name: 1.234ms/iter (50 iters)"
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=BENCH_simnet.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Criterion's default run already keeps these benches to smoke-test length
# (sample_size is pinned down in the bench file); no extra flags needed.
cargo bench -p dup-bench --bench perf_simnet 2>&1 | tee "$RAW"

python3 - "$RAW" "$OUT" <<'PYEOF'
import json
import os
import re
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
text = open(raw_path, encoding="utf-8", errors="replace").read()

UNITS = {"ns": 1.0, "us": 1e3, "µs": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value: str, unit: str) -> float:
    return float(value) * UNITS[unit]


results = {}

# Offline smoke harness:
#   "  group/name: mean 1.234ms/iter, min 1.100ms/iter (50 iters)"
for m in re.finditer(
    r"^\s+([\w/]+):\s+mean ([\d.]+)(ns|us|µs|ms|s)/iter,"
    r" min ([\d.]+)(ns|us|µs|ms|s)/iter \((\d+) iters\)",
    text,
    re.M,
):
    name, mean, mean_u, mn, mn_u, iters = m.groups()
    results[name] = {
        "mean_ns": round(to_ns(mean, mean_u), 1),
        "min_ns": round(to_ns(mn, mn_u), 1),
        "iters": int(iters),
    }

# The harness's older single-stat form: "  name: 1.234ms/iter (50 iters)"
for m in re.finditer(
    r"^\s+([\w/]+):\s+([\d.]+)(ns|us|µs|ms|s)/iter \((\d+) iters\)",
    text,
    re.M,
):
    name, value, unit, iters = m.groups()
    results.setdefault(
        name, {"mean_ns": round(to_ns(value, unit), 1), "iters": int(iters)}
    )

# Real criterion: "simnet/name\n ... time:   [1.10 ms 1.15 ms 1.21 ms]"
for m in re.finditer(
    r"^([\w/ -]+?)\s*\n\s+time:\s+\[([\d.]+) (\w+) ([\d.]+) (\w+) ([\d.]+) (\w+)\]",
    text,
    re.M,
):
    name = m.group(1).strip()
    results[name] = {
        "low_ns": round(to_ns(m.group(2), m.group(3)), 1),
        "mean_ns": round(to_ns(m.group(4), m.group(5)), 1),
        "high_ns": round(to_ns(m.group(6), m.group(7)), 1),
    }

if not results:
    sys.exit("bench_smoke: no benchmark results parsed from criterion output")
for expected in (
    "simnet/faulty_ping_pong",
    "simnet/crashy_upgrade",
    "simnet/traced_ping_pong",
    "simnet/snapshot_restore",
    "campaign_scaling/threads_1",
    "campaign_scaling/threads_4",
    "campaign_snapshot/off",
    "campaign_snapshot/on",
    "rollout_plans/paper",
    "rollout_plans/extended",
    "open_loop_traffic/1k_clients",
    "open_loop_traffic/1m_clients",
):
    if expected not in results:
        print(f"bench_smoke: warning: {expected} missing from results", file=sys.stderr)
for name, stats in results.items():
    if name.split("/")[0] in ("campaign_kvstore", "campaign_scaling", "campaign_snapshot", "rollout_plans", "open_loop_traffic"):
        if stats.get("iters", 0) < 2:
            sys.exit(f"bench_smoke: {name} ran {stats.get('iters')} iteration(s); need >=2")
        if "min_ns" not in stats:
            sys.exit(f"bench_smoke: {name} lacks a min — parser/harness drift?")

# Client-count independence: logical clients are arithmetic, so the
# million-client open-loop case must price like the thousand-client one.
# Same-box ratio, so it is noise-robust; still only a warning here — the CI
# gate (env-aware, cpus-keyed tolerance) is the enforcing copy.
ol_1k = results.get("open_loop_traffic/1k_clients")
ol_1m = results.get("open_loop_traffic/1m_clients")
if ol_1k and ol_1m:
    ratio = ol_1m["mean_ns"] / max(ol_1k["mean_ns"], 1.0)
    print(f"bench_smoke: open_loop 1m/1k mean ratio {ratio:.2f}")
    if ratio > 1.25:
        print(
            f"bench_smoke: warning: 1m_clients is {ratio:.2f}x 1k_clients "
            "(>1.25) — client count may be leaking into per-arrival work",
            file=sys.stderr,
        )

report = {
    "schema": "bench-smoke-v2",
    "benchmark": "perf_simnet",
    "generated_by": "scripts/bench_smoke.sh",
    # Worker-scaling numbers are only meaningful relative to the cores the
    # run actually had; the CI gate keys its threshold on this.
    "cpus": os.cpu_count() or 1,
    "results": results,
    # Recorded numbers for the allocation-free hot-path change (8 runs each
    # on the same machine, release profile): HostId-interned storage, pooled
    # effect buffers, slab client inboxes, O(1) log-level counts.
    "hot_path_pr": {
        "ping_pong_10k_messages": {
            "before": {"min_ns": 1594071, "mean_ns": 2065239, "runs": 8},
            "after": {"min_ns": 1123287, "mean_ns": 1272455, "runs": 8},
            "improvement_min_pct": 29.5,
            "improvement_mean_pct": 38.4,
        },
        "dispatch_single_message": {"after": {"mean_ns": 140, "runs": 8}},
        "timer_message_storm": {"after": {"mean_ns": 1809324, "runs": 8}},
    },
    # Recorded numbers for the causal trace recorder (4 runs each on the same
    # machine, release profile): traced_ping_pong is ping_pong_10k_messages
    # with the recorder enabled at the default 4096-slot ring, so the delta is
    # the full per-event recording cost (packed 40-byte slot store, no
    # allocation). Disabled-mode overhead is one predictable branch per record
    # site; the alloc-free dispatch test pins it at zero allocations and the
    # untraced digests are byte-identical to the pre-trace simulator.
    "trace_pr": {
        "ping_pong_10k_messages": {"mean_ns": 1309658, "min_ns": 1125796, "runs": 4},
        "traced_ping_pong": {"mean_ns": 1359037, "min_ns": 1184999, "runs": 4},
        "tracing_enabled_overhead_mean_pct": 3.8,
    },
    # Recorded numbers for the snapshot-and-fork change (same machine,
    # release profile): campaign_snapshot runs the identical 32-seed mq
    # sweep with per-case from-scratch execution (`off`) and with each
    # group's shared prefix executed once, snapshotted, and forked per seed
    # (`on`). Reports are byte-identical either way; CI gates `on` vs `off`
    # in the workflow. snapshot_restore is the fixed per-fork cost: one
    # capture + restore of a warm 8-node world into pooled buffers (~0.5µs,
    # vs ~hundreds of µs for re-running a prefix).
    "snapshot_pr": {
        "campaign_snapshot/off": {"mean_ns": 18996000, "min_ns": 17797000, "runs": 1},
        "campaign_snapshot/on": {"mean_ns": 10231000, "min_ns": 9690000, "runs": 1},
        "snapshot_restore": {"mean_ns": 608, "min_ns": 442, "runs": 1},
        "snapshot_on_speedup_mean_pct": 46.1,
    },
}

with open(out_path, "w", encoding="utf-8") as f:
    json.dump(report, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"bench_smoke: wrote {out_path} with {len(results)} result(s)")
PYEOF

# Regenerate the coverage-guided search efficiency artifact (deterministic:
# fixed seeds and repetition counts, no timestamps — reruns byte-identical).
cargo run --release -q -p dup-tester --example search_efficiency
if [ ! -f SEARCH_efficiency.json ]; then
    echo "bench_smoke: warning: SEARCH_efficiency.json missing after regeneration" >&2
fi
