//! The [`SystemUnderTest`] implementation for the mini message queue.

use crate::node::Broker;
use dup_core::{
    ClientOp, NodeSetup, SystemUnderTest, TranslationTable, UnitStatement, UnitTest, VersionId,
    WorkloadPhase,
};
use dup_simnet::Process;

/// The mini Kafka-like broker cluster as a DUPTester subject.
#[derive(Debug, Default, Clone, Copy)]
pub struct MqSystem;

impl MqSystem {
    /// The release history, oldest first.
    pub fn release_history() -> Vec<VersionId> {
        ["0.11.0", "1.0.0", "2.1.0", "2.3.0", "2.4.0"]
            .iter()
            .map(|s| s.parse().expect("static version strings parse"))
            .collect()
    }
}

impl SystemUnderTest for MqSystem {
    fn name(&self) -> &'static str {
        "kafka-mini"
    }

    fn versions(&self) -> Vec<VersionId> {
        Self::release_history()
    }

    fn cluster_size(&self) -> u32 {
        2
    }

    fn spawn(&self, version: VersionId, setup: &NodeSetup) -> Box<dyn Process> {
        Box::new(Broker::new(version, setup.clone()))
    }

    fn stress_ops(
        &self,
        _seed: u64,
        phase: WorkloadPhase,
        client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    ) {
        // Old client libraries pass DEFAULT (-1) retention on offset commits
        // — the KAFKA-7403 ingredient; 2.1+ clients pass it explicitly.
        let retention = if client_version < VersionId::new(2, 1, 0) {
            "-1"
        } else {
            "86400000"
        };
        match phase {
            WorkloadPhase::BeforeUpgrade => {
                for i in 0..6 {
                    emit(ClientOp::new(i % 2, format!("PRODUCE events pre{i}")));
                }
                emit(ClientOp::new(0, format!("COMMIT cg events 3 {retention}")));
            }
            WorkloadPhase::DuringUpgrade => {
                for i in 0..4 {
                    emit(ClientOp::new(i % 2, format!("PRODUCE events mid{i}")));
                }
                emit(ClientOp::new(0, format!("COMMIT cg events 8 {retention}")));
            }
            WorkloadPhase::AfterUpgrade => {
                // Cross-broker fetches verify replication survived the
                // mixed-version window (KAFKA-10173's casualty).
                for i in 0..8 {
                    emit(ClientOp::new((i + 1) % 2, format!("FETCH events {i}")));
                }
                emit(ClientOp::new(0, format!("COMMIT cg events 9 {retention}")));
                emit(ClientOp::new(0, "OFFSET_GET cg events"));
                emit(ClientOp::new(0, "HEALTH"));
                emit(ClientOp::new(1, "HEALTH"));
            }
        }
    }

    fn open_loop_op(
        &self,
        key: u64,
        client: u64,
        read: bool,
        _client_version: VersionId,
    ) -> ClientOp {
        // Reads fetch by offset (misses are the benign "ERR no record");
        // writes produce fresh records tagged by logical client.
        let node = (key % 2) as u32;
        if read {
            ClientOp::new(node, format!("FETCH events {key}"))
        } else {
            ClientOp::new(node, format!("PRODUCE events ol{client}"))
        }
    }

    fn unit_tests(&self) -> Vec<UnitTest> {
        vec![
            // Carries the stale config that KAFKA-6238 needs.
            UnitTest::new(
                "testMessageFormatVersion",
                vec![
                    UnitStatement::call("produceRecord", &["events", "cfg-probe"]),
                    UnitStatement::call("fetchRecord", &["events", "0"]),
                ],
            )
            .with_config("message.version", "0.11.0"),
            UnitTest::new(
                "testOffsetRetention",
                vec![
                    UnitStatement::bind("c", "createConsumer", &["cg2"]),
                    UnitStatement::call("commitOffset", &["$c", "events", "1", "-1"]),
                ],
            ),
        ]
    }

    fn translation(&self) -> TranslationTable {
        TranslationTable::new()
            .rule("produceRecord", "PRODUCE {0} {1}")
            .rule("fetchRecord", "FETCH {0} {1}")
            .rule("commitOffset", "COMMIT {0} {1} {2} {3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_and_cluster_shape() {
        assert_eq!(MqSystem::release_history().len(), 5);
        assert_eq!(MqSystem.cluster_size(), 2);
    }

    // Test-only compat shim over the streaming op API.
    fn stress_workload(
        s: &dyn SystemUnderTest,
        seed: u64,
        phase: WorkloadPhase,
        v: VersionId,
    ) -> Vec<ClientOp> {
        let mut ops = Vec::new();
        s.stress_ops(seed, phase, v, &mut |op| ops.push(op));
        ops
    }

    #[test]
    fn old_clients_send_default_retention() {
        let s = MqSystem;
        let old = stress_workload(&s, 1, WorkloadPhase::BeforeUpgrade, VersionId::new(1, 0, 0));
        assert!(old.iter().any(|op| op.command.ends_with(" -1")));
        let new = stress_workload(&s, 1, WorkloadPhase::BeforeUpgrade, VersionId::new(2, 3, 0));
        assert!(!new.iter().any(|op| op.command.ends_with(" -1")));
    }

    #[test]
    fn config_unit_test_pins_message_version() {
        let t = &MqSystem.unit_tests()[0];
        assert_eq!(
            t.config.get("message.version").map(String::as_str),
            Some("0.11.0")
        );
    }

    #[test]
    fn consumer_binding_is_untranslatable() {
        let table = MqSystem.translation();
        assert!(table.template("createConsumer").is_none());
        assert!(table.template("commitOffset").is_some());
    }
}
