//! Version-specific formats of the mini message queue.
//!
//! - **Offsets file**: before 2.3 the on-disk offset record *requires* an
//!   expiry timestamp; 2.3 made it optional. Broker 2.1.0 sits in the gap:
//!   it adopted the "DEFAULT retention ⇒ no expiry" semantics of KAFKA-7403
//!   while still writing the old record — the encode fails.
//! - **Replica batch**: 2.4 changed the wire layout of inter-broker replica
//!   pushes (varint offset + checksum) but **kept the same frame version
//!   id** — the KAFKA-10173 mistake. Old and new brokers misparse each
//!   other's batches.

use dup_core::VersionId;
use dup_wire::{
    decode_varint, encode_varint, proto, FieldDescriptor, FieldType, MessageDescriptor,
    MessageValue, Schema, Value, WireError,
};

/// The inter-broker protocol id. Deliberately NOT bumped between 2.3 and
/// 2.4 — that is the KAFKA-10173 bug.
pub fn inter_broker_proto(v: VersionId) -> u32 {
    match (v.major, v.minor) {
        (0, 11) => 3,
        (1, 0) => 4,
        (2, 1) => 6,
        _ => 7, // 2.3 AND 2.4 — the format changed, the id did not.
    }
}

/// `true` if `v` writes offset records with an *optional* expiry (2.3+).
pub fn offsets_expiry_optional(v: VersionId) -> bool {
    v >= VersionId::new(2, 3, 0)
}

/// The on-disk offset record schema of `v`.
pub fn offsets_schema(v: VersionId) -> Schema {
    let expire = if offsets_expiry_optional(v) {
        FieldDescriptor::optional(4, "expire_ts", FieldType::Uint64)
    } else {
        FieldDescriptor::required(4, "expire_ts", FieldType::Uint64)
    };
    Schema::new().with_message(
        MessageDescriptor::new("OffsetRecord")
            .with(FieldDescriptor::required(1, "group", FieldType::Str))
            .with(FieldDescriptor::required(2, "topic", FieldType::Str))
            .with(FieldDescriptor::required(3, "offset", FieldType::Uint64))
            .with(expire),
    )
}

/// Serializes one committed offset as `v` writes it.
pub fn encode_offset_record(
    v: VersionId,
    group: &str,
    topic: &str,
    offset: u64,
    expire_ts: Option<u64>,
) -> Result<Vec<u8>, WireError> {
    let schema = offsets_schema(v);
    let mut rec = MessageValue::new("OffsetRecord")
        .set("group", Value::Str(group.to_string()))
        .set("topic", Value::Str(topic.to_string()))
        .set("offset", Value::U64(offset));
    if let Some(e) = expire_ts {
        rec.put("expire_ts", Value::U64(e));
    }
    proto::encode(&schema, &rec)
}

/// Reads one committed offset as `v` reads it.
pub fn decode_offset_record(v: VersionId, bytes: &[u8]) -> Result<(u64, Option<u64>), WireError> {
    let schema = offsets_schema(v);
    let rec = proto::decode(&schema, "OffsetRecord", bytes)?;
    let offset = rec.get_u64("offset")?;
    let expire = rec.get_u64("expire_ts").ok();
    Ok((offset, expire))
}

/// A replica batch as pushed between brokers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaBatch {
    /// Topic name.
    pub topic: String,
    /// Record index within the topic.
    pub offset: u64,
    /// Record payload.
    pub payload: Vec<u8>,
}

/// Largest plausible record index; anything above this is a misparse.
const OFFSET_SANITY: u64 = 1 << 40;

fn checksum(data: &[u8]) -> u32 {
    data.iter().fold(0u32, |acc, &b| {
        acc.wrapping_mul(31).wrapping_add(u32::from(b))
    })
}

/// Encodes a replica batch in `v`'s layout.
///
/// ≤2.3: `[topic len varint][topic][offset u64 BE][payload]`.
/// 2.4+: `[topic len varint][topic][offset varint][crc u32 BE][payload]` —
/// same frame version id (see [`inter_broker_proto`]).
pub fn encode_replica_batch(v: VersionId, batch: &ReplicaBatch) -> Vec<u8> {
    let mut out = Vec::new();
    encode_varint(batch.topic.len() as u64, &mut out);
    out.extend_from_slice(batch.topic.as_bytes());
    if v >= VersionId::new(2, 4, 0) {
        encode_varint(batch.offset, &mut out);
        out.extend_from_slice(&checksum(&batch.payload).to_be_bytes());
        out.extend_from_slice(&batch.payload);
    } else {
        out.extend_from_slice(&batch.offset.to_be_bytes());
        out.extend_from_slice(&batch.payload);
    }
    out
}

/// Errors decoding a replica batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// Truncated input.
    Truncated,
    /// The offset field is implausible — the layout was misparsed.
    InsaneOffset(u64),
    /// The checksum does not match — the layout was misparsed.
    BadChecksum {
        /// Expected (from the wire).
        expected: u32,
        /// Computed over the payload.
        computed: u32,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Truncated => write!(f, "replica batch truncated"),
            BatchError::InsaneOffset(o) => write!(f, "implausible record offset {o}"),
            BatchError::BadChecksum { expected, computed } => {
                write!(f, "record batch checksum mismatch: wire {expected:#010x} != computed {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Decodes a replica batch with `v`'s reader.
pub fn decode_replica_batch(v: VersionId, bytes: &[u8]) -> Result<ReplicaBatch, BatchError> {
    let (tlen, used) = decode_varint(bytes).map_err(|_| BatchError::Truncated)?;
    let mut pos = used;
    let tlen = tlen as usize;
    if bytes.len() < pos + tlen {
        return Err(BatchError::Truncated);
    }
    let topic = String::from_utf8_lossy(&bytes[pos..pos + tlen]).into_owned();
    pos += tlen;
    if v >= VersionId::new(2, 4, 0) {
        let (offset, used) = decode_varint(&bytes[pos..]).map_err(|_| BatchError::Truncated)?;
        pos += used;
        if bytes.len() < pos + 4 {
            return Err(BatchError::Truncated);
        }
        let expected = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("len checked"));
        pos += 4;
        let payload = bytes[pos..].to_vec();
        let computed = checksum(&payload);
        if expected != computed {
            return Err(BatchError::BadChecksum { expected, computed });
        }
        Ok(ReplicaBatch {
            topic,
            offset,
            payload,
        })
    } else {
        if bytes.len() < pos + 8 {
            return Err(BatchError::Truncated);
        }
        let offset = u64::from_be_bytes(bytes[pos..pos + 8].try_into().expect("len checked"));
        pos += 8;
        if offset > OFFSET_SANITY {
            return Err(BatchError::InsaneOffset(offset));
        }
        Ok(ReplicaBatch {
            topic,
            offset,
            payload: bytes[pos..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    #[test]
    fn kafka_10173_proto_id_not_bumped() {
        assert_eq!(
            inter_broker_proto(v("2.3.0")),
            inter_broker_proto(v("2.4.0"))
        );
        assert!(inter_broker_proto(v("2.1.0")) < inter_broker_proto(v("2.3.0")));
    }

    #[test]
    fn offset_record_roundtrip() {
        for ver in ["0.11.0", "2.1.0", "2.3.0"] {
            let ver = v(ver);
            let bytes = encode_offset_record(ver, "g", "t", 42, Some(100)).unwrap();
            assert_eq!(decode_offset_record(ver, &bytes).unwrap(), (42, Some(100)));
        }
    }

    #[test]
    fn kafka_7403_no_expiry_fails_old_record_format() {
        // 2.1.0's new semantics (DEFAULT retention ⇒ no expiry) meet the old
        // on-disk record (required expire_ts): the write fails.
        let err = encode_offset_record(v("2.1.0"), "g", "t", 42, None).unwrap_err();
        assert!(matches!(err, WireError::MissingRequired { field, .. } if field == "expire_ts"));
        // 2.3 made the field optional; the same write succeeds.
        let bytes = encode_offset_record(v("2.3.0"), "g", "t", 42, None).unwrap();
        assert_eq!(
            decode_offset_record(v("2.3.0"), &bytes).unwrap(),
            (42, None)
        );
    }

    #[test]
    fn replica_batch_roundtrip_same_version() {
        for ver in ["2.3.0", "2.4.0"] {
            let ver = v(ver);
            let batch = ReplicaBatch {
                topic: "events".into(),
                offset: 7,
                payload: b"msg".to_vec(),
            };
            let bytes = encode_replica_batch(ver, &batch);
            assert_eq!(
                decode_replica_batch(ver, &bytes).unwrap(),
                batch,
                "version {ver}"
            );
        }
    }

    #[test]
    fn kafka_10173_cross_version_batches_misparse() {
        let batch = ReplicaBatch {
            topic: "events".into(),
            offset: 3,
            payload: b"hello".to_vec(),
        };
        // New batch, old reader: the varint offset + crc parse as a huge BE u64.
        let new_bytes = encode_replica_batch(v("2.4.0"), &batch);
        let err = decode_replica_batch(v("2.3.0"), &new_bytes).unwrap_err();
        assert!(
            matches!(err, BatchError::InsaneOffset(_) | BatchError::Truncated),
            "got {err:?}"
        );
        // Old batch, new reader: crc check fails.
        let old_bytes = encode_replica_batch(v("2.3.0"), &batch);
        let err = decode_replica_batch(v("2.4.0"), &old_bytes).unwrap_err();
        assert!(
            matches!(err, BatchError::BadChecksum { .. } | BatchError::Truncated),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_batches_are_detected() {
        let batch = ReplicaBatch {
            topic: "t".into(),
            offset: 1,
            payload: b"x".to_vec(),
        };
        let bytes = encode_replica_batch(v("2.3.0"), &batch);
        assert_eq!(
            decode_replica_batch(v("2.3.0"), &bytes[..3]),
            Err(BatchError::Truncated)
        );
        assert_eq!(
            decode_replica_batch(v("2.3.0"), &[]),
            Err(BatchError::Truncated)
        );
    }
}
