//! # dup-mq — a miniature versioned Kafka-like broker
//!
//! A replicated message broker built as a DUPTester subject. Five releases
//! (0.11.0 → 2.4.0) re-create the studied Kafka upgrade failures:
//!
//! | Seeded bug | Pair | Mechanism |
//! |---|---|---|
//! | KAFKA-6238  | 0.11 → 1.0 | a `message.version` pinned by the old config file crashes the upgraded broker |
//! | KAFKA-7403  | 1.0 → 2.1 | old clients' DEFAULT retention now means "no expiry", which the old on-disk offset record cannot express |
//! | KAFKA-10173 | 2.3 → 2.4 rolling | the replica-batch layout changed but the protocol version id did not; mixed brokers misparse each other |
//!
//! The 2.1 → 2.3 pair is a clean control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod node;
mod sut;

pub use crate::node::Broker;
pub use crate::sut::MqSystem;
