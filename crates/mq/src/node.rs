//! The versioned broker of the mini message queue.
//!
//! Every broker holds every topic (replication factor = cluster size):
//! a `PRODUCE` appends locally and pushes replica batches to all peers.

use crate::codec::{self, inter_broker_proto, ReplicaBatch};
use dup_core::{NodeSetup, VersionId};
use dup_simnet::{Ctx, Endpoint, Fatal, Process, StepResult};
use dup_wire::Frame;

/// Default offset retention when a client passes `-1` (DEFAULT).
const DEFAULT_RETENTION_MS: u64 = 86_400_000;

/// A broker node.
#[derive(Clone)]
pub struct Broker {
    version: VersionId,
    setup: NodeSetup,
}

impl Broker {
    /// Creates a broker of `version`.
    pub fn new(version: VersionId, setup: NodeSetup) -> Self {
        Broker { version, setup }
    }

    fn record_path(topic: &str, idx: u64) -> String {
        format!("log/{topic}/{idx:012}")
    }

    fn next_index(&self, ctx: &Ctx<'_>, topic: &str) -> u64 {
        ctx.storage_ref().list(&format!("log/{topic}/")).len() as u64
    }

    fn handle_client(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, text: &str) {
        let parts: Vec<&str> = text.split_whitespace().collect();
        let reply = match parts.as_slice() {
            ["HEALTH"] => "OK healthy".to_string(),
            ["PRODUCE", topic, value] => self.cmd_produce(ctx, topic, value),
            ["FETCH", topic, idx] => self.cmd_fetch(ctx, topic, idx),
            ["COMMIT", group, topic, offset, retention] => {
                self.cmd_commit(ctx, group, topic, offset, retention)
            }
            ["OFFSET_GET", group, topic] => self.cmd_offset_get(ctx, group, topic),
            _ => format!("ERR unknown command '{text}'"),
        };
        ctx.send(from, reply.into_bytes().into());
    }

    fn cmd_produce(&mut self, ctx: &mut Ctx<'_>, topic: &str, value: &str) -> String {
        let idx = self.next_index(ctx, topic);
        ctx.storage()
            .write(&Self::record_path(topic, idx), value.as_bytes().to_vec());
        // Durable-on-ack: the produce reply below promises the record.
        ctx.flush(&Self::record_path(topic, idx));
        let batch = ReplicaBatch {
            topic: topic.to_string(),
            offset: idx,
            payload: value.as_bytes().to_vec(),
        };
        let body = codec::encode_replica_batch(self.version, &batch);
        let proto = inter_broker_proto(self.version);
        for peer in self.setup.peers() {
            ctx.send(
                Endpoint::Node(peer),
                Frame::new(proto, "replica", body.clone()).encode(),
            );
        }
        format!("OK {idx}")
    }

    fn cmd_fetch(&mut self, ctx: &mut Ctx<'_>, topic: &str, idx: &str) -> String {
        let Ok(idx) = idx.parse::<u64>() else {
            return format!("ERR bad index '{idx}'");
        };
        match ctx.storage_ref().read(&Self::record_path(topic, idx)) {
            Some(bytes) => format!("OK {}", String::from_utf8_lossy(bytes)),
            None => "ERR no record".to_string(),
        }
    }

    fn cmd_commit(
        &mut self,
        ctx: &mut Ctx<'_>,
        group: &str,
        topic: &str,
        offset: &str,
        retention: &str,
    ) -> String {
        let (Ok(offset), Ok(retention)) = (offset.parse::<u64>(), retention.parse::<i64>()) else {
            return "ERR bad commit arguments".to_string();
        };
        // Semantics drift (KAFKA-7403): old brokers translate DEFAULT (-1)
        // retention into "now + default"; 2.1.0 translates it into *no*
        // expiry — an assumption the rest of the broker does not share.
        let expire_ts = if retention < 0 {
            if self.version >= VersionId::new(2, 1, 0) {
                None
            } else {
                Some(ctx.now().as_millis() + DEFAULT_RETENTION_MS)
            }
        } else {
            Some(ctx.now().as_millis() + retention as u64)
        };
        match codec::encode_offset_record(self.version, group, topic, offset, expire_ts) {
            Ok(bytes) => {
                ctx.storage()
                    .write(&format!("offsets/{group}.{topic}"), bytes);
                ctx.flush(&format!("offsets/{group}.{topic}"));
                "OK".to_string()
            }
            Err(e) => {
                // 2.1.0 with an old client: expire_ts is None but the
                // on-disk record still requires it.
                ctx.error(format!(
                    "failed to persist offset commit for {group}/{topic}: {e}"
                ));
                "ERR offset commit failed".to_string()
            }
        }
    }

    fn cmd_offset_get(&mut self, ctx: &mut Ctx<'_>, group: &str, topic: &str) -> String {
        match ctx.storage_ref().read(&format!("offsets/{group}.{topic}")) {
            Some(bytes) => match codec::decode_offset_record(self.version, bytes) {
                Ok((offset, _)) => format!("OK {offset}"),
                Err(e) => {
                    ctx.error(format!("corrupt offset record for {group}/{topic}: {e}"));
                    format!("ERR corrupt offset record: {e}")
                }
            },
            None => "ERR no committed offset".to_string(),
        }
    }
}

impl Process for Broker {
    fn fork(&self) -> Option<Box<dyn Process>> {
        Some(Box::new(self.clone()))
    }

    fn restore_from(&mut self, src: &dyn Process) -> bool {
        let any: &dyn std::any::Any = src;
        match any.downcast_ref::<Self>() {
            Some(other) => {
                self.clone_from(other);
                true
            }
            None => false,
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        // KAFKA-6238: a `message.version` pinned by an old config file is
        // rejected by the upgraded broker.
        if let Some(pinned) = self.setup.config.get("message.version") {
            let pinned_v: VersionId = pinned
                .parse()
                .map_err(|_| Fatal::new(format!("invalid message.version '{pinned}'")))?;
            if self.version >= VersionId::new(1, 0, 0) && pinned_v < VersionId::new(1, 0, 0) {
                return Err(Fatal::new(format!(
                    "message.version {pinned} is not compatible with broker {}: \
                     inter-broker messages would be unreadable",
                    self.version
                )));
            }
        }
        ctx.info(format!(
            "broker {} started (inter-broker protocol {})",
            self.version,
            inter_broker_proto(self.version)
        ));
        Ok(())
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, payload: &[u8]) -> StepResult {
        match from {
            Endpoint::Client(_) => {
                let text = String::from_utf8_lossy(payload).into_owned();
                self.handle_client(ctx, from, &text);
                Ok(())
            }
            Endpoint::Node(n) => {
                let frame = match Frame::decode(payload) {
                    Ok(f) => f,
                    Err(e) => {
                        ctx.warn(format!("unparseable frame from broker-{n}: {e}"));
                        return Ok(());
                    }
                };
                if frame.kind == "replica" {
                    // KAFKA-10173: the frame version matches (it was never
                    // bumped), so the broker has no way to know the layout
                    // changed — it just misparses.
                    match codec::decode_replica_batch(self.version, &frame.body) {
                        Ok(batch) => {
                            ctx.storage().write(
                                &Self::record_path(&batch.topic, batch.offset),
                                batch.payload,
                            );
                            ctx.flush(&Self::record_path(&batch.topic, batch.offset));
                        }
                        Err(e) => {
                            ctx.error(format!("corrupt replica batch from broker-{n}: {e}"));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) -> StepResult {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_core::Config;
    use dup_simnet::{Sim, SimDuration};

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn boot(sim: &mut Sim, version: VersionId, n: u32, config: &Config) -> Vec<u32> {
        let mut ids = Vec::new();
        for i in 0..n {
            let mut setup = NodeSetup::new(i, n);
            setup.config = config.clone();
            let id = sim.add_node(
                &format!("mq-host-{i}"),
                &version.to_string(),
                Box::new(Broker::new(version, setup)),
            );
            sim.start_node(id).unwrap();
            ids.push(id);
        }
        sim.run_for(SimDuration::from_millis(100));
        ids
    }

    fn cmd(sim: &mut Sim, node: u32, text: &str) -> String {
        sim.rpc(
            node,
            text.as_bytes().to_vec().into(),
            SimDuration::from_secs(2),
        )
        .map(|b| String::from_utf8_lossy(&b).into_owned())
        .unwrap_or_else(|| "TIMEOUT".to_string())
    }

    #[test]
    fn produce_replicates_to_peers() {
        let mut sim = Sim::new(1);
        let ids = boot(&mut sim, v("2.3.0"), 3, &Config::new());
        assert_eq!(cmd(&mut sim, ids[0], "PRODUCE events hello"), "OK 0");
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(cmd(&mut sim, ids[1], "FETCH events 0"), "OK hello");
        assert_eq!(cmd(&mut sim, ids[2], "FETCH events 0"), "OK hello");
    }

    #[test]
    fn commit_and_read_offsets() {
        let mut sim = Sim::new(2);
        let ids = boot(&mut sim, v("1.0.0"), 1, &Config::new());
        assert_eq!(cmd(&mut sim, ids[0], "COMMIT g1 events 5 -1"), "OK");
        assert_eq!(cmd(&mut sim, ids[0], "OFFSET_GET g1 events"), "OK 5");
    }

    #[test]
    fn kafka_7403_default_retention_fails_on_2_1() {
        let mut sim = Sim::new(3);
        let ids = boot(&mut sim, v("2.1.0"), 1, &Config::new());
        // An old client passes retention=-1 (DEFAULT).
        assert_eq!(
            cmd(&mut sim, ids[0], "COMMIT g1 events 5 -1"),
            "ERR offset commit failed"
        );
        assert!(
            sim.logs()
                .matching("failed to persist offset commit")
                .count()
                >= 1
        );
        // A new client passing an explicit retention is fine.
        assert_eq!(cmd(&mut sim, ids[0], "COMMIT g1 events 5 60000"), "OK");
        // And 2.3 fixed the record format.
        let mut sim = Sim::new(4);
        let ids = boot(&mut sim, v("2.3.0"), 1, &Config::new());
        assert_eq!(cmd(&mut sim, ids[0], "COMMIT g1 events 5 -1"), "OK");
    }

    #[test]
    fn kafka_6238_stale_message_version_config_crashes_upgraded_broker() {
        let mut config = Config::new();
        config.insert("message.version".to_string(), "0.11.0".to_string());
        let mut sim = Sim::new(5);
        // Works on 0.11 …
        let ids = boot(&mut sim, v("0.11.0"), 1, &config);
        assert_eq!(cmd(&mut sim, ids[0], "HEALTH"), "OK healthy");
        // … crashes 1.0 started with the same config file.
        sim.stop_node(ids[0]).unwrap();
        let mut setup = NodeSetup::new(0, 1);
        setup.config = config;
        sim.install(ids[0], "1.0.0", Box::new(Broker::new(v("1.0.0"), setup)))
            .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(50));
        assert!(sim
            .crash_reason(ids[0])
            .unwrap()
            .contains("message.version"));
    }

    #[test]
    fn kafka_10173_mixed_brokers_drop_replicas() {
        let mut sim = Sim::new(6);
        let ids = boot(&mut sim, v("2.3.0"), 2, &Config::new());
        // Rolling upgrade of broker 0 to 2.4.
        sim.stop_node(ids[0]).unwrap();
        sim.install(
            ids[0],
            "2.4.0",
            Box::new(Broker::new(v("2.4.0"), NodeSetup::new(0, 2))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(100));
        // Produce on the new broker: the old broker cannot parse the batch.
        assert_eq!(cmd(&mut sim, ids[0], "PRODUCE events hello"), "OK 0");
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(cmd(&mut sim, ids[1], "FETCH events 0"), "ERR no record");
        assert!(sim.logs().matching("corrupt replica batch").count() >= 1);
        // Produce on the old broker: the new broker cannot parse it either.
        assert_eq!(cmd(&mut sim, ids[1], "PRODUCE events world"), "OK 0");
        sim.run_for(SimDuration::from_millis(100));
        assert!(sim.logs().matching("corrupt replica batch").count() >= 2);
    }

    #[test]
    fn clean_pair_2_1_to_2_3_replicates_fine() {
        let mut sim = Sim::new(7);
        let ids = boot(&mut sim, v("2.1.0"), 2, &Config::new());
        assert_eq!(cmd(&mut sim, ids[0], "PRODUCE events a"), "OK 0");
        sim.run_for(SimDuration::from_millis(100));
        sim.stop_node(ids[0]).unwrap();
        sim.install(
            ids[0],
            "2.3.0",
            Box::new(Broker::new(v("2.3.0"), NodeSetup::new(0, 2))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(cmd(&mut sim, ids[1], "PRODUCE events b"), "OK 1");
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(cmd(&mut sim, ids[0], "FETCH events 1"), "OK b");
        assert!(sim.logs().matching("corrupt replica batch").count() == 0);
        assert!(sim.crashed_nodes().is_empty());
    }
}
