//! The type-2 checker: enum-ordinal serialization across versions
//! (paper §6.2, second half).
//!
//! Combines `dup-srcmodel`'s dataflow (which enums have their index written
//! to a `DataOutput`) with a cross-version membership diff:
//!
//! - a serialized enum whose existing members' *positions* changed between
//!   versions is a **bug** — old and new sides disagree about what each
//!   index means (HDFS-15624);
//! - a serialized enum that did *not* change is a **vulnerability** — the
//!   paper's tool asks developers to add padding or an order-preserving
//!   comment and an index range check.

use dup_srcmodel::{find_serialized_enum_uses, parse_java, CompilationUnit, JavaParseError};
use std::fmt;

/// A finding of the enum checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumFinding {
    /// The serialized enum's member positions changed: a real bug.
    Bug {
        /// Enum name.
        enum_name: String,
        /// The first member whose ordinal changed.
        member: String,
        /// Its old ordinal.
        old_ordinal: usize,
        /// Its new ordinal (`None` if the member was removed).
        new_ordinal: Option<usize>,
        /// Where the ordinal is serialized (`Class.method`).
        site: String,
    },
    /// The serialized enum is unchanged but unprotected: a vulnerability.
    Vulnerability {
        /// Enum name.
        enum_name: String,
        /// Where the ordinal is serialized.
        site: String,
    },
}

impl EnumFinding {
    /// `true` for [`EnumFinding::Bug`].
    pub fn is_bug(&self) -> bool {
        matches!(self, EnumFinding::Bug { .. })
    }

    /// The enum this finding concerns.
    pub fn enum_name(&self) -> &str {
        match self {
            EnumFinding::Bug { enum_name, .. } | EnumFinding::Vulnerability { enum_name, .. } => {
                enum_name
            }
        }
    }
}

impl fmt::Display for EnumFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumFinding::Bug {
                enum_name,
                member,
                old_ordinal,
                new_ordinal,
                site,
            } => {
                write!(
                f,
                "BUG  enum {enum_name}: member {member} moved from ordinal {old_ordinal} to {} \
                 while serialized at {site}",
                new_ordinal.map(|n| n.to_string()).unwrap_or_else(|| "(removed)".to_string())
            )
            }
            EnumFinding::Vulnerability { enum_name, site } => write!(
                f,
                "VULN enum {enum_name}: ordinal serialized at {site}; preserve member order and \
                 add an index range check"
            ),
        }
    }
}

/// Checks two versions of a parsed source tree.
pub fn check_units(old: &CompilationUnit, new: &CompilationUnit) -> Vec<EnumFinding> {
    let mut uses = find_serialized_enum_uses(new);
    uses.extend(find_serialized_enum_uses(old));
    uses.sort_by(|a, b| a.enum_name.cmp(&b.enum_name));
    uses.dedup_by(|a, b| a.enum_name == b.enum_name);

    let mut out = Vec::new();
    for u in uses {
        let site = format!("{}.{}", u.class_name, u.method_name);
        let (Some(old_enum), Some(new_enum)) =
            (old.enum_model(&u.enum_name), new.enum_model(&u.enum_name))
        else {
            continue;
        };
        let mut changed = None;
        for (old_ord, member) in old_enum.members.iter().enumerate() {
            let new_ord = new_enum.ordinal_of(member);
            if new_ord != Some(old_ord) {
                changed = Some((member.clone(), old_ord, new_ord));
                break;
            }
        }
        match changed {
            Some((member, old_ordinal, new_ordinal)) => out.push(EnumFinding::Bug {
                enum_name: u.enum_name.clone(),
                member,
                old_ordinal,
                new_ordinal,
                site,
            }),
            None => out.push(EnumFinding::Vulnerability {
                enum_name: u.enum_name.clone(),
                site,
            }),
        }
    }
    out
}

/// Parses and checks two versions of a set of source files.
pub fn check_sources(
    old_files: &[(String, String)],
    new_files: &[(String, String)],
) -> Result<Vec<EnumFinding>, JavaParseError> {
    let old = parse_all(old_files)?;
    let new = parse_all(new_files)?;
    Ok(check_units(&old, &new))
}

fn parse_all(files: &[(String, String)]) -> Result<CompilationUnit, JavaParseError> {
    let mut merged = CompilationUnit::default();
    for (_, source) in files {
        let unit = parse_java(source)?;
        merged.classes.extend(unit.classes);
        merged.enums.extend(unit.enums);
        if merged.package.is_none() {
            merged.package = unit.package;
        }
    }
    Ok(merged)
}

/// One system in the bundled corpus: its name plus (filename, source) pairs
/// for the old and new trees.
pub type JavaCorpusEntry = (&'static str, Vec<(String, String)>, Vec<(String, String)>);

/// A bundled Java-subset corpus with the paper's §6.2 enum-checker yield:
/// 2 bugs and 6 vulnerabilities across the scanned systems.
pub fn java_corpus() -> Vec<JavaCorpusEntry> {
    fn f(name: &str, src: &str) -> (String, String) {
        (name.to_string(), src.to_string())
    }
    let mut out = Vec::new();

    // Bug 1 — the HDFS-15624 shape: NVDIMM inserted mid-enum.
    out.push((
        "HDFS",
        vec![f(
            "StorageReport.java",
            r#"
            public class StorageReport {
                public enum StorageType { DISK, SSD, ARCHIVE, PROVIDED }
                public void write(DataOutput out, StorageType t) {
                    out.writeInt(t.ordinal());
                }
            }
            "#,
        )],
        vec![f(
            "StorageReport.java",
            r#"
            public class StorageReport {
                public enum StorageType { DISK, SSD, NVDIMM, ARCHIVE, PROVIDED }
                public void write(DataOutput out, StorageType t) {
                    out.writeInt(t.ordinal());
                }
            }
            "#,
        )],
    ));

    // Bug 2 — a member deleted from a serialized enum.
    out.push((
        "HBase",
        vec![f(
            "CompactionState.java",
            r#"
            public class CompactionTracker {
                public enum CompactionState { NONE, MINOR, MAJOR, MAJOR_AND_MINOR }
                private DataOutput meta;
                public void persist(CompactionState s) {
                    int v = s.ordinal();
                    meta.writeByte(v);
                }
            }
            "#,
        )],
        vec![f(
            "CompactionState.java",
            r#"
            public class CompactionTracker {
                public enum CompactionState { NONE, MAJOR, MAJOR_AND_MINOR }
                private DataOutput meta;
                public void persist(CompactionState s) {
                    int v = s.ordinal();
                    meta.writeByte(v);
                }
            }
            "#,
        )],
    ));

    // Six vulnerabilities: serialized but (so far) unchanged enums.
    let vuln_systems: [(&str, &str, &str); 6] = [
        ("HDFS", "ChecksumKind", "ChecksumWriter"),
        ("HBase", "KeepDeletedCells", "CellWriter"),
        ("Mesos", "TaskState", "TaskSerializer"),
        ("YARN", "ContainerState", "ContainerWriter"),
        ("Accumulo", "TabletState", "TabletWriter"),
        ("Impala", "PlanNodeKind", "PlanSerializer"),
    ];
    for (system, enum_name, class_name) in vuln_systems {
        let src = format!(
            r#"
            public class {class_name} {{
                public enum {enum_name} {{ FIRST, SECOND, THIRD }}
                public void save(DataOutputStream out, {enum_name} value) {{
                    out.writeInt(value.ordinal());
                }}
            }}
            "#
        );
        out.push((system, vec![f("V.java", &src)], vec![f("V.java", &src)]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_member_on_serialized_enum_is_a_bug() {
        let corpus = java_corpus();
        let (system, old, new) = &corpus[0];
        assert_eq!(*system, "HDFS");
        let findings = check_sources(old, new).unwrap();
        assert_eq!(findings.len(), 1);
        match &findings[0] {
            EnumFinding::Bug {
                enum_name,
                member,
                old_ordinal,
                new_ordinal,
                ..
            } => {
                assert_eq!(enum_name, "StorageType");
                assert_eq!(member, "ARCHIVE");
                assert_eq!(*old_ordinal, 2);
                assert_eq!(*new_ordinal, Some(3));
            }
            other => panic!("expected bug, got {other}"),
        }
    }

    #[test]
    fn deleted_member_on_serialized_enum_is_a_bug() {
        let corpus = java_corpus();
        let (_, old, new) = &corpus[1];
        let findings = check_sources(old, new).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].is_bug());
        assert_eq!(findings[0].enum_name(), "CompactionState");
    }

    #[test]
    fn unchanged_serialized_enum_is_a_vulnerability() {
        let corpus = java_corpus();
        let (_, old, new) = &corpus[2];
        let findings = check_sources(old, new).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_bug());
        assert!(findings[0].to_string().contains("VULN"));
    }

    #[test]
    fn corpus_yield_matches_the_paper() {
        // §6.2: "found 2 new bugs ... and 6 vulnerabilities".
        let mut bugs = 0;
        let mut vulns = 0;
        for (_, old, new) in &java_corpus() {
            for finding in check_sources(old, new).unwrap() {
                if finding.is_bug() {
                    bugs += 1;
                } else {
                    vulns += 1;
                }
            }
        }
        assert_eq!(bugs, 2);
        assert_eq!(vulns, 6);
    }

    #[test]
    fn unserialized_enum_changes_are_not_flagged() {
        let old = vec![(
            "A.java".to_string(),
            r#"
            class A {
                enum Quiet { X, Y }
                void m(DataOutput out) { out.writeLong(7); }
            }
            "#
            .to_string(),
        )];
        let new = vec![(
            "A.java".to_string(),
            r#"
            class A {
                enum Quiet { X, MIDDLE, Y }
                void m(DataOutput out) { out.writeLong(7); }
            }
            "#
            .to_string(),
        )];
        assert!(check_sources(&old, &new).unwrap().is_empty());
    }

    #[test]
    fn appended_member_is_not_a_bug_but_still_vulnerable() {
        // Appending at the end preserves existing ordinals: not a bug, but
        // the enum is serialized and unprotected → vulnerability.
        let old = vec![(
            "A.java".to_string(),
            r#"
            class A {
                enum K { X, Y }
                void m(DataOutput out, K k) { out.writeInt(k.ordinal()); }
            }
            "#
            .to_string(),
        )];
        let new = vec![(
            "A.java".to_string(),
            r#"
            class A {
                enum K { X, Y, Z }
                void m(DataOutput out, K k) { out.writeInt(k.ordinal()); }
            }
            "#
            .to_string(),
        )];
        let findings = check_sources(&old, &new).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_bug());
    }
}
