//! The type-1 checker: cross-version schema comparison for serialization
//! libraries (paper §6.2).
//!
//! Four rules, straight from the paper:
//!
//! 1. the tag number (position of the member in the serialized data) is
//!    changed — **error** (a changed declared type is the same class of
//!    break and reported under this rule);
//! 2. a `required` data member is added or removed — **error**;
//! 3. the `required` qualifier is changed to non-required — **warning**
//!    (new writers may omit data old readers still require);
//! 4. an enum that gains or loses a member should have a 0 value —
//!    **warning** (and renumbering an existing member is an **error**).

use dup_idl::{FieldLabel, IdlFile};
use std::fmt;

/// Severity of a violation: Table 6's ERR vs WARN split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Guaranteed to break cross-version (de)serialization.
    Error,
    /// May break, depending on which fields are populated.
    Warning,
}

/// One cross-version incompatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Rule 1: a field's tag number changed.
    TagChanged {
        /// Message name.
        message: String,
        /// Field name.
        field: String,
        /// Old tag.
        old_tag: u32,
        /// New tag.
        new_tag: u32,
    },
    /// Rule 1 (type form): a field's declared type changed.
    TypeChanged {
        /// Message name.
        message: String,
        /// Field name.
        field: String,
        /// Old type.
        old_type: String,
        /// New type.
        new_type: String,
    },
    /// Rule 2: a `required` member was added.
    RequiredAdded {
        /// Message name.
        message: String,
        /// Field name.
        field: String,
    },
    /// Rule 2: a `required` member was removed.
    RequiredRemoved {
        /// Message name.
        message: String,
        /// Field name.
        field: String,
    },
    /// Rule 3: `required` was downgraded to optional/repeated.
    RequiredDowngraded {
        /// Message name.
        message: String,
        /// Field name.
        field: String,
    },
    /// Rule 4: the enum changed membership but declares no 0 value.
    EnumMissingZero {
        /// Enum name.
        enum_name: String,
    },
    /// Rule 4 (hard form): an existing member's number changed.
    EnumMemberRenumbered {
        /// Enum name.
        enum_name: String,
        /// Member name.
        member: String,
        /// Old number.
        old_number: i32,
        /// New number.
        new_number: i32,
    },
}

impl Violation {
    /// The severity of this violation.
    pub fn severity(&self) -> Severity {
        match self {
            Violation::TagChanged { .. }
            | Violation::TypeChanged { .. }
            | Violation::RequiredAdded { .. }
            | Violation::RequiredRemoved { .. }
            | Violation::EnumMemberRenumbered { .. } => Severity::Error,
            Violation::RequiredDowngraded { .. } | Violation::EnumMissingZero { .. } => {
                Severity::Warning
            }
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TagChanged {
                message,
                field,
                old_tag,
                new_tag,
            } => write!(
                f,
                "ERROR {message}.{field}: tag changed {old_tag} -> {new_tag}"
            ),
            Violation::TypeChanged {
                message,
                field,
                old_type,
                new_type,
            } => write!(
                f,
                "ERROR {message}.{field}: type changed {old_type} -> {new_type}"
            ),
            Violation::RequiredAdded { message, field } => {
                write!(f, "ERROR {message}.{field}: required member added")
            }
            Violation::RequiredRemoved { message, field } => {
                write!(f, "ERROR {message}.{field}: required member removed")
            }
            Violation::RequiredDowngraded { message, field } => {
                write!(
                    f,
                    "WARN  {message}.{field}: required changed to non-required"
                )
            }
            Violation::EnumMissingZero { enum_name } => {
                write!(
                    f,
                    "WARN  enum {enum_name}: membership changed without a 0 value"
                )
            }
            Violation::EnumMemberRenumbered {
                enum_name,
                member,
                old_number,
                new_number,
            } => {
                write!(
                    f,
                    "ERROR enum {enum_name}.{member}: number changed {old_number} -> {new_number}"
                )
            }
        }
    }
}

/// Compares two versions of one protocol file and returns all violations.
pub fn compare_files(old: &IdlFile, new: &IdlFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for old_msg in &old.messages {
        let Some(new_msg) = new.message(&old_msg.name) else {
            continue; // Removed messages are not comparable.
        };
        for old_field in &old_msg.fields {
            match new_msg.field(&old_field.name) {
                Some(new_field) => {
                    if new_field.tag != old_field.tag {
                        out.push(Violation::TagChanged {
                            message: old_msg.name.clone(),
                            field: old_field.name.clone(),
                            old_tag: old_field.tag,
                            new_tag: new_field.tag,
                        });
                    }
                    if new_field.type_name != old_field.type_name {
                        out.push(Violation::TypeChanged {
                            message: old_msg.name.clone(),
                            field: old_field.name.clone(),
                            old_type: old_field.type_name.clone(),
                            new_type: new_field.type_name.clone(),
                        });
                    }
                    match (old_field.label, new_field.label) {
                        (FieldLabel::Required, FieldLabel::Required) => {}
                        (FieldLabel::Required, _) => {
                            out.push(Violation::RequiredDowngraded {
                                message: old_msg.name.clone(),
                                field: old_field.name.clone(),
                            });
                        }
                        (_, FieldLabel::Required) => {
                            // An existing member becoming required breaks old
                            // writers exactly like a new required member.
                            out.push(Violation::RequiredAdded {
                                message: old_msg.name.clone(),
                                field: old_field.name.clone(),
                            });
                        }
                        _ => {}
                    }
                }
                None => {
                    if old_field.label == FieldLabel::Required {
                        out.push(Violation::RequiredRemoved {
                            message: old_msg.name.clone(),
                            field: old_field.name.clone(),
                        });
                    }
                }
            }
        }
        for new_field in &new_msg.fields {
            if old_msg.field(&new_field.name).is_none() && new_field.label == FieldLabel::Required {
                out.push(Violation::RequiredAdded {
                    message: old_msg.name.clone(),
                    field: new_field.name.clone(),
                });
            }
        }
    }
    for old_enum in &old.enums {
        let Some(new_enum) = new.enum_decl(&old_enum.name) else {
            continue;
        };
        let mut membership_changed = false;
        for old_val in &old_enum.values {
            match new_enum.value(&old_val.name) {
                Some(new_val) => {
                    if new_val.number != old_val.number {
                        out.push(Violation::EnumMemberRenumbered {
                            enum_name: old_enum.name.clone(),
                            member: old_val.name.clone(),
                            old_number: old_val.number,
                            new_number: new_val.number,
                        });
                    }
                }
                None => membership_changed = true,
            }
        }
        if new_enum
            .values
            .iter()
            .any(|v| old_enum.value(&v.name).is_none())
        {
            membership_changed = true;
        }
        if membership_changed && !new_enum.has_zero() {
            out.push(Violation::EnumMissingZero {
                enum_name: old_enum.name.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_idl::parse_proto;

    fn check(old: &str, new: &str) -> Vec<Violation> {
        compare_files(&parse_proto(old).unwrap(), &parse_proto(new).unwrap())
    }

    #[test]
    fn detects_hbase_25238_figure_2() {
        // The paper's Figure 2, verbatim.
        let old = r#"
            message ReplicationLoadSink {
                required uint64 ageOfLastAppliedOp = 1;
            }
        "#;
        let new = r#"
            message ReplicationLoadSink {
                required uint64 ageOfLastAppliedOp = 1;
                required uint64 timestampStarted = 3;
            }
        "#;
        let vs = check(old, new);
        assert_eq!(vs.len(), 1);
        assert_eq!(
            vs[0],
            Violation::RequiredAdded {
                message: "ReplicationLoadSink".into(),
                field: "timestampStarted".into()
            }
        );
        assert_eq!(vs[0].severity(), Severity::Error);
    }

    #[test]
    fn detects_tag_and_type_changes() {
        let old = "message M { optional uint64 a = 1; optional uint64 b = 2; }";
        let new = "message M { optional uint64 a = 5; optional string b = 2; }";
        let vs = check(old, new);
        assert!(vs.contains(&Violation::TagChanged {
            message: "M".into(),
            field: "a".into(),
            old_tag: 1,
            new_tag: 5
        }));
        assert!(vs.contains(&Violation::TypeChanged {
            message: "M".into(),
            field: "b".into(),
            old_type: "uint64".into(),
            new_type: "string".into()
        }));
    }

    #[test]
    fn detects_required_removed_and_downgraded() {
        let old = "message M { required uint64 gone = 1; required uint64 soft = 2; }";
        let new = "message M { optional uint64 soft = 2; }";
        let vs = check(old, new);
        assert!(vs.contains(&Violation::RequiredRemoved {
            message: "M".into(),
            field: "gone".into()
        }));
        assert!(vs.contains(&Violation::RequiredDowngraded {
            message: "M".into(),
            field: "soft".into()
        }));
        assert_eq!(
            vs.iter()
                .filter(|v| v.severity() == Severity::Error)
                .count(),
            1
        );
    }

    #[test]
    fn upgrading_optional_to_required_is_an_error() {
        let old = "message M { optional uint64 f = 1; }";
        let new = "message M { required uint64 f = 1; }";
        let vs = check(old, new);
        assert_eq!(
            vs,
            vec![Violation::RequiredAdded {
                message: "M".into(),
                field: "f".into()
            }]
        );
    }

    #[test]
    fn enum_rules() {
        // HDFS-15624's shape: NVDIMM inserted, ARCHIVE renumbered.
        let old = "enum StorageType { DISK = 0; SSD = 1; ARCHIVE = 2; }";
        let new = "enum StorageType { DISK = 0; SSD = 1; NVDIMM = 2; ARCHIVE = 3; }";
        let vs = check(old, new);
        assert!(vs.contains(&Violation::EnumMemberRenumbered {
            enum_name: "StorageType".into(),
            member: "ARCHIVE".into(),
            old_number: 2,
            new_number: 3
        }));

        // No zero value + membership change → warning.
        let old = "enum E { A = 1; B = 2; }";
        let new = "enum E { A = 1; B = 2; C = 3; }";
        let vs = check(old, new);
        assert_eq!(
            vs,
            vec![Violation::EnumMissingZero {
                enum_name: "E".into()
            }]
        );
        assert_eq!(vs[0].severity(), Severity::Warning);

        // With a zero value the same change is clean.
        let old = "enum E { Z = 0; A = 1; }";
        let new = "enum E { Z = 0; A = 1; B = 2; }";
        assert!(check(old, new).is_empty());
    }

    #[test]
    fn compatible_changes_are_clean() {
        let old = "message M { required uint64 a = 1; }";
        let new = r#"
            message M {
                required uint64 a = 1;
                optional string note = 2;
                repeated uint64 extras = 3;
            }
            message Brand { required bool fresh = 1; }
        "#;
        assert!(check(old, new).is_empty());
    }

    #[test]
    fn works_on_thrift_too() {
        let old = dup_idl::parse_thrift("struct S { 1: required i64 id }").unwrap();
        let new =
            dup_idl::parse_thrift("struct S { 1: required i64 id, 2: required string token }")
                .unwrap();
        let vs = compare_files(&old, &new);
        assert_eq!(
            vs,
            vec![Violation::RequiredAdded {
                message: "S".into(),
                field: "token".into()
            }]
        );
    }
}
