//! # dup-checker — DUPChecker, the static upgrade-bug detectors (paper §6.2)
//!
//! Two checkers, as in the paper:
//!
//! - **Type-1** ([`compare_files`]): cross-version comparison of
//!   serialization-library schemas (Protocol-Buffers-like and Thrift-like,
//!   parsed by `dup-idl`). Four rules — tag changed, required added/removed,
//!   required downgraded, enum-membership change without a 0 value — split
//!   into errors and warnings exactly as Table 6 reports them.
//!   [`check_corpus`] walks a versioned corpus; [`generate`] +
//!   [`table6_specs`] rebuild corpora with the paper's per-system counts
//!   (700 errors + 178 warnings over 7 systems).
//! - **Type-2** ([`check_sources`]): enum-ordinal serialization, via the
//!   `dup-srcmodel` dataflow. A serialized enum whose member positions
//!   changed is a bug (HDFS-15624); one that is merely serialized without
//!   protection is a vulnerability. [`java_corpus`] reproduces the paper's
//!   yield of 2 bugs + 6 vulnerabilities.
//!
//! # Examples
//!
//! ```
//! use dup_checker::{compare_files, Severity};
//! let old = dup_idl::parse_proto("message M { required uint64 id = 1; }").unwrap();
//! let new = dup_idl::parse_proto(
//!     "message M { required uint64 id = 1; required uint64 extra = 2; }").unwrap();
//! let violations = compare_files(&old, &new);
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].severity(), Severity::Error);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod corpus;
mod enum_check;

pub use crate::compare::{compare_files, Severity, Violation};
pub use crate::corpus::{
    check_corpus, generate, parse_version, table6_specs, Corpus, CorpusReport, CorpusSpec,
    CorpusVersion, PairReport,
};
pub use crate::enum_check::{
    check_sources, check_units, java_corpus, EnumFinding, JavaCorpusEntry,
};
