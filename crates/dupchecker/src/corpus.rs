//! Versioned schema corpora and the checker driver that produces Table 6.
//!
//! We cannot ship the Apache codebases the paper scanned, so [`generate`]
//! builds synthetic corpora with a *specified* number of seeded violations
//! per system — the per-system ERR/WARN counts of Table 6 — using the same
//! violation categories. The checker then has to find exactly what was
//! seeded; any drift is a checker bug caught by the tests.

use crate::compare::{compare_files, Severity, Violation};
use dup_core::VersionId;
use dup_idl::{parse_proto, parse_thrift, IdlFile, ParseError, SyntaxKind};
use std::fmt;

/// One version of a system's protocol files.
#[derive(Debug, Clone)]
pub struct CorpusVersion {
    /// Release version.
    pub version: VersionId,
    /// `(file name, source text)` pairs.
    pub files: Vec<(String, String)>,
}

/// A system's protocol-file history.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// System name (Table 6 row label).
    pub system: String,
    /// Which grammar the files use.
    pub syntax: SyntaxKind,
    /// Versions, oldest first.
    pub versions: Vec<CorpusVersion>,
}

/// Checker output for one version pair.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// Old version.
    pub from: VersionId,
    /// New version.
    pub to: VersionId,
    /// All violations.
    pub violations: Vec<Violation>,
}

impl PairReport {
    /// Number of error-severity violations.
    pub fn errors(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity violations.
    pub fn warnings(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity() == Severity::Warning)
            .count()
    }
}

/// Checker output for one system: Table 6's row.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// System name.
    pub system: String,
    /// Per-consecutive-pair results.
    pub pairs: Vec<PairReport>,
}

impl CorpusReport {
    /// Total errors across all pairs.
    pub fn errors(&self) -> usize {
        self.pairs.iter().map(PairReport::errors).sum()
    }

    /// Total warnings across all pairs.
    pub fn warnings(&self) -> usize {
        self.pairs.iter().map(PairReport::warnings).sum()
    }
}

impl fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>6} errors {:>6} warnings",
            self.system,
            self.errors(),
            self.warnings()
        )
    }
}

/// Parses every file of a corpus version and merges the declarations.
pub fn parse_version(syntax: SyntaxKind, cv: &CorpusVersion) -> Result<IdlFile, ParseError> {
    let mut merged = IdlFile {
        syntax,
        package: None,
        messages: Vec::new(),
        enums: Vec::new(),
    };
    for (_, source) in &cv.files {
        let file = match syntax {
            SyntaxKind::Proto2 => parse_proto(source)?,
            SyntaxKind::Thrift => parse_thrift(source)?,
        };
        merged.messages.extend(file.messages);
        merged.enums.extend(file.enums);
        if merged.package.is_none() {
            merged.package = file.package;
        }
    }
    Ok(merged)
}

/// Runs the type-1 checker across every consecutive version pair.
pub fn check_corpus(corpus: &Corpus) -> Result<CorpusReport, ParseError> {
    let mut report = CorpusReport {
        system: corpus.system.clone(),
        pairs: Vec::new(),
    };
    for pair in corpus.versions.windows(2) {
        let old = parse_version(corpus.syntax, &pair[0])?;
        let new = parse_version(corpus.syntax, &pair[1])?;
        report.pairs.push(PairReport {
            from: pair[0].version,
            to: pair[1].version,
            violations: compare_files(&old, &new),
        });
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Corpus generation
// ---------------------------------------------------------------------------

/// Specification for a generated corpus: how many violations of each
/// severity the version pair should contain.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// System name.
    pub system: &'static str,
    /// Grammar.
    pub syntax: SyntaxKind,
    /// Seeded error-severity violations.
    pub errors: usize,
    /// Seeded warning-severity violations.
    pub warnings: usize,
    /// Unchanged messages added for realism.
    pub stable_messages: usize,
}

/// The per-system ERR/WARN counts of the paper's Table 6.
pub fn table6_specs() -> Vec<CorpusSpec> {
    vec![
        CorpusSpec {
            system: "HBase",
            syntax: SyntaxKind::Proto2,
            errors: 7,
            warnings: 23,
            stable_messages: 24,
        },
        CorpusSpec {
            system: "HDFS",
            syntax: SyntaxKind::Proto2,
            errors: 21,
            warnings: 47,
            stable_messages: 40,
        },
        CorpusSpec {
            system: "Mesos",
            syntax: SyntaxKind::Proto2,
            errors: 8,
            warnings: 12,
            stable_messages: 16,
        },
        CorpusSpec {
            system: "YARN",
            syntax: SyntaxKind::Proto2,
            errors: 42,
            warnings: 0,
            stable_messages: 30,
        },
        CorpusSpec {
            system: "Accumulo",
            syntax: SyntaxKind::Thrift,
            errors: 20,
            warnings: 0,
            stable_messages: 18,
        },
        CorpusSpec {
            system: "Hive",
            syntax: SyntaxKind::Proto2,
            errors: 260,
            warnings: 0,
            stable_messages: 60,
        },
        CorpusSpec {
            system: "Impala",
            syntax: SyntaxKind::Thrift,
            errors: 342,
            warnings: 96,
            stable_messages: 50,
        },
    ]
}

fn msg_proto(name: &str, fields: &[(&str, &str, &str, u32)]) -> String {
    let mut s = format!("message {name} {{\n");
    for (label, ty, fname, tag) in fields {
        s.push_str(&format!("    {label} {ty} {fname} = {tag};\n"));
    }
    s.push_str("}\n");
    s
}

fn msg_thrift(name: &str, fields: &[(&str, &str, &str, u32)]) -> String {
    let mut s = format!("struct {name} {{\n");
    for (label, ty, fname, tag) in fields {
        let ty = match *ty {
            "uint64" => "i64",
            "uint32" => "i32",
            "string" => "string",
            other => other,
        };
        let label = if *label == "repeated" {
            "optional".to_string()
        } else {
            (*label).to_string()
        };
        s.push_str(&format!("    {tag}: {label} {ty} {fname},\n"));
    }
    s.push_str("}\n");
    s
}

fn msg(syntax: SyntaxKind, name: &str, fields: &[(&str, &str, &str, u32)]) -> String {
    match syntax {
        SyntaxKind::Proto2 => msg_proto(name, fields),
        SyntaxKind::Thrift => msg_thrift(name, fields),
    }
}

fn enum_src(syntax: SyntaxKind, name: &str, members: &[(&str, i32)]) -> String {
    match syntax {
        SyntaxKind::Proto2 => {
            let mut s = format!("enum {name} {{\n");
            for (m, n) in members {
                s.push_str(&format!("    {m} = {n};\n"));
            }
            s.push_str("}\n");
            s
        }
        SyntaxKind::Thrift => {
            let mut s = format!("enum {name} {{\n");
            for (m, n) in members {
                s.push_str(&format!("    {m} = {n},\n"));
            }
            s.push_str("}\n");
            s
        }
    }
}

/// Generates a two-version corpus with exactly `spec.errors` error-severity
/// and `spec.warnings` warning-severity seeded violations.
///
/// Error kinds rotate through: required-added, tag-changed, required-removed,
/// type-changed. Warning kinds rotate through: required-downgraded,
/// enum-missing-zero. HBase's corpus additionally opens with the literal
/// `ReplicationLoadSink` diff of the paper's Figure 2 (counted in its 7).
pub fn generate(spec: &CorpusSpec) -> Corpus {
    let s = spec.syntax;
    let mut old_files: Vec<(String, String)> = Vec::new();
    let mut new_files: Vec<(String, String)> = Vec::new();

    let mut errors_left = spec.errors;
    if spec.system == "HBase" && errors_left > 0 {
        // Figure 2, verbatim mechanism.
        old_files.push((
            "ReplicationLoadSink.proto".to_string(),
            msg(
                s,
                "ReplicationLoadSink",
                &[("required", "uint64", "ageOfLastAppliedOp", 1)],
            ),
        ));
        new_files.push((
            "ReplicationLoadSink.proto".to_string(),
            msg(
                s,
                "ReplicationLoadSink",
                &[
                    ("required", "uint64", "ageOfLastAppliedOp", 1),
                    ("required", "uint64", "timestampStarted", 3),
                ],
            ),
        ));
        errors_left -= 1;
    }

    for i in 0..errors_left {
        let name = format!("{}ErrMsg{i}", spec.system);
        let base = [
            ("required", "uint64", "id", 1u32),
            ("optional", "string", "note", 2),
        ];
        let mutated: Vec<(&str, &str, &str, u32)> = match i % 4 {
            0 => vec![
                ("required", "uint64", "id", 1),
                ("optional", "string", "note", 2),
                ("required", "uint64", "injected", 3),
            ],
            1 => vec![
                ("required", "uint64", "id", 7),
                ("optional", "string", "note", 2),
            ],
            2 => vec![("optional", "string", "note", 2)],
            _ => vec![
                ("required", "string", "id", 1),
                ("optional", "string", "note", 2),
            ],
        };
        old_files.push((format!("{name}.idl"), msg(s, &name, &base)));
        new_files.push((format!("{name}.idl"), msg(s, &name, &mutated)));
    }

    for i in 0..spec.warnings {
        let name = format!("{}WarnItem{i}", spec.system);
        if i % 2 == 0 {
            // Required downgraded to optional.
            let base = [("required", "uint64", "token", 1u32)];
            let mutated = [("optional", "uint64", "token", 1u32)];
            old_files.push((format!("{name}.idl"), msg(s, &name, &base)));
            new_files.push((format!("{name}.idl"), msg(s, &name, &mutated)));
        } else {
            // Enum membership change without a zero value.
            let old_members = [("ALPHA", 1), ("BETA", 2)];
            let new_members = [("ALPHA", 1), ("BETA", 2), ("GAMMA", 3)];
            old_files.push((format!("{name}.idl"), enum_src(s, &name, &old_members)));
            new_files.push((format!("{name}.idl"), enum_src(s, &name, &new_members)));
        }
    }

    for i in 0..spec.stable_messages {
        let name = format!("{}Stable{i}", spec.system);
        let fields = [
            ("required", "uint64", "key", 1u32),
            ("optional", "string", "value", 2),
            ("repeated", "uint64", "children", 3),
        ];
        let src = msg(s, &name, &fields);
        old_files.push((format!("{name}.idl"), src.clone()));
        // New version compatibly adds an optional field — must NOT be flagged.
        let extended = [
            ("required", "uint64", "key", 1u32),
            ("optional", "string", "value", 2),
            ("repeated", "uint64", "children", 3),
            ("optional", "uint64", "added_compatibly", 4),
        ];
        new_files.push((format!("{name}.idl"), msg(s, &name, &extended)));
    }

    Corpus {
        system: spec.system.to_string(),
        syntax: s,
        versions: vec![
            CorpusVersion {
                version: VersionId::new(1, 0, 0),
                files: old_files,
            },
            CorpusVersion {
                version: VersionId::new(2, 0, 0),
                files: new_files,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_corpora_check_to_their_spec() {
        for spec in table6_specs() {
            let corpus = generate(&spec);
            let report = check_corpus(&corpus).unwrap();
            assert_eq!(report.errors(), spec.errors, "{} errors", spec.system);
            assert_eq!(report.warnings(), spec.warnings, "{} warnings", spec.system);
        }
    }

    #[test]
    fn table6_totals_match_the_paper() {
        let specs = table6_specs();
        let errors: usize = specs.iter().map(|s| s.errors).sum();
        let warnings: usize = specs.iter().map(|s| s.warnings).sum();
        assert_eq!(errors, 700);
        assert_eq!(warnings, 178);
        assert_eq!(specs.len(), 7);
    }

    #[test]
    fn hbase_corpus_contains_figure_2() {
        let spec = table6_specs()
            .into_iter()
            .find(|s| s.system == "HBase")
            .unwrap();
        let corpus = generate(&spec);
        let report = check_corpus(&corpus).unwrap();
        let has_fig2 = report.pairs.iter().flat_map(|p| &p.violations).any(|v| {
            matches!(v, Violation::RequiredAdded { message, field }
                if message == "ReplicationLoadSink" && field == "timestampStarted")
        });
        assert!(has_fig2);
    }

    #[test]
    fn stable_messages_stay_clean() {
        let spec = CorpusSpec {
            system: "Clean",
            syntax: SyntaxKind::Proto2,
            errors: 0,
            warnings: 0,
            stable_messages: 10,
        };
        let report = check_corpus(&generate(&spec)).unwrap();
        assert_eq!(report.errors(), 0);
        assert_eq!(report.warnings(), 0);
    }

    #[test]
    fn thrift_corpora_generate_and_check() {
        let spec = CorpusSpec {
            system: "ThriftSys",
            syntax: SyntaxKind::Thrift,
            errors: 5,
            warnings: 3,
            stable_messages: 4,
        };
        let report = check_corpus(&generate(&spec)).unwrap();
        assert_eq!(report.errors(), 5);
        assert_eq!(report.warnings(), 3);
    }
}
