//! Wire-format errors.
//!
//! These are the *observable symptoms* of cross-version data-syntax
//! incompatibility (paper §4.1.1): a new decoder failing to find a required
//! field written by an old encoder surfaces as [`WireError::MissingRequired`],
//! an enum index shifted by a mid-enum insertion surfaces as
//! [`WireError::UnknownEnumValue`], and so on.

use std::fmt;

/// Errors raised while encoding or decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended in the middle of a value.
    Truncated,
    /// A varint exceeded 10 bytes.
    VarintOverflow,
    /// A field key had an invalid or unsupported wire type.
    BadWireType {
        /// The raw wire-type bits.
        wire_type: u8,
        /// The tag they were attached to.
        tag: u32,
    },
    /// A `required` field was absent from the payload.
    MissingRequired {
        /// Message type being decoded or encoded.
        message: String,
        /// Name of the missing field.
        field: String,
    },
    /// A non-`repeated` field appeared with no value at encode time is fine,
    /// but a `required`/`optional` field was *given* more than one value.
    TooManyValues {
        /// Message type.
        message: String,
        /// Field name.
        field: String,
    },
    /// A decoded enum value is not a member of the enum.
    UnknownEnumValue {
        /// Enum type name.
        enum_name: String,
        /// The out-of-range numeric value.
        value: i32,
    },
    /// The payload's wire type does not match the field's declared type.
    TypeMismatch {
        /// Message type.
        message: String,
        /// Field name.
        field: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The value supplied for a field does not match its declared type.
    ValueType {
        /// Message type.
        message: String,
        /// Field name.
        field: String,
    },
    /// A message or enum type referenced by a descriptor is not in the schema.
    UnknownType(String),
    /// The message type requested for encode/decode is not in the schema.
    UnknownMessage(String),
    /// The value carries a field name the descriptor does not declare.
    UnknownField {
        /// Message type.
        message: String,
        /// The undeclared field name.
        field: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::BadWireType { wire_type, tag } => {
                write!(f, "invalid wire type {wire_type} for tag {tag}")
            }
            WireError::MissingRequired { message, field } => {
                write!(f, "message {message} is missing required field '{field}'")
            }
            WireError::TooManyValues { message, field } => {
                write!(
                    f,
                    "non-repeated field {message}.{field} given multiple values"
                )
            }
            WireError::UnknownEnumValue { enum_name, value } => {
                write!(f, "value {value} is not a member of enum {enum_name}")
            }
            WireError::TypeMismatch {
                message,
                field,
                detail,
            } => {
                write!(f, "type mismatch decoding {message}.{field}: {detail}")
            }
            WireError::ValueType { message, field } => {
                write!(f, "value supplied for {message}.{field} has the wrong type")
            }
            WireError::UnknownType(name) => write!(f, "schema has no type named {name}"),
            WireError::UnknownMessage(name) => write!(f, "schema has no message named {name}"),
            WireError::UnknownField { message, field } => {
                write!(f, "message {message} declares no field named '{field}'")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_parties() {
        let e = WireError::MissingRequired {
            message: "ReplicationLoadSink".into(),
            field: "timestampStarted".into(),
        };
        let text = e.to_string();
        assert!(text.contains("ReplicationLoadSink"));
        assert!(text.contains("timestampStarted"));

        let e = WireError::UnknownEnumValue {
            enum_name: "StorageType".into(),
            value: 5,
        };
        assert!(e.to_string().contains("StorageType"));
    }
}
