//! LEB128 varints and ZigZag transforms, byte-compatible with Protocol
//! Buffers' base-128 varint encoding.

use crate::error::WireError;

/// Appends `value` to `out` as a base-128 varint (1–10 bytes).
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from the front of `input`, returning `(value, consumed)`.
pub fn decode_varint(input: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 {
            return Err(WireError::VarintOverflow);
        }
        // The 10th byte may only contribute the final bit.
        if i == 9 && byte & 0xfe != 0 {
            return Err(WireError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    Err(WireError::Truncated)
}

/// ZigZag-encodes a signed value so small magnitudes stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverts [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors_match_protobuf() {
        // From the protobuf encoding documentation.
        let mut out = Vec::new();
        encode_varint(1, &mut out);
        assert_eq!(out, vec![0x01]);
        out.clear();
        encode_varint(300, &mut out);
        assert_eq!(out, vec![0xac, 0x02]);
        out.clear();
        encode_varint(u64::MAX, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn decode_reports_truncation() {
        assert_eq!(decode_varint(&[0x80]), Err(WireError::Truncated));
        assert_eq!(decode_varint(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn decode_rejects_overlong() {
        let overlong = [
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
        ];
        assert_eq!(decode_varint(&overlong), Err(WireError::VarintOverflow));
    }

    #[test]
    fn zigzag_known_vectors() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_decode(4294967294), 2147483647);
    }

    proptest! {
        #[test]
        fn varint_roundtrip(v in any::<u64>()) {
            let mut out = Vec::new();
            encode_varint(v, &mut out);
            let (decoded, used) = decode_varint(&out).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, out.len());
        }

        #[test]
        fn varint_decode_ignores_trailing(v in any::<u64>(), trail in proptest::collection::vec(any::<u8>(), 0..8)) {
            let mut out = Vec::new();
            encode_varint(v, &mut out);
            let len = out.len();
            out.extend_from_slice(&trail);
            let (decoded, used) = decode_varint(&out).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, len);
        }

        #[test]
        fn zigzag_roundtrip(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn zigzag_small_magnitude_stays_small(v in -1000i64..1000) {
            prop_assert!(zigzag_encode(v) <= 2000);
        }
    }
}
