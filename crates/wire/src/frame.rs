//! Versioned message frames.
//!
//! The paper's good-practice list (§4.1.2) recommends inserting a version
//! identifier in *all* data written to storage or sent over the network, and
//! checking it in every deserialization function. [`Frame`] is that
//! discipline packaged: a magic, a protocol-version identifier, a message
//! kind, and the body. The mini systems use it for their network messages —
//! and the *bugs* seeded in them are precisely the places where a version
//! either is not checked (KAFKA-10173), has no room for intermediates
//! (CASSANDRA-5102), or is learned through a side channel instead of the
//! frame (CASSANDRA-6678).

use crate::error::WireError;
use crate::varint::{decode_varint, encode_varint};
use bytes::Bytes;

const MAGIC: u16 = 0xD0_5E;

/// A framed message: protocol version + kind tag + opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version identifier of the sender.
    pub version: u32,
    /// Message kind (system-defined discriminator, e.g. `"gossip"`).
    pub kind: String,
    /// Serialized body (typically `proto::encode` output).
    pub body: Bytes,
}

impl Frame {
    /// Creates a frame.
    pub fn new(version: u32, kind: &str, body: impl Into<Bytes>) -> Self {
        Frame {
            version,
            kind: kind.to_string(),
            body: body.into(),
        }
    }

    /// Serializes the frame.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.body.len() + self.kind.len() + 10);
        out.extend_from_slice(&MAGIC.to_be_bytes());
        encode_varint(u64::from(self.version), &mut out);
        encode_varint(self.kind.len() as u64, &mut out);
        out.extend_from_slice(self.kind.as_bytes());
        out.extend_from_slice(&self.body);
        Bytes::from(out)
    }

    /// Parses a frame.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        if bytes.len() < 2 {
            return Err(WireError::Truncated);
        }
        let magic = u16::from_be_bytes([bytes[0], bytes[1]]);
        if magic != MAGIC {
            return Err(WireError::TypeMismatch {
                message: "Frame".to_string(),
                field: "magic".to_string(),
                detail: format!("bad magic {magic:#06x}"),
            });
        }
        let mut pos = 2;
        let (version, used) = decode_varint(&bytes[pos..])?;
        pos += used;
        let version = u32::try_from(version).map_err(|_| WireError::VarintOverflow)?;
        let (kind_len, used) = decode_varint(&bytes[pos..])?;
        pos += used;
        let kind_len = kind_len as usize;
        if bytes.len() - pos < kind_len {
            return Err(WireError::Truncated);
        }
        let kind = std::str::from_utf8(&bytes[pos..pos + kind_len])
            .map_err(|_| WireError::TypeMismatch {
                message: "Frame".to_string(),
                field: "kind".to_string(),
                detail: "invalid UTF-8".to_string(),
            })?
            .to_string();
        pos += kind_len;
        Ok(Frame {
            version,
            kind,
            body: Bytes::copy_from_slice(&bytes[pos..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let f = Frame::new(12, "gossip", Bytes::from_static(b"payload"));
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Frame::decode(&[0x00, 0x01, 0x02]).unwrap_err();
        assert!(matches!(err, WireError::TypeMismatch { .. }));
    }

    #[test]
    fn truncated_rejected() {
        let f = Frame::new(3, "req", Bytes::from_static(b""));
        let bytes = f.encode();
        assert!(Frame::decode(&bytes[..1]).is_err());
        assert!(Frame::decode(&bytes[..3]).is_err());
    }

    #[test]
    fn empty_body_ok() {
        let f = Frame::new(0, "ping", Bytes::new());
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back.body.len(), 0);
        assert_eq!(back.kind, "ping");
    }

    proptest! {
        #[test]
        fn frame_roundtrip(version in any::<u32>(), kind in "[a-z]{0,16}", body in proptest::collection::vec(any::<u8>(), 0..64)) {
            let f = Frame::new(version, &kind, body);
            prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        }
    }
}
