//! Protobuf-compatible encoder/decoder, driven by a runtime [`Schema`].
//!
//! Behaviour mirrors proto2 where it matters for upgrade failures:
//!
//! - **required** fields are enforced at both encode and decode time; a new
//!   version that adds a `required` field therefore fails to decode data
//!   written by an old version (HDFS-14726, HBASE-25238);
//! - **unknown tags are skipped**, so *adding an optional field* is
//!   backward/forward compatible — the good practice the paper recommends;
//! - **changed tag numbers** make old payloads decode into the wrong field
//!   or fail a type check (DUPChecker category 1);
//! - **enum values are validated against the descriptor**, so an enum member
//!   inserted mid-enum (shifting later indices, HDFS-15624) surfaces as
//!   [`WireError::UnknownEnumValue`]. (Real proto2 relegates unknown enum
//!   values to the unknown-field set; we fail loudly because the studied
//!   systems' hand-written `valueOf(int)` lookups threw — and that is the
//!   mechanism under study.)

use crate::error::WireError;
use crate::schema::{FieldDescriptor, FieldType, Label, MessageDescriptor, Schema};
use crate::value::{MessageValue, Value};
use crate::varint::{decode_varint, encode_varint};

const WIRE_VARINT: u8 = 0;
const WIRE_FIXED64: u8 = 1;
const WIRE_LEN: u8 = 2;
const WIRE_FIXED32: u8 = 5;

/// Encodes `value` according to `schema`.
///
/// Fields are written in descriptor (declaration) order. Fails if a required
/// field is absent, a singular field has multiple values, a field value's
/// type contradicts its declaration, or the value carries undeclared fields.
pub fn encode(schema: &Schema, value: &MessageValue) -> Result<Vec<u8>, WireError> {
    let desc = schema
        .message(&value.type_name)
        .ok_or_else(|| WireError::UnknownMessage(value.type_name.clone()))?;
    let mut out = Vec::new();
    encode_into(schema, desc, value, &mut out)?;
    Ok(out)
}

fn encode_into(
    schema: &Schema,
    desc: &MessageDescriptor,
    value: &MessageValue,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    // Reject undeclared fields: writing a field the schema does not know is a
    // programming error in the system under test, not a compatibility event.
    for (name, values) in value.fields() {
        if !values.is_empty() && desc.field_by_name(name).is_none() {
            return Err(WireError::UnknownField {
                message: desc.name.clone(),
                field: name.to_string(),
            });
        }
    }
    for field in &desc.fields {
        let values = value.get_all(&field.name);
        match field.label {
            Label::Required => {
                if values.is_empty() {
                    return Err(WireError::MissingRequired {
                        message: desc.name.clone(),
                        field: field.name.clone(),
                    });
                }
                if values.len() > 1 {
                    return Err(WireError::TooManyValues {
                        message: desc.name.clone(),
                        field: field.name.clone(),
                    });
                }
            }
            Label::Optional => {
                if values.len() > 1 {
                    return Err(WireError::TooManyValues {
                        message: desc.name.clone(),
                        field: field.name.clone(),
                    });
                }
            }
            Label::Repeated => {}
        }
        for v in values {
            encode_field(schema, desc, field, v, out)?;
        }
    }
    Ok(())
}

fn key(tag: u32, wire_type: u8) -> u64 {
    (u64::from(tag) << 3) | u64::from(wire_type)
}

fn encode_field(
    schema: &Schema,
    desc: &MessageDescriptor,
    field: &FieldDescriptor,
    value: &Value,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let bad = || WireError::ValueType {
        message: desc.name.clone(),
        field: field.name.clone(),
    };
    match (&field.field_type, value) {
        (FieldType::Int32, Value::I32(v)) => {
            encode_varint(key(field.tag, WIRE_VARINT), out);
            encode_varint(*v as i64 as u64, out);
        }
        (FieldType::Int64, Value::I64(v)) => {
            encode_varint(key(field.tag, WIRE_VARINT), out);
            encode_varint(*v as u64, out);
        }
        (FieldType::Uint32, Value::U32(v)) => {
            encode_varint(key(field.tag, WIRE_VARINT), out);
            encode_varint(u64::from(*v), out);
        }
        (FieldType::Uint64, Value::U64(v)) => {
            encode_varint(key(field.tag, WIRE_VARINT), out);
            encode_varint(*v, out);
        }
        (FieldType::Bool, Value::Bool(v)) => {
            encode_varint(key(field.tag, WIRE_VARINT), out);
            encode_varint(u64::from(*v), out);
        }
        (FieldType::Str, Value::Str(v)) => {
            encode_varint(key(field.tag, WIRE_LEN), out);
            encode_varint(v.len() as u64, out);
            out.extend_from_slice(v.as_bytes());
        }
        (FieldType::BytesType, Value::Bytes(v)) => {
            encode_varint(key(field.tag, WIRE_LEN), out);
            encode_varint(v.len() as u64, out);
            out.extend_from_slice(v);
        }
        (FieldType::Enum(enum_name), Value::Enum(v)) => {
            let e = schema
                .enum_desc(enum_name)
                .ok_or_else(|| WireError::UnknownType(enum_name.clone()))?;
            if !e.contains_number(*v) {
                return Err(WireError::UnknownEnumValue {
                    enum_name: enum_name.clone(),
                    value: *v,
                });
            }
            encode_varint(key(field.tag, WIRE_VARINT), out);
            encode_varint(*v as i64 as u64, out);
        }
        (FieldType::Message(msg_name), Value::Msg(v)) => {
            let inner_desc = schema
                .message(msg_name)
                .ok_or_else(|| WireError::UnknownType(msg_name.clone()))?;
            let mut inner = Vec::new();
            encode_into(schema, inner_desc, v, &mut inner)?;
            encode_varint(key(field.tag, WIRE_LEN), out);
            encode_varint(inner.len() as u64, out);
            out.extend_from_slice(&inner);
        }
        _ => return Err(bad()),
    }
    Ok(())
}

/// Decodes `bytes` as message type `message_name` according to `schema`.
///
/// Unknown tags are skipped; required-field presence is verified after the
/// payload is consumed; enum values must be members of their enum.
pub fn decode(
    schema: &Schema,
    message_name: &str,
    bytes: &[u8],
) -> Result<MessageValue, WireError> {
    let desc = schema
        .message(message_name)
        .ok_or_else(|| WireError::UnknownMessage(message_name.to_string()))?;
    decode_inner(schema, desc, bytes)
}

fn decode_inner(
    schema: &Schema,
    desc: &MessageDescriptor,
    bytes: &[u8],
) -> Result<MessageValue, WireError> {
    let mut value = MessageValue::new(&desc.name);
    let mut pos = 0usize;
    while pos < bytes.len() {
        let (k, used) = decode_varint(&bytes[pos..])?;
        pos += used;
        let tag = (k >> 3) as u32;
        let wire_type = (k & 7) as u8;
        match desc.field_by_tag(tag) {
            Some(field) => {
                let v = decode_field(schema, desc, field, wire_type, bytes, &mut pos)?;
                value.push_mut(&field.name, v);
            }
            None => skip_field(wire_type, tag, bytes, &mut pos)?,
        }
    }
    // Presence checks: required exactly once (proto2 tolerates duplicates of
    // singular fields with last-wins; we follow that), required at least once.
    for field in &desc.fields {
        if field.label == Label::Required && !value.has(&field.name) {
            return Err(WireError::MissingRequired {
                message: desc.name.clone(),
                field: field.name.clone(),
            });
        }
    }
    Ok(value)
}

fn decode_field(
    schema: &Schema,
    desc: &MessageDescriptor,
    field: &FieldDescriptor,
    wire_type: u8,
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Value, WireError> {
    let mismatch = |detail: String| WireError::TypeMismatch {
        message: desc.name.clone(),
        field: field.name.clone(),
        detail,
    };
    let expect_wire = match field.field_type {
        FieldType::Int32
        | FieldType::Int64
        | FieldType::Uint32
        | FieldType::Uint64
        | FieldType::Bool
        | FieldType::Enum(_) => WIRE_VARINT,
        FieldType::Str | FieldType::BytesType | FieldType::Message(_) => WIRE_LEN,
    };
    if wire_type != expect_wire {
        return Err(mismatch(format!(
            "expected wire type {expect_wire}, found {wire_type}"
        )));
    }
    match &field.field_type {
        FieldType::Int32 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(Value::I32(v as i64 as i32))
        }
        FieldType::Int64 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(Value::I64(v as i64))
        }
        FieldType::Uint32 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            u32::try_from(v)
                .map(Value::U32)
                .map_err(|_| mismatch(format!("value {v} overflows uint32")))
        }
        FieldType::Uint64 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(Value::U64(v))
        }
        FieldType::Bool => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(Value::Bool(v != 0))
        }
        FieldType::Enum(enum_name) => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            let number = v as i64 as i32;
            let e = schema
                .enum_desc(enum_name)
                .ok_or_else(|| WireError::UnknownType(enum_name.clone()))?;
            if !e.contains_number(number) {
                return Err(WireError::UnknownEnumValue {
                    enum_name: enum_name.clone(),
                    value: number,
                });
            }
            Ok(Value::Enum(number))
        }
        FieldType::Str => {
            let slice = read_len_delimited(bytes, pos)?;
            let s = std::str::from_utf8(slice)
                .map_err(|_| mismatch("invalid UTF-8 in string field".to_string()))?;
            Ok(Value::Str(s.to_string()))
        }
        FieldType::BytesType => {
            let slice = read_len_delimited(bytes, pos)?;
            Ok(Value::Bytes(slice.to_vec()))
        }
        FieldType::Message(msg_name) => {
            let slice = read_len_delimited(bytes, pos)?;
            let inner_desc = schema
                .message(msg_name)
                .ok_or_else(|| WireError::UnknownType(msg_name.clone()))?;
            Ok(Value::Msg(decode_inner(schema, inner_desc, slice)?))
        }
    }
}

fn read_len_delimited<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], WireError> {
    let (len, used) = decode_varint(&bytes[*pos..])?;
    *pos += used;
    let len = len as usize;
    if bytes.len() - *pos < len {
        return Err(WireError::Truncated);
    }
    let slice = &bytes[*pos..*pos + len];
    *pos += len;
    Ok(slice)
}

fn skip_field(wire_type: u8, tag: u32, bytes: &[u8], pos: &mut usize) -> Result<(), WireError> {
    match wire_type {
        WIRE_VARINT => {
            let (_, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
        }
        WIRE_FIXED64 => {
            if bytes.len() - *pos < 8 {
                return Err(WireError::Truncated);
            }
            *pos += 8;
        }
        WIRE_LEN => {
            read_len_delimited(bytes, pos)?;
        }
        WIRE_FIXED32 => {
            if bytes.len() - *pos < 4 {
                return Err(WireError::Truncated);
            }
            *pos += 4;
        }
        other => {
            return Err(WireError::BadWireType {
                wire_type: other,
                tag,
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::EnumDescriptor;

    fn schema_v1() -> Schema {
        Schema::new()
            .with_message(
                MessageDescriptor::new("ReplicationLoadSink")
                    .with(FieldDescriptor::required(
                        1,
                        "ageOfLastAppliedOp",
                        FieldType::Uint64,
                    ))
                    .with(FieldDescriptor::optional(2, "note", FieldType::Str)),
            )
            .with_enum(EnumDescriptor::new(
                "StorageType",
                &[("DISK", 0), ("SSD", 1), ("ARCHIVE", 2)],
            ))
    }

    /// HBase 2.3.3's view: a new `required` field with tag 3 (paper Fig. 2).
    fn schema_v2() -> Schema {
        Schema::new().with_message(
            MessageDescriptor::new("ReplicationLoadSink")
                .with(FieldDescriptor::required(
                    1,
                    "ageOfLastAppliedOp",
                    FieldType::Uint64,
                ))
                .with(FieldDescriptor::optional(2, "note", FieldType::Str))
                .with(FieldDescriptor::required(
                    3,
                    "timestampStarted",
                    FieldType::Uint64,
                )),
        )
    }

    fn sink(age: u64) -> MessageValue {
        MessageValue::new("ReplicationLoadSink").set("ageOfLastAppliedOp", Value::U64(age))
    }

    #[test]
    fn roundtrip_same_schema() {
        let s = schema_v1();
        let m = sink(7).set("note", Value::Str("ok".into()));
        let bytes = encode(&s, &m).unwrap();
        let back = decode(&s, "ReplicationLoadSink", &bytes).unwrap();
        assert_eq!(back.get_u64("ageOfLastAppliedOp").unwrap(), 7);
        assert_eq!(back.get_str("note").unwrap(), "ok");
    }

    #[test]
    fn hbase_25238_new_required_field_breaks_decode() {
        // Old node encodes with v1; upgraded node decodes with v2 and fails,
        // reproducing the InvalidProtocolBufferException of HBASE-25238.
        let old = schema_v1();
        let new = schema_v2();
        let bytes = encode(&old, &sink(3)).unwrap();
        let err = decode(&new, "ReplicationLoadSink", &bytes).unwrap_err();
        assert_eq!(
            err,
            WireError::MissingRequired {
                message: "ReplicationLoadSink".into(),
                field: "timestampStarted".into()
            }
        );
    }

    #[test]
    fn new_optional_field_is_backward_and_forward_compatible() {
        let old = schema_v1();
        let new = Schema::new().with_message(
            MessageDescriptor::new("ReplicationLoadSink")
                .with(FieldDescriptor::required(
                    1,
                    "ageOfLastAppliedOp",
                    FieldType::Uint64,
                ))
                .with(FieldDescriptor::optional(2, "note", FieldType::Str))
                .with(FieldDescriptor::optional(
                    3,
                    "timestampStarted",
                    FieldType::Uint64,
                )),
        );
        // old → new: absent optional is fine.
        let bytes = encode(&old, &sink(3)).unwrap();
        assert!(decode(&new, "ReplicationLoadSink", &bytes).is_ok());
        // new → old: the unknown tag 3 is skipped.
        let m = sink(3).set("timestampStarted", Value::U64(99));
        let bytes = encode(&new, &m).unwrap();
        let back = decode(&old, "ReplicationLoadSink", &bytes).unwrap();
        assert!(!back.has("timestampStarted"));
        assert_eq!(back.get_u64("ageOfLastAppliedOp").unwrap(), 3);
    }

    #[test]
    fn changed_tag_number_breaks_decode() {
        // DUPChecker category 1: same field, different tag.
        let old = schema_v1();
        let moved = Schema::new().with_message(MessageDescriptor::new("ReplicationLoadSink").with(
            FieldDescriptor::required(5, "ageOfLastAppliedOp", FieldType::Uint64),
        ));
        let bytes = encode(&old, &sink(3)).unwrap();
        let err = decode(&moved, "ReplicationLoadSink", &bytes).unwrap_err();
        assert!(matches!(err, WireError::MissingRequired { .. }));
    }

    #[test]
    fn enum_member_insertion_shifts_indices_and_fails() {
        // HDFS-15624: NVDIMM inserted mid-enum; a value encoded as ARCHIVE=2
        // under the old numbering is not ARCHIVE anymore — and values past
        // the end fail outright.
        let old = schema_v1();
        let s = Schema::new()
            .with_message(
                MessageDescriptor::new("Report").with(FieldDescriptor::required(
                    1,
                    "type",
                    FieldType::Enum("StorageType".into()),
                )),
            )
            .with_enum(old.enum_desc("StorageType").unwrap().clone());
        let m = MessageValue::new("Report").set("type", Value::Enum(2));
        let bytes = encode(&s, &m).unwrap();

        // New version truncated the enum (member deleted): decode fails.
        let new = Schema::new()
            .with_message(s.message("Report").unwrap().clone())
            .with_enum(EnumDescriptor::new(
                "StorageType",
                &[("DISK", 0), ("SSD", 1)],
            ));
        let err = decode(&new, "Report", &bytes).unwrap_err();
        assert_eq!(
            err,
            WireError::UnknownEnumValue {
                enum_name: "StorageType".into(),
                value: 2
            }
        );
    }

    #[test]
    fn encode_enforces_required_and_singularity() {
        let s = schema_v1();
        let err = encode(&s, &MessageValue::new("ReplicationLoadSink")).unwrap_err();
        assert!(matches!(err, WireError::MissingRequired { .. }));

        let m = sink(1)
            .push("note", Value::Str("a".into()))
            .push("note", Value::Str("b".into()));
        let err = encode(&s, &m).unwrap_err();
        assert!(matches!(err, WireError::TooManyValues { .. }));
    }

    #[test]
    fn encode_rejects_undeclared_fields_and_unknown_messages() {
        let s = schema_v1();
        let m = sink(1).set("bogus", Value::Bool(true));
        assert!(matches!(
            encode(&s, &m).unwrap_err(),
            WireError::UnknownField { .. }
        ));
        let err = encode(&s, &MessageValue::new("Nope")).unwrap_err();
        assert_eq!(err, WireError::UnknownMessage("Nope".into()));
    }

    #[test]
    fn nested_messages_roundtrip() {
        let s = Schema::new()
            .with_message(
                MessageDescriptor::new("Inner").with(FieldDescriptor::required(
                    1,
                    "x",
                    FieldType::Int64,
                )),
            )
            .with_message(
                MessageDescriptor::new("Outer")
                    .with(FieldDescriptor::required(
                        1,
                        "inner",
                        FieldType::Message("Inner".into()),
                    ))
                    .with(FieldDescriptor::repeated(2, "tags", FieldType::Str)),
            );
        let m = MessageValue::new("Outer")
            .set(
                "inner",
                Value::Msg(MessageValue::new("Inner").set("x", Value::I64(-5))),
            )
            .push("tags", Value::Str("a".into()))
            .push("tags", Value::Str("b".into()));
        let bytes = encode(&s, &m).unwrap();
        let back = decode(&s, "Outer", &bytes).unwrap();
        assert_eq!(back.get_msg("inner").unwrap().get_i64("x").unwrap(), -5);
        assert_eq!(back.get_all("tags").len(), 2);
    }

    #[test]
    fn negative_int32_roundtrips_via_64bit_varint() {
        let s = Schema::new().with_message(
            MessageDescriptor::new("M").with(FieldDescriptor::required(1, "v", FieldType::Int32)),
        );
        let m = MessageValue::new("M").set("v", Value::I32(-1));
        let bytes = encode(&s, &m).unwrap();
        // proto2 encodes negative int32 as a 10-byte varint.
        assert_eq!(bytes.len(), 1 + 10);
        let back = decode(&s, "M", &bytes).unwrap();
        assert_eq!(back.get_i32("v").unwrap(), -1);
    }

    #[test]
    fn truncated_payload_is_detected() {
        let s = schema_v1();
        let bytes = encode(&s, &sink(300)).unwrap();
        let err = decode(&s, "ReplicationLoadSink", &bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err, WireError::Truncated);
    }

    #[test]
    fn wire_type_mismatch_is_detected() {
        // Encode a string under tag 1, decode with a schema that says tag 1
        // is a varint: the decoder must not misparse silently.
        let writer = Schema::new().with_message(
            MessageDescriptor::new("M").with(FieldDescriptor::required(1, "v", FieldType::Str)),
        );
        let reader = Schema::new().with_message(
            MessageDescriptor::new("M").with(FieldDescriptor::required(1, "v", FieldType::Uint64)),
        );
        let bytes = encode(
            &writer,
            &MessageValue::new("M").set("v", Value::Str("hello".into())),
        )
        .unwrap();
        let err = decode(&reader, "M", &bytes).unwrap_err();
        assert!(matches!(err, WireError::TypeMismatch { .. }));
    }
}
