//! A Thrift-like binary format driven by the same runtime [`Schema`].
//!
//! The studied systems Accumulo and Impala use Apache Thrift rather than
//! Protocol Buffers (paper §6.2, Table 6). The layout here follows Thrift's
//! binary protocol in spirit — a type byte and a 16-bit field id per field,
//! terminated by a stop byte — which is enough to reproduce the same four
//! categories of cross-version incompatibility over a second serialization
//! library, as DUPChecker requires.
//!
//! Layout per field: `[type: u8][field id: u16 BE][payload]`; a message ends
//! with `T_STOP` (0x00). Integers are varints, strings/bytes/messages are
//! length-prefixed with a varint.

use crate::error::WireError;
use crate::schema::{FieldDescriptor, FieldType, Label, MessageDescriptor, Schema};
use crate::value::{MessageValue, Value};
use crate::varint::{decode_varint, encode_varint};

const T_STOP: u8 = 0x00;
const T_BOOL: u8 = 0x02;
const T_I32: u8 = 0x08;
const T_I64: u8 = 0x0a;
const T_STRING: u8 = 0x0b;
const T_STRUCT: u8 = 0x0c;

fn type_code(ft: &FieldType) -> u8 {
    match ft {
        FieldType::Bool => T_BOOL,
        FieldType::Int32 | FieldType::Uint32 | FieldType::Enum(_) => T_I32,
        FieldType::Int64 | FieldType::Uint64 => T_I64,
        FieldType::Str | FieldType::BytesType => T_STRING,
        FieldType::Message(_) => T_STRUCT,
    }
}

/// Encodes `value` in the Thrift-like layout according to `schema`.
///
/// Enforces the same presence rules as [`crate::proto::encode`].
pub fn encode(schema: &Schema, value: &MessageValue) -> Result<Vec<u8>, WireError> {
    let desc = schema
        .message(&value.type_name)
        .ok_or_else(|| WireError::UnknownMessage(value.type_name.clone()))?;
    let mut out = Vec::new();
    encode_struct(schema, desc, value, &mut out)?;
    Ok(out)
}

fn encode_struct(
    schema: &Schema,
    desc: &MessageDescriptor,
    value: &MessageValue,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    for (name, values) in value.fields() {
        if !values.is_empty() && desc.field_by_name(name).is_none() {
            return Err(WireError::UnknownField {
                message: desc.name.clone(),
                field: name.to_string(),
            });
        }
    }
    for field in &desc.fields {
        let values = value.get_all(&field.name);
        match field.label {
            Label::Required if values.is_empty() => {
                return Err(WireError::MissingRequired {
                    message: desc.name.clone(),
                    field: field.name.clone(),
                });
            }
            Label::Required | Label::Optional if values.len() > 1 => {
                return Err(WireError::TooManyValues {
                    message: desc.name.clone(),
                    field: field.name.clone(),
                });
            }
            _ => {}
        }
        for v in values {
            encode_field(schema, desc, field, v, out)?;
        }
    }
    out.push(T_STOP);
    Ok(())
}

fn encode_field(
    schema: &Schema,
    desc: &MessageDescriptor,
    field: &FieldDescriptor,
    value: &Value,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let bad = || WireError::ValueType {
        message: desc.name.clone(),
        field: field.name.clone(),
    };
    let id = u16::try_from(field.tag).map_err(|_| bad())?;
    out.push(type_code(&field.field_type));
    out.extend_from_slice(&id.to_be_bytes());
    match (&field.field_type, value) {
        (FieldType::Bool, Value::Bool(v)) => out.push(u8::from(*v)),
        (FieldType::Int32, Value::I32(v)) => encode_varint(*v as i64 as u64, out),
        (FieldType::Uint32, Value::U32(v)) => encode_varint(u64::from(*v), out),
        (FieldType::Int64, Value::I64(v)) => encode_varint(*v as u64, out),
        (FieldType::Uint64, Value::U64(v)) => encode_varint(*v, out),
        (FieldType::Enum(enum_name), Value::Enum(v)) => {
            let e = schema
                .enum_desc(enum_name)
                .ok_or_else(|| WireError::UnknownType(enum_name.clone()))?;
            if !e.contains_number(*v) {
                return Err(WireError::UnknownEnumValue {
                    enum_name: enum_name.clone(),
                    value: *v,
                });
            }
            encode_varint(*v as i64 as u64, out);
        }
        (FieldType::Str, Value::Str(v)) => {
            encode_varint(v.len() as u64, out);
            out.extend_from_slice(v.as_bytes());
        }
        (FieldType::BytesType, Value::Bytes(v)) => {
            encode_varint(v.len() as u64, out);
            out.extend_from_slice(v);
        }
        (FieldType::Message(msg_name), Value::Msg(v)) => {
            let inner_desc = schema
                .message(msg_name)
                .ok_or_else(|| WireError::UnknownType(msg_name.clone()))?;
            let mut inner = Vec::new();
            encode_struct(schema, inner_desc, v, &mut inner)?;
            encode_varint(inner.len() as u64, out);
            out.extend_from_slice(&inner);
        }
        _ => return Err(bad()),
    }
    Ok(())
}

/// Decodes `bytes` as message type `message_name` in the Thrift-like layout.
///
/// Unknown field ids are skipped using the type byte; required fields are
/// verified after the stop byte.
pub fn decode(
    schema: &Schema,
    message_name: &str,
    bytes: &[u8],
) -> Result<MessageValue, WireError> {
    let desc = schema
        .message(message_name)
        .ok_or_else(|| WireError::UnknownMessage(message_name.to_string()))?;
    let mut pos = 0;
    let v = decode_struct(schema, desc, bytes, &mut pos)?;
    Ok(v)
}

fn decode_struct(
    schema: &Schema,
    desc: &MessageDescriptor,
    bytes: &[u8],
    pos: &mut usize,
) -> Result<MessageValue, WireError> {
    let mut value = MessageValue::new(&desc.name);
    loop {
        let t = *bytes.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if t == T_STOP {
            break;
        }
        if bytes.len() - *pos < 2 {
            return Err(WireError::Truncated);
        }
        let id = u16::from_be_bytes([bytes[*pos], bytes[*pos + 1]]);
        *pos += 2;
        match desc.field_by_tag(u32::from(id)) {
            Some(field) => {
                let expected = type_code(&field.field_type);
                if t != expected {
                    return Err(WireError::TypeMismatch {
                        message: desc.name.clone(),
                        field: field.name.clone(),
                        detail: format!("expected type code {expected:#x}, found {t:#x}"),
                    });
                }
                let v = decode_payload(schema, desc, field, bytes, pos)?;
                value.push_mut(&field.name, v);
            }
            None => skip_payload(t, id, bytes, pos)?,
        }
    }
    for field in &desc.fields {
        if field.label == Label::Required && !value.has(&field.name) {
            return Err(WireError::MissingRequired {
                message: desc.name.clone(),
                field: field.name.clone(),
            });
        }
    }
    Ok(value)
}

fn decode_payload(
    schema: &Schema,
    desc: &MessageDescriptor,
    field: &FieldDescriptor,
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Value, WireError> {
    match &field.field_type {
        FieldType::Bool => {
            let b = *bytes.get(*pos).ok_or(WireError::Truncated)?;
            *pos += 1;
            Ok(Value::Bool(b != 0))
        }
        FieldType::Int32 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(Value::I32(v as i64 as i32))
        }
        FieldType::Uint32 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            u32::try_from(v)
                .map(Value::U32)
                .map_err(|_| WireError::TypeMismatch {
                    message: desc.name.clone(),
                    field: field.name.clone(),
                    detail: format!("value {v} overflows uint32"),
                })
        }
        FieldType::Int64 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(Value::I64(v as i64))
        }
        FieldType::Uint64 => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(Value::U64(v))
        }
        FieldType::Enum(enum_name) => {
            let (v, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            let number = v as i64 as i32;
            let e = schema
                .enum_desc(enum_name)
                .ok_or_else(|| WireError::UnknownType(enum_name.clone()))?;
            if !e.contains_number(number) {
                return Err(WireError::UnknownEnumValue {
                    enum_name: enum_name.clone(),
                    value: number,
                });
            }
            Ok(Value::Enum(number))
        }
        FieldType::Str => {
            let slice = read_blob(bytes, pos)?;
            let s = std::str::from_utf8(slice).map_err(|_| WireError::TypeMismatch {
                message: desc.name.clone(),
                field: field.name.clone(),
                detail: "invalid UTF-8".to_string(),
            })?;
            Ok(Value::Str(s.to_string()))
        }
        FieldType::BytesType => Ok(Value::Bytes(read_blob(bytes, pos)?.to_vec())),
        FieldType::Message(msg_name) => {
            let slice = read_blob(bytes, pos)?;
            let inner_desc = schema
                .message(msg_name)
                .ok_or_else(|| WireError::UnknownType(msg_name.clone()))?;
            let mut inner_pos = 0;
            decode_struct(schema, inner_desc, slice, &mut inner_pos).map(Value::Msg)
        }
    }
}

fn read_blob<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], WireError> {
    let (len, used) = decode_varint(&bytes[*pos..])?;
    *pos += used;
    let len = len as usize;
    if bytes.len() - *pos < len {
        return Err(WireError::Truncated);
    }
    let slice = &bytes[*pos..*pos + len];
    *pos += len;
    Ok(slice)
}

fn skip_payload(t: u8, id: u16, bytes: &[u8], pos: &mut usize) -> Result<(), WireError> {
    match t {
        T_BOOL => {
            if *pos >= bytes.len() {
                return Err(WireError::Truncated);
            }
            *pos += 1;
            Ok(())
        }
        T_I32 | T_I64 => {
            let (_, used) = decode_varint(&bytes[*pos..])?;
            *pos += used;
            Ok(())
        }
        T_STRING | T_STRUCT => {
            read_blob(bytes, pos)?;
            Ok(())
        }
        other => Err(WireError::BadWireType {
            wire_type: other,
            tag: u32::from(id),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::EnumDescriptor;

    fn scan_schema(extra_required: bool) -> Schema {
        let mut m = MessageDescriptor::new("ScanRequest")
            .with(FieldDescriptor::required(1, "table", FieldType::Str))
            .with(FieldDescriptor::optional(2, "limit", FieldType::Int32))
            .with(FieldDescriptor::repeated(3, "columns", FieldType::Str));
        if extra_required {
            m = m.with(FieldDescriptor::required(
                4,
                "authToken",
                FieldType::BytesType,
            ));
        }
        Schema::new().with_message(m).with_enum(EnumDescriptor::new(
            "Durability",
            &[("NONE", 0), ("SYNC", 1)],
        ))
    }

    fn scan() -> MessageValue {
        MessageValue::new("ScanRequest")
            .set("table", Value::Str("t1".into()))
            .set("limit", Value::I32(10))
            .push("columns", Value::Str("a".into()))
            .push("columns", Value::Str("b".into()))
    }

    #[test]
    fn roundtrip() {
        let s = scan_schema(false);
        let bytes = encode(&s, &scan()).unwrap();
        let back = decode(&s, "ScanRequest", &bytes).unwrap();
        assert_eq!(back.get_str("table").unwrap(), "t1");
        assert_eq!(back.get_i32("limit").unwrap(), 10);
        assert_eq!(back.get_all("columns").len(), 2);
    }

    #[test]
    fn added_required_field_breaks_cross_version_decode() {
        let old = scan_schema(false);
        let new = scan_schema(true);
        let bytes = encode(&old, &scan()).unwrap();
        let err = decode(&new, "ScanRequest", &bytes).unwrap_err();
        assert!(matches!(err, WireError::MissingRequired { field, .. } if field == "authToken"));
    }

    #[test]
    fn unknown_fields_are_skipped_by_old_decoder() {
        let old = scan_schema(false);
        let mut with_opt = scan_schema(false);
        // Simulate a new version that added an *optional* field.
        with_opt = Schema::new()
            .with_message(
                with_opt
                    .message("ScanRequest")
                    .unwrap()
                    .clone()
                    .with(FieldDescriptor::optional(9, "traceId", FieldType::Uint64)),
            )
            .with_enum(with_opt.enum_desc("Durability").unwrap().clone());
        let m = scan().set("traceId", Value::U64(77));
        let bytes = encode(&with_opt, &m).unwrap();
        let back = decode(&old, "ScanRequest", &bytes).unwrap();
        assert!(!back.has("traceId"));
        assert_eq!(back.get_str("table").unwrap(), "t1");
    }

    #[test]
    fn nested_struct_and_enum_roundtrip() {
        let s = Schema::new()
            .with_message(
                MessageDescriptor::new("Mutation")
                    .with(FieldDescriptor::required(
                        1,
                        "durability",
                        FieldType::Enum("Durability".into()),
                    ))
                    .with(FieldDescriptor::optional(
                        2,
                        "inner",
                        FieldType::Message("Cell".into()),
                    )),
            )
            .with_message(
                MessageDescriptor::new("Cell").with(FieldDescriptor::required(
                    1,
                    "value",
                    FieldType::BytesType,
                )),
            )
            .with_enum(EnumDescriptor::new(
                "Durability",
                &[("NONE", 0), ("SYNC", 1)],
            ));
        let m = MessageValue::new("Mutation")
            .set("durability", Value::Enum(1))
            .set(
                "inner",
                Value::Msg(MessageValue::new("Cell").set("value", Value::Bytes(vec![9]))),
            );
        let bytes = encode(&s, &m).unwrap();
        let back = decode(&s, "Mutation", &bytes).unwrap();
        assert_eq!(back.get_enum("durability").unwrap(), 1);
        assert_eq!(
            back.get_msg("inner").unwrap().get_bytes("value").unwrap(),
            &[9]
        );
    }

    #[test]
    fn enum_out_of_range_fails() {
        let s = Schema::new()
            .with_message(MessageDescriptor::new("M").with(FieldDescriptor::required(
                1,
                "d",
                FieldType::Enum("Durability".into()),
            )))
            .with_enum(EnumDescriptor::new(
                "Durability",
                &[("NONE", 0), ("SYNC", 1), ("FSYNC", 2)],
            ));
        let m = MessageValue::new("M").set("d", Value::Enum(2));
        let bytes = encode(&s, &m).unwrap();
        let truncated_enum = Schema::new()
            .with_message(s.message("M").unwrap().clone())
            .with_enum(EnumDescriptor::new(
                "Durability",
                &[("NONE", 0), ("SYNC", 1)],
            ));
        let err = decode(&truncated_enum, "M", &bytes).unwrap_err();
        assert!(matches!(err, WireError::UnknownEnumValue { value: 2, .. }));
    }

    #[test]
    fn truncation_detected() {
        let s = scan_schema(false);
        let bytes = encode(&s, &scan()).unwrap();
        for cut in [1usize, 3, bytes.len() - 1] {
            assert!(
                decode(&s, "ScanRequest", &bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn type_code_mismatch_detected() {
        let writer = Schema::new().with_message(
            MessageDescriptor::new("M").with(FieldDescriptor::required(1, "v", FieldType::Str)),
        );
        let reader = Schema::new().with_message(
            MessageDescriptor::new("M").with(FieldDescriptor::required(1, "v", FieldType::Int64)),
        );
        let bytes = encode(
            &writer,
            &MessageValue::new("M").set("v", Value::Str("x".into())),
        )
        .unwrap();
        let err = decode(&reader, "M", &bytes).unwrap_err();
        assert!(matches!(err, WireError::TypeMismatch { .. }));
    }
}
