//! Runtime schema descriptors.
//!
//! A [`Schema`] is the runtime form of one serialization-library protocol
//! file: a set of message descriptors and enum descriptors. Version-specific
//! codecs in the miniature systems each carry their own `Schema`, so two
//! versions of a system can disagree about a format exactly the way
//! HBase 2.2.0 and 2.3.3 disagreed about `ReplicationLoadSink` (paper Fig. 2).

use std::collections::BTreeMap;

/// Presence discipline of a field, as in proto2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Must appear exactly once; decoders reject payloads without it.
    Required,
    /// May appear at most once.
    Optional,
    /// May appear any number of times.
    Repeated,
}

impl Label {
    /// Returns the IDL keyword for this label.
    pub fn keyword(self) -> &'static str {
        match self {
            Label::Required => "required",
            Label::Optional => "optional",
            Label::Repeated => "repeated",
        }
    }
}

/// Declared type of a field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// 32-bit signed integer (varint on the wire).
    Int32,
    /// 64-bit signed integer (varint on the wire).
    Int64,
    /// 32-bit unsigned integer (varint on the wire).
    Uint32,
    /// 64-bit unsigned integer (varint on the wire).
    Uint64,
    /// Boolean (varint 0/1 on the wire).
    Bool,
    /// UTF-8 string (length-delimited).
    Str,
    /// Opaque bytes (length-delimited).
    BytesType,
    /// A named enum; the value is the member's number (varint).
    Enum(String),
    /// A nested message (length-delimited).
    Message(String),
}

impl FieldType {
    /// Returns the IDL spelling of this type.
    pub fn idl_name(&self) -> String {
        match self {
            FieldType::Int32 => "int32".to_string(),
            FieldType::Int64 => "int64".to_string(),
            FieldType::Uint32 => "uint32".to_string(),
            FieldType::Uint64 => "uint64".to_string(),
            FieldType::Bool => "bool".to_string(),
            FieldType::Str => "string".to_string(),
            FieldType::BytesType => "bytes".to_string(),
            FieldType::Enum(n) | FieldType::Message(n) => n.clone(),
        }
    }
}

/// One declared field of a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDescriptor {
    /// Wire tag number (unique within the message).
    pub tag: u32,
    /// Field name (unique within the message).
    pub name: String,
    /// Presence discipline.
    pub label: Label,
    /// Declared type.
    pub field_type: FieldType,
}

impl FieldDescriptor {
    /// Creates a field descriptor.
    pub fn new(tag: u32, name: &str, label: Label, field_type: FieldType) -> Self {
        FieldDescriptor {
            tag,
            name: name.to_string(),
            label,
            field_type,
        }
    }

    /// Shorthand for a `required` field.
    pub fn required(tag: u32, name: &str, field_type: FieldType) -> Self {
        Self::new(tag, name, Label::Required, field_type)
    }

    /// Shorthand for an `optional` field.
    pub fn optional(tag: u32, name: &str, field_type: FieldType) -> Self {
        Self::new(tag, name, Label::Optional, field_type)
    }

    /// Shorthand for a `repeated` field.
    pub fn repeated(tag: u32, name: &str, field_type: FieldType) -> Self {
        Self::new(tag, name, Label::Repeated, field_type)
    }
}

/// A message type: an ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageDescriptor {
    /// Type name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDescriptor>,
}

impl MessageDescriptor {
    /// Creates an empty message descriptor named `name`.
    pub fn new(name: &str) -> Self {
        MessageDescriptor {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds a field and returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if the tag or name duplicates an existing field — that is a
    /// programming error in the schema definition, not a runtime condition.
    pub fn with(mut self, field: FieldDescriptor) -> Self {
        assert!(
            self.field_by_tag(field.tag).is_none(),
            "duplicate tag {} in message {}",
            field.tag,
            self.name
        );
        assert!(
            self.field_by_name(&field.name).is_none(),
            "duplicate field name {} in message {}",
            field.name,
            self.name
        );
        self.fields.push(field);
        self
    }

    /// Looks up a field by wire tag.
    pub fn field_by_tag(&self, tag: u32) -> Option<&FieldDescriptor> {
        self.fields.iter().find(|f| f.tag == tag)
    }

    /// Looks up a field by name.
    pub fn field_by_name(&self, name: &str) -> Option<&FieldDescriptor> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// An enum type: named members with explicit numbers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnumDescriptor {
    /// Type name.
    pub name: String,
    /// Members as `(name, number)` pairs in declaration order.
    pub values: Vec<(String, i32)>,
}

impl EnumDescriptor {
    /// Creates an enum descriptor from `(name, number)` pairs.
    pub fn new(name: &str, values: &[(&str, i32)]) -> Self {
        EnumDescriptor {
            name: name.to_string(),
            values: values.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    /// Returns `true` if `number` is a declared member.
    pub fn contains_number(&self, number: i32) -> bool {
        self.values.iter().any(|(_, v)| *v == number)
    }

    /// Returns the number of the member named `name`.
    pub fn number_of(&self, name: &str) -> Option<i32> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Returns the name of the member with `number`.
    pub fn name_of(&self, number: i32) -> Option<&str> {
        self.values
            .iter()
            .find(|(_, v)| *v == number)
            .map(|(n, _)| n.as_str())
    }

    /// Returns `true` if some member has number 0 (the proto3 safety rule
    /// DUPChecker's category-4 warning checks).
    pub fn has_zero(&self) -> bool {
        self.contains_number(0)
    }
}

/// A complete protocol file at runtime: messages and enums by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    messages: BTreeMap<String, MessageDescriptor>,
    enums: BTreeMap<String, EnumDescriptor>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a message descriptor; returns `self` for chaining.
    pub fn with_message(mut self, message: MessageDescriptor) -> Self {
        self.messages.insert(message.name.clone(), message);
        self
    }

    /// Adds (or replaces) an enum descriptor; returns `self` for chaining.
    pub fn with_enum(mut self, enum_desc: EnumDescriptor) -> Self {
        self.enums.insert(enum_desc.name.clone(), enum_desc);
        self
    }

    /// Looks up a message descriptor.
    pub fn message(&self, name: &str) -> Option<&MessageDescriptor> {
        self.messages.get(name)
    }

    /// Looks up an enum descriptor.
    pub fn enum_desc(&self, name: &str) -> Option<&EnumDescriptor> {
        self.enums.get(name)
    }

    /// Iterates message descriptors in name order.
    pub fn messages(&self) -> impl Iterator<Item = &MessageDescriptor> {
        self.messages.values()
    }

    /// Iterates enum descriptors in name order.
    pub fn enums(&self) -> impl Iterator<Item = &EnumDescriptor> {
        self.enums.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_v1() -> MessageDescriptor {
        MessageDescriptor::new("ReplicationLoadSink")
            .with(FieldDescriptor::required(
                1,
                "ageOfLastAppliedOp",
                FieldType::Uint64,
            ))
            .with(FieldDescriptor::optional(2, "note", FieldType::Str))
    }

    #[test]
    fn field_lookup_by_tag_and_name() {
        let m = sink_v1();
        assert_eq!(m.field_by_tag(1).unwrap().name, "ageOfLastAppliedOp");
        assert_eq!(m.field_by_name("note").unwrap().tag, 2);
        assert!(m.field_by_tag(9).is_none());
        assert!(m.field_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate tag")]
    fn duplicate_tag_panics() {
        let _ = sink_v1().with(FieldDescriptor::optional(1, "dup", FieldType::Bool));
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_name_panics() {
        let _ = sink_v1().with(FieldDescriptor::optional(3, "note", FieldType::Bool));
    }

    #[test]
    fn enum_lookups() {
        let e = EnumDescriptor::new("StorageType", &[("DISK", 0), ("SSD", 1), ("RAM_DISK", 2)]);
        assert!(e.contains_number(1));
        assert!(!e.contains_number(7));
        assert_eq!(e.number_of("SSD"), Some(1));
        assert_eq!(e.name_of(2), Some("RAM_DISK"));
        assert!(e.has_zero());
        let no_zero = EnumDescriptor::new("E", &[("A", 1)]);
        assert!(!no_zero.has_zero());
    }

    #[test]
    fn schema_registry() {
        let s = Schema::new()
            .with_message(sink_v1())
            .with_enum(EnumDescriptor::new("StorageType", &[("DISK", 0)]));
        assert!(s.message("ReplicationLoadSink").is_some());
        assert!(s.enum_desc("StorageType").is_some());
        assert!(s.message("Nope").is_none());
        assert_eq!(s.messages().count(), 1);
        assert_eq!(s.enums().count(), 1);
    }

    #[test]
    fn labels_and_types_render_idl_spellings() {
        assert_eq!(Label::Required.keyword(), "required");
        assert_eq!(FieldType::Uint64.idl_name(), "uint64");
        assert_eq!(FieldType::Enum("E".into()).idl_name(), "E");
        assert_eq!(FieldType::Str.idl_name(), "string");
    }
}
