//! Dynamic values carried by the wire formats.
//!
//! Systems under test construct [`MessageValue`]s by name and hand them to a
//! version-specific codec; the codec's [`crate::Schema`] decides how — and
//! whether — they serialize. Keeping values dynamic (rather than generated
//! structs) is what lets two *different* schemas interpret the same bytes,
//! which is the essence of a cross-version incompatibility.

use crate::error::WireError;
use std::collections::BTreeMap;

/// A single field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// 32-bit signed integer.
    I32(i32),
    /// 64-bit signed integer.
    I64(i64),
    /// 32-bit unsigned integer.
    U32(u32),
    /// 64-bit unsigned integer.
    U64(u64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Opaque bytes.
    Bytes(Vec<u8>),
    /// Enum member, by number.
    Enum(i32),
    /// Nested message.
    Msg(MessageValue),
}

/// A dynamic message: a type name plus named field values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageValue {
    /// The message type this value claims to be.
    pub type_name: String,
    fields: BTreeMap<String, Vec<Value>>,
}

impl MessageValue {
    /// Creates an empty value of message type `type_name`.
    pub fn new(type_name: &str) -> Self {
        MessageValue {
            type_name: type_name.to_string(),
            fields: BTreeMap::new(),
        }
    }

    /// Sets a singular field (replacing any existing values); chains.
    pub fn set(mut self, field: &str, value: Value) -> Self {
        self.fields.insert(field.to_string(), vec![value]);
        self
    }

    /// Sets a singular field in place.
    pub fn put(&mut self, field: &str, value: Value) {
        self.fields.insert(field.to_string(), vec![value]);
    }

    /// Appends a value to a repeated field; chains.
    pub fn push(mut self, field: &str, value: Value) -> Self {
        self.fields
            .entry(field.to_string())
            .or_default()
            .push(value);
        self
    }

    /// Appends a value to a repeated field in place.
    pub fn push_mut(&mut self, field: &str, value: Value) {
        self.fields
            .entry(field.to_string())
            .or_default()
            .push(value);
    }

    /// Removes a field entirely; returns `true` if it was present.
    pub fn clear_field(&mut self, field: &str) -> bool {
        self.fields.remove(field).is_some()
    }

    /// Returns `true` if the field has at least one value.
    pub fn has(&self, field: &str) -> bool {
        self.fields.get(field).is_some_and(|v| !v.is_empty())
    }

    /// Returns the last value of `field` (proto2 "last wins" semantics).
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field).and_then(|v| v.last())
    }

    /// Returns all values of `field` (empty slice if absent).
    pub fn get_all(&self, field: &str) -> &[Value] {
        self.fields.get(field).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates `(field name, values)` pairs in name order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &[Value])> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct fields with at least one value.
    pub fn field_count(&self) -> usize {
        self.fields.values().filter(|v| !v.is_empty()).count()
    }

    // ----- typed getters (used pervasively by the mini systems) -----------

    /// Returns `field` as `u64`, accepting any unsigned integer variant.
    pub fn get_u64(&self, field: &str) -> Result<u64, WireError> {
        match self.get(field) {
            Some(Value::U64(v)) => Ok(*v),
            Some(Value::U32(v)) => Ok(u64::from(*v)),
            _ => Err(self.value_type_error(field)),
        }
    }

    /// Returns `field` as `i64`, accepting any signed integer variant.
    pub fn get_i64(&self, field: &str) -> Result<i64, WireError> {
        match self.get(field) {
            Some(Value::I64(v)) => Ok(*v),
            Some(Value::I32(v)) => Ok(i64::from(*v)),
            _ => Err(self.value_type_error(field)),
        }
    }

    /// Returns `field` as `i32`.
    pub fn get_i32(&self, field: &str) -> Result<i32, WireError> {
        match self.get(field) {
            Some(Value::I32(v)) => Ok(*v),
            _ => Err(self.value_type_error(field)),
        }
    }

    /// Returns `field` as `bool`.
    pub fn get_bool(&self, field: &str) -> Result<bool, WireError> {
        match self.get(field) {
            Some(Value::Bool(v)) => Ok(*v),
            _ => Err(self.value_type_error(field)),
        }
    }

    /// Returns `field` as `&str`.
    pub fn get_str(&self, field: &str) -> Result<&str, WireError> {
        match self.get(field) {
            Some(Value::Str(v)) => Ok(v.as_str()),
            _ => Err(self.value_type_error(field)),
        }
    }

    /// Returns `field` as bytes.
    pub fn get_bytes(&self, field: &str) -> Result<&[u8], WireError> {
        match self.get(field) {
            Some(Value::Bytes(v)) => Ok(v.as_slice()),
            _ => Err(self.value_type_error(field)),
        }
    }

    /// Returns `field` as an enum number.
    pub fn get_enum(&self, field: &str) -> Result<i32, WireError> {
        match self.get(field) {
            Some(Value::Enum(v)) => Ok(*v),
            _ => Err(self.value_type_error(field)),
        }
    }

    /// Returns `field` as a nested message.
    pub fn get_msg(&self, field: &str) -> Result<&MessageValue, WireError> {
        match self.get(field) {
            Some(Value::Msg(v)) => Ok(v),
            _ => Err(self.value_type_error(field)),
        }
    }

    fn value_type_error(&self, field: &str) -> WireError {
        if self.has(field) {
            WireError::ValueType {
                message: self.type_name.clone(),
                field: field.to_string(),
            }
        } else {
            WireError::MissingRequired {
                message: self.type_name.clone(),
                field: field.to_string(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_typed_getters() {
        let m = MessageValue::new("OffsetCommitRequest")
            .set("topic", Value::Str("events".into()))
            .set("offset", Value::U64(42))
            .set("retentionTime", Value::I64(-1))
            .set("sync", Value::Bool(true))
            .set("code", Value::I32(-7))
            .set("blob", Value::Bytes(vec![1, 2]))
            .set("kind", Value::Enum(2));
        assert_eq!(m.get_str("topic").unwrap(), "events");
        assert_eq!(m.get_u64("offset").unwrap(), 42);
        assert_eq!(m.get_i64("retentionTime").unwrap(), -1);
        assert!(m.get_bool("sync").unwrap());
        assert_eq!(m.get_i32("code").unwrap(), -7);
        assert_eq!(m.get_bytes("blob").unwrap(), &[1, 2]);
        assert_eq!(m.get_enum("kind").unwrap(), 2);
    }

    #[test]
    fn missing_field_reports_missing_required() {
        let m = MessageValue::new("M");
        let err = m.get_u64("absent").unwrap_err();
        assert!(matches!(err, WireError::MissingRequired { .. }));
    }

    #[test]
    fn wrong_type_reports_value_type() {
        let m = MessageValue::new("M").set("f", Value::Str("x".into()));
        let err = m.get_u64("f").unwrap_err();
        assert!(matches!(err, WireError::ValueType { .. }));
    }

    #[test]
    fn repeated_fields_accumulate() {
        let m = MessageValue::new("M")
            .push("xs", Value::U32(1))
            .push("xs", Value::U32(2))
            .push("xs", Value::U32(3));
        assert_eq!(m.get_all("xs").len(), 3);
        // get() follows proto2 last-wins.
        assert_eq!(m.get("xs"), Some(&Value::U32(3)));
    }

    #[test]
    fn widening_getters_accept_narrow_variants() {
        let m = MessageValue::new("M")
            .set("a", Value::U32(7))
            .set("b", Value::I32(-7));
        assert_eq!(m.get_u64("a").unwrap(), 7);
        assert_eq!(m.get_i64("b").unwrap(), -7);
    }

    #[test]
    fn clear_and_field_count() {
        let mut m = MessageValue::new("M").set("a", Value::Bool(true));
        assert_eq!(m.field_count(), 1);
        assert!(m.clear_field("a"));
        assert!(!m.clear_field("a"));
        assert_eq!(m.field_count(), 0);
        assert!(!m.has("a"));
    }

    #[test]
    fn nested_messages() {
        let inner = MessageValue::new("Inner").set("x", Value::U64(1));
        let outer = MessageValue::new("Outer").set("inner", Value::Msg(inner.clone()));
        assert_eq!(outer.get_msg("inner").unwrap(), &inner);
    }
}
