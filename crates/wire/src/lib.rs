//! # dup-wire — schema-driven serialization runtime
//!
//! A from-scratch implementation of the two serialization-library wire
//! formats that dominate the paper's data-syntax incompatibility study
//! (§4.1.1, §6.2):
//!
//! - [`proto`] — a Protocol-Buffers-compatible tag/varint format with
//!   proto2 `required`/`optional`/`repeated` semantics;
//! - [`thrift`] — a Thrift-like binary format (type byte + field id + stop
//!   byte) over the same runtime [`Schema`];
//! - [`Frame`] — a versioned message envelope implementing the paper's
//!   "version id in every message" good practice.
//!
//! Schemas are *runtime values*, so two versions of a system can each carry
//! their own [`Schema`] and genuinely disagree about the same bytes — the
//! mechanism behind HBASE-25238, HDFS-14726, HDFS-15624, and every other
//! serialization-library incompatibility the tools detect.
//!
//! # Examples
//!
//! ```
//! use dup_wire::{Schema, MessageDescriptor, FieldDescriptor, FieldType, MessageValue, Value, proto};
//!
//! let schema = Schema::new().with_message(
//!     MessageDescriptor::new("Checkpoint")
//!         .with(FieldDescriptor::required(1, "term", FieldType::Uint64)),
//! );
//! let value = MessageValue::new("Checkpoint").set("term", Value::U64(7));
//! let bytes = proto::encode(&schema, &value).unwrap();
//! let back = proto::decode(&schema, "Checkpoint", &bytes).unwrap();
//! assert_eq!(back.get_u64("term").unwrap(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
pub mod proto;
mod schema;
pub mod thrift;
mod value;
mod varint;

pub use crate::error::WireError;
pub use crate::frame::Frame;
pub use crate::schema::{
    EnumDescriptor, FieldDescriptor, FieldType, Label, MessageDescriptor, Schema,
};
pub use crate::value::{MessageValue, Value};
pub use crate::varint::{decode_varint, encode_varint, zigzag_decode, zigzag_encode};
