//! Property tests over *generated* schemas: every value a schema admits
//! must round-trip through both wire formats, and decoding under a
//! different (cross-version) schema — or from garbage — must never panic.
//!
//! The checking logic lives in plain helper functions so it is exercised
//! both by the proptest properties and by the deterministic seeded sweeps
//! below (which double as quick regression tests).

use dup_wire::{
    proto, thrift, FieldDescriptor, FieldType, Frame, Label, MessageDescriptor, MessageValue,
    Schema, Value,
};
use proptest::prelude::*;

/// One generated field: a type choice (0..7) and a label choice (0..3).
/// Tags are assigned positionally (1-based), names derive from the tag.
type FieldSpec = (u8, u8);

fn field_type_of(choice: u8) -> FieldType {
    match choice % 7 {
        0 => FieldType::Int32,
        1 => FieldType::Int64,
        2 => FieldType::Uint32,
        3 => FieldType::Uint64,
        4 => FieldType::Bool,
        5 => FieldType::Str,
        _ => FieldType::BytesType,
    }
}

fn label_of(choice: u8) -> Label {
    match choice % 3 {
        0 => Label::Required,
        1 => Label::Optional,
        _ => Label::Repeated,
    }
}

/// Builds a one-message schema from generated field specs.
fn schema_from_spec(spec: &[FieldSpec]) -> Schema {
    let mut msg = MessageDescriptor::new("Gen");
    for (i, &(ty, label)) in spec.iter().enumerate() {
        let tag = i as u32 + 1;
        msg = msg.with(FieldDescriptor::new(
            tag,
            &format!("f{tag}"),
            label_of(label),
            field_type_of(ty),
        ));
    }
    Schema::new().with_message(msg)
}

/// A deterministic value for field `tag` of type `choice`, varied by `salt`.
fn value_for(choice: u8, salt: u64) -> Value {
    match choice % 7 {
        0 => Value::I32(salt as i32),
        1 => Value::I64(salt as i64),
        2 => Value::U32(salt as u32),
        3 => Value::U64(salt),
        4 => Value::Bool(salt.is_multiple_of(2)),
        5 => Value::Str(format!("s{}", salt % 1000)),
        _ => Value::Bytes(salt.to_le_bytes()[..(salt % 9) as usize].to_vec()),
    }
}

/// A message that populates every declared field of `spec` (one value for
/// required/optional, `salt % 3` extra values for repeated).
fn message_from_spec(spec: &[FieldSpec], salt: u64) -> MessageValue {
    let mut value = MessageValue::new("Gen");
    for (i, &(ty, label)) in spec.iter().enumerate() {
        let tag = i as u32 + 1;
        let name = format!("f{tag}");
        let per_field_salt = salt.wrapping_add(u64::from(tag) * 0x9E37);
        value.put(&name, value_for(ty, per_field_salt));
        if label_of(label) == Label::Repeated {
            for extra in 0..per_field_salt % 3 {
                value.push_mut(&name, value_for(ty, per_field_salt.wrapping_add(extra)));
            }
        }
    }
    value
}

/// Asserts encode→decode is the identity for `value` under `schema`, in
/// both wire formats. Returns an error message instead of panicking so the
/// proptest properties can report the failing spec.
fn check_roundtrip(schema: &Schema, value: &MessageValue) -> Result<(), String> {
    let bytes = proto::encode(schema, value).map_err(|e| format!("proto encode: {e}"))?;
    let back = proto::decode(schema, "Gen", &bytes).map_err(|e| format!("proto decode: {e}"))?;
    if &back != value {
        return Err(format!("proto roundtrip mismatch: {value:?} -> {back:?}"));
    }
    let bytes = thrift::encode(schema, value).map_err(|e| format!("thrift encode: {e}"))?;
    let back = thrift::decode(schema, "Gen", &bytes).map_err(|e| format!("thrift decode: {e}"))?;
    if &back != value {
        return Err(format!("thrift roundtrip mismatch: {value:?} -> {back:?}"));
    }
    Ok(())
}

/// Encodes under `writer` and decodes under `reader` (a *different* schema
/// generation), asserting only that decoding returns — Ok or Err — without
/// panicking. This is the cross-version path every upgrade exercises.
fn check_cross_decode(writer: &Schema, reader: &Schema, value: &MessageValue) {
    if let Ok(bytes) = proto::encode(writer, value) {
        let _ = proto::decode(reader, "Gen", &bytes);
        let _ = thrift::decode(reader, "Gen", &bytes);
    }
    if let Ok(bytes) = thrift::encode(writer, value) {
        let _ = thrift::decode(reader, "Gen", &bytes);
        let _ = proto::decode(reader, "Gen", &bytes);
    }
}

/// Decodes every truncation of `value`'s encoding, asserting only that no
/// prefix panics a decoder. This is the torn-tail shape a mid-crash append
/// stream leaves behind (`Durability::Torn` in the simulator): a recovering
/// node reads a *prefix* of a record it wrote and must surface an error,
/// not a crash.
fn check_torn_prefixes(schema: &Schema, value: &MessageValue) {
    if let Ok(bytes) = proto::encode(schema, value) {
        for cut in 0..bytes.len() {
            let _ = proto::decode(schema, "Gen", &bytes[..cut]);
            let _ = thrift::decode(schema, "Gen", &bytes[..cut]);
        }
    }
    if let Ok(bytes) = thrift::encode(schema, value) {
        for cut in 0..bytes.len() {
            let _ = thrift::decode(schema, "Gen", &bytes[..cut]);
        }
    }
}

/// Tiny deterministic generator (SplitMix64) for the seeded plain-test
/// sweeps, so the helper logic runs even where proptest is unavailable.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn spec(&mut self, fields: usize) -> Vec<FieldSpec> {
        (0..fields)
            .map(|_| ((self.next() % 7) as u8, (self.next() % 3) as u8))
            .collect()
    }
}

#[test]
fn seeded_specs_roundtrip_in_both_formats() {
    let mut gen = Gen(0xD5B7);
    for round in 0..200 {
        let spec = gen.spec((round % 9) as usize);
        let schema = schema_from_spec(&spec);
        let value = message_from_spec(&spec, gen.next());
        if let Err(e) = check_roundtrip(&schema, &value) {
            panic!("round {round} spec {spec:?}: {e}");
        }
    }
}

#[test]
fn seeded_cross_version_decode_never_panics() {
    let mut gen = Gen(0xC0DE);
    for round in 0..200 {
        // Writer and reader disagree: the reader drops trailing fields and
        // re-types one surviving field — the classic upgrade skew.
        let writer_spec = gen.spec(2 + (round % 6) as usize);
        let mut reader_spec = writer_spec.clone();
        reader_spec.truncate(1 + reader_spec.len() / 2);
        reader_spec[0].0 = reader_spec[0].0.wrapping_add(1);
        let writer = schema_from_spec(&writer_spec);
        let reader = schema_from_spec(&reader_spec);
        let value = message_from_spec(&writer_spec, gen.next());
        check_cross_decode(&writer, &reader, &value);
        check_cross_decode(
            &reader,
            &writer,
            &message_from_spec(&reader_spec, gen.next()),
        );
    }
}

#[test]
fn seeded_garbage_decode_never_panics() {
    let mut gen = Gen(0xBAD5EED);
    let schema = schema_from_spec(&[(0, 0), (5, 1), (6, 2), (3, 2)]);
    for _ in 0..300 {
        let len = (gen.next() % 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| gen.next() as u8).collect();
        let _ = proto::decode(&schema, "Gen", &bytes);
        let _ = thrift::decode(&schema, "Gen", &bytes);
        let _ = dup_wire::decode_varint(&bytes);
    }
}

#[test]
fn seeded_torn_prefixes_never_panic_any_decoder() {
    let mut gen = Gen(0x70A2);
    for round in 0..100 {
        let spec = gen.spec(1 + (round % 6) as usize);
        let schema = schema_from_spec(&spec);
        check_torn_prefixes(&schema, &message_from_spec(&spec, gen.next()));
        // Framed records tear too. Frames carry no body length, so a cut
        // past the header decodes to a body *prefix*; a cut inside the
        // header must be an error — either way, never a panic.
        let body: Vec<u8> = (0..gen.next() % 48).map(|_| gen.next() as u8).collect();
        let frame = Frame::new(gen.next() as u32, "rec", body);
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            if let Ok(torn) = Frame::decode(&bytes[..cut]) {
                assert_eq!(torn.version, frame.version, "round {round} cut {cut}");
                assert_eq!(torn.kind, frame.kind, "round {round} cut {cut}");
                assert!(
                    frame.body.starts_with(&torn.body),
                    "round {round} cut {cut}: torn body is not a prefix"
                );
            }
        }
    }
}

proptest! {
    /// Varint encoding is a bijection on u64 (and zigzag on i64).
    #[test]
    fn varint_roundtrip(v in any::<u64>(), s in any::<i64>()) {
        let mut buf = Vec::new();
        dup_wire::encode_varint(v, &mut buf);
        let (back, used) = dup_wire::decode_varint(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(dup_wire::zigzag_decode(dup_wire::zigzag_encode(s)), s);
    }

    /// Every value admitted by a generated schema round-trips through both
    /// wire formats.
    #[test]
    fn generated_schema_roundtrip(
        spec in proptest::collection::vec((0u8..7, 0u8..3), 0..9),
        salt in any::<u64>(),
    ) {
        let schema = schema_from_spec(&spec);
        let value = message_from_spec(&spec, salt);
        if let Err(e) = check_roundtrip(&schema, &value) {
            prop_assert!(false, "spec {:?}: {}", spec, e);
        }
    }

    /// Cross-version decode (writer and reader schemas disagree) never
    /// panics, in either direction or format.
    #[test]
    fn cross_version_decode_is_panic_free(
        spec in proptest::collection::vec((0u8..7, 0u8..3), 2..9),
        retype in 0u8..7,
        salt in any::<u64>(),
    ) {
        let mut reader_spec = spec.clone();
        reader_spec.truncate(1 + reader_spec.len() / 2);
        reader_spec[0].0 = retype;
        let writer = schema_from_spec(&spec);
        let reader = schema_from_spec(&reader_spec);
        check_cross_decode(&writer, &reader, &message_from_spec(&spec, salt));
        check_cross_decode(&reader, &writer, &message_from_spec(&reader_spec, salt));
    }

    /// Arbitrary bytes never panic any decoder.
    #[test]
    fn garbage_decode_is_panic_free(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
        spec in proptest::collection::vec((0u8..7, 0u8..3), 0..6),
    ) {
        let schema = schema_from_spec(&spec);
        let _ = proto::decode(&schema, "Gen", &bytes);
        let _ = thrift::decode(&schema, "Gen", &bytes);
        let _ = dup_wire::decode_varint(&bytes);
    }

    /// Every truncation of a valid encoding — the shape a `Durability::Torn`
    /// crash leaves at the end of an append stream — decodes to an error or
    /// a strict prefix, never a panic.
    #[test]
    fn torn_prefix_decode_is_panic_free(
        spec in proptest::collection::vec((0u8..7, 0u8..3), 1..7),
        salt in any::<u64>(),
        version in any::<u32>(),
        body in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let schema = schema_from_spec(&spec);
        check_torn_prefixes(&schema, &message_from_spec(&spec, salt));
        let frame = Frame::new(version, "rec", body);
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            if let Ok(torn) = Frame::decode(&bytes[..cut]) {
                prop_assert_eq!(torn.version, frame.version);
                prop_assert_eq!(&torn.kind, &frame.kind);
                prop_assert!(frame.body.starts_with(&torn.body), "cut {}", cut);
            }
        }
    }
}
