//! Asserts the tentpole property of the hot path: once the simulator is
//! warm, dispatching events performs **zero heap allocations**.
//!
//! The lib crate `#![forbid(unsafe_code)]`, so the counting `GlobalAlloc`
//! (which must be `unsafe impl`) lives here, in an integration test — a
//! separate crate where the forbid does not apply. This file deliberately
//! contains exactly ONE `#[test]`: the allocation counter is process-global,
//! and a second test running on a parallel test thread would pollute it.

use dup_simnet::{
    Ctx, Durability, Endpoint, FaultKind, FaultPlan, HostStorage, Process, Sim, SimDuration,
    SimRng, SimSnapshot, StepResult, TraceConfig,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation the *test thread* routes
/// through the global allocator. Deallocations are free to happen
/// (returning pooled buffers never deallocates anyway); the steady-state
/// claim is about *acquiring* memory.
///
/// Other threads are excluded: libtest's main thread lazily initialises
/// its channel machinery (`std::sync::mpmc` contexts) at a wall-clock-
/// dependent moment while the test runs, which would otherwise show up as
/// a couple of phantom allocations in whichever measured window it lands.
/// The const-initialised thread-local is TLS-block data, so reading it in
/// `alloc` cannot itself allocate.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTED_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count() {
    if COUNTED_THREAD
        .try_with(std::cell::Cell::get)
        .unwrap_or(false)
    {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Replies to every message, forever. The payload is built once at
/// construction and cloned per send: `Bytes` is a refcounted handle, so the
/// clone never touches the allocator.
struct Pinger {
    peer: u32,
    payload: bytes::Bytes,
}

impl Pinger {
    fn new(peer: u32) -> Self {
        Pinger {
            peer,
            payload: bytes::Bytes::from_static(b"ping"),
        }
    }
}

impl Process for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        ctx.send(Endpoint::Node(self.peer), self.payload.clone());
        Ok(())
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _p: &[u8]) -> StepResult {
        ctx.send(from, self.payload.clone());
        Ok(())
    }
    fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
        Ok(())
    }
}

/// Sends on a timer instead of replying, so its traffic survives message
/// drops — the phase-2 fault plan would silence a reply-driven chain on the
/// first dropped message.
struct TimerPinger {
    peer: u32,
    payload: bytes::Bytes,
}

impl TimerPinger {
    fn new(peer: u32) -> Self {
        TimerPinger {
            peer,
            payload: bytes::Bytes::from_static(b"tick"),
        }
    }
}

impl Process for TimerPinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        ctx.set_timer(SimDuration::from_millis(10), 1);
        Ok(())
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: &[u8]) -> StepResult {
        Ok(())
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) -> StepResult {
        ctx.send(Endpoint::Node(self.peer), self.payload.clone());
        ctx.set_timer(SimDuration::from_millis(10), 1);
        Ok(())
    }
}

/// Drives one deterministic faulted + traced mini-case on `sim` and returns
/// a fingerprint string covering every observable surface: counters, logs,
/// an RPC response, and a rendered trace slice (which exercises host-id
/// interning and the causal lineage walk). Byte-equal fingerprints mean the
/// two simulators were indistinguishable — phase 5's reset-equals-fresh
/// check compares a warm, reset simulator against `Sim::new` through this.
fn drive_case(sim: &mut Sim, seed: u64) -> String {
    sim.enable_trace(TraceConfig {
        capacity: 256,
        tail_events: 8,
        lineage_limit: 16,
    });
    let mut plan = FaultPlan::new(seed ^ 0x5EED);
    plan.drop_probability = 0.02;
    plan.duplicate_probability = 0.05;
    plan.delay_probability = 0.05;
    plan.max_delay_spike = SimDuration::from_millis(50);
    let plan = plan
        .schedule(
            dup_simnet::SimTime::from_millis(300),
            FaultKind::Partition(0, 1),
        )
        .schedule(dup_simnet::SimTime::from_millis(700), FaultKind::Heal(0, 1));
    sim.install_fault_plan(plan);
    let a = sim.add_node("reset-a", "v", Box::new(Pinger::new(1)));
    let b = sim.add_node("reset-b", "v", Box::new(Pinger::new(0)));
    sim.start_node(a).expect("starts");
    sim.start_node(b).expect("starts");
    sim.run_for(SimDuration::from_secs(2));
    let resp = sim.rpc(
        a,
        bytes::Bytes::from_static(b"probe"),
        SimDuration::from_millis(500),
    );
    sim.run_for(SimDuration::from_secs(1));
    let anchor = sim.trace_observe(Some(b));
    let slice = sim.trace().expect("trace enabled").slice(anchor);
    format!(
        "events={} delivered={} faults={} recorded={} resp={:?}\n{}\n{}",
        sim.events_processed(),
        sim.messages_delivered(),
        sim.faults_injected(),
        sim.trace().expect("trace enabled").events_recorded(),
        resp,
        sim.logs().render(),
        slice.render_timeline(),
    )
}

/// Forkable cousin of [`TimerPinger`] for the snapshot phase: static
/// payload sends, a fixed-size WAL append per tick, and a tick counter so
/// process state actually matters to the capture. Echoes client probes so
/// the fingerprint can include an RPC response.
#[derive(Clone)]
struct ForkTimerPinger {
    peer: u32,
    ticks: u64,
    payload: bytes::Bytes,
}

impl ForkTimerPinger {
    fn new(peer: u32) -> Self {
        ForkTimerPinger {
            peer,
            ticks: 0,
            payload: bytes::Bytes::from_static(b"fork"),
        }
    }
}

impl Process for ForkTimerPinger {
    fn fork(&self) -> Option<Box<dyn Process>> {
        Some(Box::new(self.clone()))
    }
    fn restore_from(&mut self, src: &dyn Process) -> bool {
        let any: &dyn std::any::Any = src;
        match any.downcast_ref::<Self>() {
            Some(other) => {
                self.clone_from(other);
                true
            }
            None => false,
        }
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        ctx.set_timer(SimDuration::from_millis(10), 1);
        Ok(())
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, p: &[u8]) -> StepResult {
        if let Endpoint::Client(_) = from {
            // Client echo allocates (payload copy); only the fingerprint
            // helper sends client traffic, never the measured window.
            ctx.send(from, bytes::Bytes::copy_from_slice(p));
        }
        Ok(())
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) -> StepResult {
        self.ticks += 1;
        ctx.storage().append("wal", b"x");
        ctx.send(Endpoint::Node(self.peer), self.payload.clone());
        ctx.set_timer(SimDuration::from_millis(10), 1);
        Ok(())
    }
}

/// Boots a traced, faulted, torn-durability two-node world of forkable
/// timer pingers and runs the shared prefix — the phase-6 world, shaped
/// like a campaign case up to its fork point.
fn fork_world(seed: u64) -> Sim {
    let mut sim = Sim::new(seed);
    sim.enable_trace(TraceConfig {
        capacity: 256,
        tail_events: 8,
        lineage_limit: 16,
    });
    let a = sim.add_node("fork-a", "v", Box::new(ForkTimerPinger::new(1)));
    let b = sim.add_node("fork-b", "v", Box::new(ForkTimerPinger::new(0)));
    sim.start_node(a).expect("starts");
    sim.start_node(b).expect("starts");
    let mut plan = FaultPlan::new(seed ^ 0x5EED);
    plan.drop_probability = 0.02;
    plan.duplicate_probability = 0.05;
    plan.delay_probability = 0.05;
    plan.max_delay_spike = SimDuration::from_millis(50);
    plan.durability = Durability::Torn;
    sim.install_fault_plan(plan);
    sim.run_for(SimDuration::from_secs(2));
    sim
}

/// Reseeds at the fork point, runs a divergent suffix, and fingerprints
/// every observable surface (counters, logs, an RPC response, a rendered
/// trace slice). Allocates freely — callers keep it outside measured
/// windows.
fn fork_suffix_fingerprint(sim: &mut Sim, fork_seed: u64) -> String {
    sim.reseed(fork_seed);
    sim.run_for(SimDuration::from_secs(2));
    let resp = sim.rpc(
        0,
        bytes::Bytes::from_static(b"probe"),
        SimDuration::from_millis(500),
    );
    let anchor = sim.trace_observe(Some(1));
    let slice = sim.trace().expect("trace enabled").slice(anchor);
    format!(
        "events={} delivered={} faults={} recorded={} resp={:?}\n{}\n{}",
        sim.events_processed(),
        sim.messages_delivered(),
        sim.faults_injected(),
        sim.trace().expect("trace enabled").events_recorded(),
        resp,
        sim.logs().render(),
        slice.render_timeline(),
    )
}

#[test]
fn steady_state_dispatch_allocates_nothing() {
    COUNTED_THREAD.with(|f| f.set(true));
    let mut sim = Sim::new(42);
    let a = sim.add_node("alloc-a", "v", Box::new(Pinger::new(1)));
    let b = sim.add_node("alloc-b", "v", Box::new(Pinger::new(0)));
    sim.start_node(a).expect("starts");
    sim.start_node(b).expect("starts");

    // Warm-up: grows the event queue, the pooled effect buffer, and the
    // per-host storage slots to their steady-state capacities.
    sim.run_for(SimDuration::from_secs(2));
    let warm_events = sim.events_processed();
    assert!(
        warm_events > 100,
        "warm-up barely ran: {warm_events} events"
    );

    // Steady state: two nodes ping-ponging static payloads. Every event is
    // a Deliver -> dispatch -> Effect::Send -> schedule cycle; none of it
    // may touch the allocator.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sim.run_for(SimDuration::from_secs(10));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    let steady_events = sim.events_processed() - warm_events;
    assert!(
        steady_events > 1_000,
        "steady-state window barely ran: {steady_events} events"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state dispatch allocated {} times over {steady_events} events",
        after - before
    );
    assert!(sim.node_status(a).is_running());
    assert!(sim.node_status(b).is_running());

    // ---- phase 2: the same property with an active fault plan -----------
    //
    // Per-message drop/duplicate/delay/reorder fates plus scheduled
    // partition/heal cycles must stay allocation-free too. Crash/restart
    // are excluded: those allocate (crash reason string, log record) by
    // design and are exercised by the unit tests instead. Traffic comes
    // from timer-driven nodes so dropped messages cannot kill it — and the
    // phase-1 reply-on-every-message pair must go quiet first: under a
    // duplicate fate its volley would become a supercritical branching
    // process (every delivery spawns a reply, times >1 expected copies).
    sim.stop_node(a).expect("stops");
    sim.stop_node(b).expect("stops");
    let c = sim.add_node("alloc-c", "v", Box::new(TimerPinger::new(3)));
    let d = sim.add_node("alloc-d", "v", Box::new(TimerPinger::new(2)));
    sim.start_node(c).expect("starts");
    sim.start_node(d).expect("starts");

    let now_ms = 12_000;
    let mut plan = FaultPlan::new(7);
    plan.drop_probability = 0.02;
    plan.duplicate_probability = 0.05;
    plan.delay_probability = 0.05;
    plan.max_delay_spike = SimDuration::from_millis(100);
    plan.reorder_probability = 0.10;
    plan.max_reorder_shift = SimDuration::from_millis(20);
    // One partition/heal cycle inside the warm-up window pre-sizes the
    // partition set's backing storage; the cycle inside the measured window
    // then reuses that capacity.
    let plan = plan
        .schedule(
            dup_simnet::SimTime::from_millis(now_ms + 200),
            FaultKind::Partition(c, d),
        )
        .schedule(
            dup_simnet::SimTime::from_millis(now_ms + 600),
            FaultKind::Heal(c, d),
        )
        .schedule(
            dup_simnet::SimTime::from_millis(now_ms + 4_000),
            FaultKind::Partition(c, d),
        )
        .schedule(
            dup_simnet::SimTime::from_millis(now_ms + 5_000),
            FaultKind::Heal(c, d),
        );
    sim.install_fault_plan(plan);

    // Warm-up round two: the plan install, the new nodes, the first
    // partition cycle, and enough faulted traffic to re-reach steady-state
    // capacities (duplicates put more events in flight than phase 1 did).
    sim.run_for(SimDuration::from_secs(2));
    let warm_events = sim.events_processed();
    let warm_faults = sim.faults_injected();
    assert!(warm_faults > 0, "plan injected nothing during warm-up");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sim.run_for(SimDuration::from_secs(8));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    let steady_events = sim.events_processed() - warm_events;
    let steady_faults = sim.faults_injected() - warm_faults;
    assert!(
        steady_events > 1_000,
        "faulted steady-state window barely ran: {steady_events} events"
    );
    assert!(
        steady_faults > 10,
        "faulted steady-state window barely injected: {steady_faults} faults"
    );
    assert_eq!(
        after - before,
        0,
        "faulted dispatch allocated {} times over {steady_events} events \
         ({steady_faults} faults injected)",
        after - before
    );
    assert!(sim.node_status(c).is_running());
    assert!(sim.node_status(d).is_running());

    // ---- phase 3: buffered durability — flush + crash materialization ----
    //
    // The crash-durability model rides the same discipline: an append lands
    // in the file's existing buffer, `flush` is metadata-only, and
    // `crash_materialize` resolves the unflushed tail in place (truncate,
    // never reallocate). Warmed once, an append/flush/crash cycle must not
    // touch the allocator. Write-replacement is excluded: `write` takes an
    // owned `Vec` by design (the allocation is the caller's), and its
    // crash atomicity is covered by the storage unit tests.
    let mut storage = HostStorage::new();
    storage.set_durability(Durability::Torn);
    let chunk = [0xA5u8; 64];
    // Warm-up: establish backing capacity well beyond what the measured
    // loop can reach. The 1 MiB append sizes the buffer exactly; the next
    // append forces one amortized doubling (~2 MiB capacity), while the
    // measured loop grows the durable base by at most 128 bytes/iteration
    // (~256 KiB total).
    let big = vec![0u8; 1 << 20];
    storage.append("wal", &big);
    storage.append("wal", &chunk);
    storage.flush("wal");
    drop(big);
    let mut rng = SimRng::new(0xD00D);
    // One full warm cycle so every branch of the measured loop has run.
    storage.append("wal", &chunk);
    storage.flush("wal");
    storage.append("wal", &chunk);
    storage.crash_materialize(&mut rng);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..2_000 {
        storage.append("wal", &chunk); // lands in the write buffer
        storage.flush("wal"); // metadata-only: the tail becomes durable
        storage.append("wal", &chunk); // an unflushed tail at risk
        storage.crash_materialize(&mut rng); // torn in place
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "durability cycle allocated {} times over 2000 crash cycles",
        after - before
    );
    assert!(
        !storage.has_unflushed(),
        "crash materialization must leave no unflushed state"
    );
    let wal = storage.read("wal").expect("wal survives every crash");
    assert!(wal.len() >= (1 << 20), "durable base lost");

    // ---- phase 4: the causal trace recorder ------------------------------
    //
    // Phases 1–3 above double as the tracing-*disabled* assertion: their Sims
    // never call `enable_trace`, so every record site reduces to one branch
    // and the steady-state zero still holds with the trace hooks compiled in.
    // This phase covers the *enabled* mode: the ring is allocated once at
    // enable time and recording overwrites slots in place, so a warmed,
    // actively-wrapping trace must not touch the allocator either. The ring
    // is deliberately tiny so the measured window exercises wrap-around
    // eviction, not just initial fill.
    let mut sim = Sim::new(77);
    sim.enable_trace(TraceConfig {
        capacity: 256,
        tail_events: 8,
        lineage_limit: 16,
    });
    let e = sim.add_node("alloc-e", "v", Box::new(Pinger::new(1)));
    let f = sim.add_node("alloc-f", "v", Box::new(Pinger::new(0)));
    sim.start_node(e).expect("starts");
    sim.start_node(f).expect("starts");

    // Warm-up: fills the ring past capacity (so the measured window runs in
    // overwrite mode) and sizes the per-node last-touch table — the only
    // trace structure that grows, and only when a node id first appears.
    sim.run_for(SimDuration::from_secs(2));
    let warm_events = sim.events_processed();
    let warm_recorded = sim.trace().expect("trace enabled").events_recorded();
    assert!(
        sim.trace().expect("trace enabled").events_dropped() > 0,
        "warm-up must wrap the 256-slot ring ({warm_recorded} recorded)"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sim.run_for(SimDuration::from_secs(10));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    let steady_events = sim.events_processed() - warm_events;
    let steady_recorded = sim.trace().expect("trace enabled").events_recorded() - warm_recorded;
    assert!(
        steady_events > 1_000,
        "traced steady-state window barely ran: {steady_events} events"
    );
    assert!(
        steady_recorded > 1_000,
        "traced window barely recorded: {steady_recorded} trace events"
    );
    assert_eq!(
        after - before,
        0,
        "traced dispatch allocated {} times over {steady_events} events \
         ({steady_recorded} trace events recorded)",
        after - before
    );

    // ---- phase 5: arena-style `Sim::reset` -------------------------------
    //
    // Two properties of the warm-runner tentpole:
    //   1. Reset-equals-fresh: a reset simulator driven through a faulted,
    //      traced case is byte-indistinguishable from `Sim::new` with the
    //      same seed (same counters, logs, RPC responses, trace slices).
    //   2. Steady-state reset is allocation-free: once the pools are warm,
    //      `reset` only clears and re-derives — dropping is allowed,
    //      acquiring memory is not.
    // The phase-4 sim is already warm (traced ring, sized queue/slabs);
    // reuse it as the warm runner.
    let mut fresh = Sim::new(4242);
    let fp_fresh = drive_case(&mut fresh, 4242);

    sim.reset(4242);
    let fp_warm1 = drive_case(&mut sim, 4242);
    assert_eq!(
        fp_warm1, fp_fresh,
        "first warm cycle diverged from a fresh simulator"
    );

    sim.reset(4242);
    let fp_warm2 = drive_case(&mut sim, 4242);
    assert_eq!(
        fp_warm2, fp_fresh,
        "second warm cycle diverged from a fresh simulator"
    );

    // A different seed through the same warm runner must still match fresh:
    // reset leaks nothing seed-dependent.
    let mut fresh_other = Sim::new(777);
    let fp_fresh_other = drive_case(&mut fresh_other, 777);
    sim.reset(777);
    let fp_warm_other = drive_case(&mut sim, 777);
    assert_eq!(
        fp_warm_other, fp_fresh_other,
        "warm cycle with a new seed diverged from a fresh simulator"
    );

    // The runner has now been through several full cycles with tracing and
    // faults enabled — every pool is at steady-state capacity. Reset itself
    // must not allocate.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sim.reset(4242);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state Sim::reset allocated {} times",
        after - before
    );

    // ---- phase 6: snapshot-and-fork --------------------------------------
    //
    // The campaign-scaling extension of phase 5: capture a warm world once
    // at its fork point, then fork many seed-divergent suffixes off the
    // snapshot. Two properties:
    //   1. Restore-equals-fresh: a restored world driven through a faulted,
    //      traced, torn-durability suffix fingerprints byte-identically to
    //      a fresh simulator driven straight through under the same fork
    //      seed — even after unrelated suffixes dirtied the warm world.
    //   2. Steady-state snapshot/restore/suffix cycles are allocation-free:
    //      `snapshot_into` overwrites the pooled buffer and `restore`
    //      writes the captured state back into retained capacity. (The one
    //      allowed allocating path in restore — re-inserting a file the
    //      suffix deleted from the storage tree — is cold and not hit by
    //      this traffic; deallocation is free either way.)
    let mut fresh = fork_world(4242);
    let want = fork_suffix_fingerprint(&mut fresh, 1);

    let mut warm = fork_world(4242);
    let mut snap = SimSnapshot::new();
    assert!(warm.snapshot_into(&mut snap), "world must be forkable");
    // Dirty the warm world with a different fork seed, then restore: the
    // reference seed must replay byte-for-byte off the snapshot.
    let divergent = fork_suffix_fingerprint(&mut warm, 2);
    assert_ne!(divergent, want, "fork seeds must diverge");
    warm.restore(&snap);
    assert_eq!(
        fork_suffix_fingerprint(&mut warm, 1),
        want,
        "restored suffix diverged from a fresh simulator"
    );

    // Warm cycles: replay the exact seeds the measured loop uses, so every
    // pool (snapshot buffer, event queue, storage images, trace ring) is at
    // the high-water mark those trajectories reach. The fingerprint runs
    // above already sized the suffix side.
    let fork_seeds = [21u64, 22, 23];
    for &s in &fork_seeds {
        warm.restore(&snap);
        assert!(
            warm.snapshot_into(&mut snap),
            "recapture must stay forkable"
        );
        warm.reseed(s);
        warm.run_for(SimDuration::from_secs(4));
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for &s in &fork_seeds {
        warm.restore(&snap); // back to the fork point, in place
        warm.snapshot_into(&mut snap); // recapture over the pooled buffer
        warm.reseed(s); // fork
        warm.run_for(SimDuration::from_secs(4)); // divergent suffix
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state snapshot/restore/suffix cycles allocated {} times \
         over {} forks",
        after - before,
        fork_seeds.len()
    );

    // The warm runner still replays the reference suffix exactly: the
    // measured churn leaked nothing into the restored state.
    warm.restore(&snap);
    assert_eq!(
        fork_suffix_fingerprint(&mut warm, 1),
        want,
        "post-churn restored suffix diverged"
    );

    // ---- phase 7: coverage signature folding + corpus lookup -------------
    //
    // The coverage-guided search adds one step to every executed case: fold
    // the trace ring into a pooled `CaseSignature`, digest it, and probe the
    // corpus for novelty. On the steady-state path — pools sized, corpus
    // populated — that step must not touch the allocator. (Retaining a
    // genuinely *novel* input does insert into the corpus BTree and may
    // allocate; that is the cold path by definition, so the measured loop
    // replays known trajectories and only probes.)
    use dup_tester::{CaseSignature, Corpus, CorpusEntry, SearchInput};

    let mut signature = CaseSignature::new();
    let mut corpus = Corpus::new();
    // Warm-up: fold each fork trajectory once, sizing the signature pool and
    // seeding the corpus with every digest the measured loop will probe.
    for &s in &fork_seeds {
        warm.restore(&snap);
        warm.reseed(s);
        warm.run_for(SimDuration::from_secs(4));
        signature.clear();
        signature.fold(warm.trace().expect("trace enabled"));
        corpus.insert(CorpusEntry {
            input: SearchInput::from_seed(s),
            digest: signature.digest(),
            new_bits: signature.bits_set(),
            bits_set: signature.bits_set(),
        });
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut probes_hit = 0u32;
    for &s in &fork_seeds {
        warm.restore(&snap); // back to the fork point (alloc-free, phase 6)
        warm.reseed(s); // fork
        warm.run_for(SimDuration::from_secs(4)); // replay the sized suffix
        signature.clear(); // zero the pooled bitmap in place
        signature.fold(warm.trace().expect("trace enabled"));
        if corpus.contains(signature.digest()) {
            probes_hit += 1;
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state signature folding + corpus lookup allocated {} times \
         over {} cases",
        after - before,
        fork_seeds.len()
    );
    // Determinism double-check: every replayed trajectory folded back to
    // the digest its warm-up pass retained.
    assert_eq!(
        probes_hit,
        fork_seeds.len() as u32,
        "replayed trajectories must fold to their retained digests"
    );

    // ---- phase 8: rollout-plan compile + nudge + validate ----------------
    //
    // Every case the campaign driver runs starts by compiling its scenario
    // into a pooled `RolloutPlan`, optionally nudging it (the search's
    // fourth mutation operator), and validating the schedule. On the warm
    // path — path/step buffers sized by the largest plan ever compiled —
    // that whole step must not touch the allocator. (`render` is the repro
    // path and allocates its string; it stays out of the measured loop.)
    use dup_tester::{PlanNudge, RolloutPlan, Scenario, VersionId};

    let catalog: Vec<VersionId> = ["1.0.0", "2.0.0", "3.0.0"]
        .iter()
        .map(|s| s.parse().expect("version"))
        .collect();
    let (from, to) = (catalog[0], catalog[2]);
    let cluster = 3;
    let mut plan = RolloutPlan::new();
    // Warm-up: compile every scenario once so the pooled buffers reach the
    // widest plan's capacity, and exercise the nudge + validate path.
    for scenario in Scenario::extended() {
        for seed in 0..4u64 {
            plan.compile(scenario, from, to, &catalog, cluster, seed);
            plan.nudge(&PlanNudge {
                settle_shift_ms: 500,
                step_swap_salt: seed | 1,
                ..PlanNudge::default()
            });
            plan.validate(cluster).expect("nudged plan stays valid");
        }
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut steps_compiled = 0usize;
    for round in 0..8u64 {
        for scenario in Scenario::extended() {
            plan.compile(scenario, from, to, &catalog, cluster, round);
            plan.nudge(&PlanNudge {
                settle_shift_ms: -250,
                step_swap_salt: round | 1,
                ..PlanNudge::default()
            });
            plan.validate(cluster).expect("nudged plan stays valid");
            steps_compiled += plan.steps().len();
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state plan compile + nudge + validate allocated {} times \
         over {} steps",
        after - before,
        steps_compiled
    );
    assert!(steps_compiled > 0, "plans must compile non-empty schedules");

    // ---- phase 9: open-loop arrival generation + key draw ----------------
    //
    // The open-loop workload model's tentpole claim: logical clients are
    // arithmetic, not state. Compiling a `WorkloadPlan`, nudging it (the
    // search's workload operators), and streaming every arrival — each one
    // drawing an interarrival gap, a Zipf rank, a rank→key permutation
    // step, and a client id — must not touch the allocator on the warm
    // path, and a million-client plan must occupy exactly the pooled
    // capacity of a thousand-client one.
    use dup_tester::{OpenLoopSpec, WorkloadPlan};

    let small = OpenLoopSpec::small();
    let million = OpenLoopSpec::million();
    let mut wplan = WorkloadPlan::new();
    // Warm-up: compile both specs into the same pooled plan and walk the
    // arrival stream end to end once.
    wplan.compile(&small, 7, 2_000);
    let small_footprint = (wplan.segment_count(), wplan.segment_capacity());
    let mut warm_arrivals = 0u64;
    for a in wplan.arrivals() {
        warm_arrivals += 1;
        std::hint::black_box(a.key);
    }
    assert!(warm_arrivals > 0, "warm-up stream must produce arrivals");
    wplan.compile(&million, 7, 2_000);
    assert_eq!(
        (wplan.segment_count(), wplan.segment_capacity()),
        small_footprint,
        "10^6 logical clients must not grow the plan's memory footprint"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut arrivals_seen = 0u64;
    let mut draw_acc = 0u64;
    for round in 0..4u64 {
        wplan.compile(&million, round, 2_000);
        wplan.nudge(&PlanNudge {
            burst_shift_ms: 3,
            key_rank_salt: round | 1,
            arrival_churn_salt: round | 1,
            ..PlanNudge::default()
        });
        wplan.validate().expect("nudged workload plan stays valid");
        for a in wplan.arrivals() {
            arrivals_seen += 1;
            draw_acc = draw_acc.wrapping_add(a.key ^ a.client ^ a.at_us);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state arrival generation + key draw allocated {} times \
         over {} arrivals",
        after - before,
        arrivals_seen
    );
    assert!(arrivals_seen > 0, "measured loop must produce arrivals");
    std::hint::black_box(draw_acc);
}
