//! Asserts the tentpole property of the hot path: once the simulator is
//! warm, dispatching events performs **zero heap allocations**.
//!
//! The lib crate `#![forbid(unsafe_code)]`, so the counting `GlobalAlloc`
//! (which must be `unsafe impl`) lives here, in an integration test — a
//! separate crate where the forbid does not apply. This file deliberately
//! contains exactly ONE `#[test]`: the allocation counter is process-global,
//! and a second test running on a parallel test thread would pollute it.

use dup_simnet::{Ctx, Endpoint, Process, Sim, SimDuration, StepResult};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator. Deallocations are free to happen (returning pooled buffers
/// never deallocates anyway); the steady-state claim is about *acquiring*
/// memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Replies to every message, forever. The payload is built once at
/// construction and cloned per send: `Bytes` is a refcounted handle, so the
/// clone never touches the allocator.
struct Pinger {
    peer: u32,
    payload: bytes::Bytes,
}

impl Pinger {
    fn new(peer: u32) -> Self {
        Pinger {
            peer,
            payload: bytes::Bytes::from_static(b"ping"),
        }
    }
}

impl Process for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        ctx.send(Endpoint::Node(self.peer), self.payload.clone());
        Ok(())
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _p: &[u8]) -> StepResult {
        ctx.send(from, self.payload.clone());
        Ok(())
    }
    fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
        Ok(())
    }
}

#[test]
fn steady_state_dispatch_allocates_nothing() {
    let mut sim = Sim::new(42);
    let a = sim.add_node("alloc-a", "v", Box::new(Pinger::new(1)));
    let b = sim.add_node("alloc-b", "v", Box::new(Pinger::new(0)));
    sim.start_node(a).expect("starts");
    sim.start_node(b).expect("starts");

    // Warm-up: grows the event queue, the pooled effect buffer, and the
    // per-host storage slots to their steady-state capacities.
    sim.run_for(SimDuration::from_secs(2));
    let warm_events = sim.events_processed();
    assert!(
        warm_events > 100,
        "warm-up barely ran: {warm_events} events"
    );

    // Steady state: two nodes ping-ponging static payloads. Every event is
    // a Deliver -> dispatch -> Effect::Send -> schedule cycle; none of it
    // may touch the allocator.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sim.run_for(SimDuration::from_secs(10));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    let steady_events = sim.events_processed() - warm_events;
    assert!(
        steady_events > 1_000,
        "steady-state window barely ran: {steady_events} events"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state dispatch allocated {} times over {steady_events} events",
        after - before
    );
    assert!(sim.node_status(a).is_running());
    assert!(sim.node_status(b).is_running());
}
