//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a pure value describing the adversity a simulation run
//! should face: per-message probabilities (drop, duplicate, delay-spike,
//! reorder) and a schedule of discrete actions (partition/heal link pairs,
//! crash and later restart nodes) pinned to simulated times. The plan carries
//! its own RNG seed, so **the same plan on the same [`crate::Sim`] seed
//! replays byte-identically** — fault campaigns are as reproducible as clean
//! runs, which is what lets a failure report quote the plan as part of a
//! one-line repro string.
//!
//! Message fates are decided inside the simulator's allocation-free dispatch
//! loop; steady-state injection performs no heap allocation (asserted by
//! `tests/alloc_free_dispatch.rs`). Client traffic is never faulted, matching
//! [`crate::Network`]'s rule that the harness plays a co-located test driver.
//!
//! Nodes crashed by the plan carry the crash reason [`FAULT_CRASH_REASON`],
//! which failure oracles use to tell injected chaos from genuine failures.

use crate::process::NodeId;
use crate::rng::SimRng;
use crate::storage::Durability;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Crash reason recorded on nodes crashed by an injected fault, so oracles
/// can exempt them (like `"killed by harness"` for deliberate kills).
pub const FAULT_CRASH_REASON: &str = "crashed by fault injection";

/// Stream id under the plan seed for the per-message fate stream.
const FATE_STREAM: u64 = 0xFA7E;

/// Stream id under the plan seed for the crash-materializer stream.
/// Separate from [`FATE_STREAM`] so crash outcomes never shift message
/// fates (and vice versa) — the two schedules stay independently stable.
const CRASH_STREAM: u64 = 0xC4A5;

/// One discrete fault action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Partition the link between two nodes (both directions).
    Partition(NodeId, NodeId),
    /// Heal the partition between two nodes.
    Heal(NodeId, NodeId),
    /// Heal every partition.
    HealAll,
    /// Crash a node (no shutdown hook), recording [`FAULT_CRASH_REASON`].
    Crash(NodeId),
    /// Restart a node previously crashed by [`FaultKind::Crash`]. The
    /// simulator only queues the request ([`crate::Sim::take_pending_restart`]);
    /// the harness decides which process version to install.
    Restart(NodeId),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Partition(a, b) => write!(f, "part({a},{b})"),
            FaultKind::Heal(a, b) => write!(f, "heal({a},{b})"),
            FaultKind::HealAll => write!(f, "heal-all"),
            FaultKind::Crash(n) => write!(f, "crash({n})"),
            FaultKind::Restart(n) => write!(f, "restart({n})"),
        }
    }
}

/// A [`FaultKind`] pinned to a simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// When the action fires (clamped to "now" if already past at install).
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The trigger condition of a [`CrashPoint`].
///
/// Unlike a [`FaultKind::Crash`] pinned to a wall-clock instant, a crash
/// point fires when the *simulation* reaches a hazardous state — which is
/// how real upgrade failures trigger (paper §5: nodes dying partway through
/// the upgrade procedure itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPointKind {
    /// Crash the host mid-rolling-upgrade: after the old version was asked
    /// to stop (its shutdown hook has run) but before the new version
    /// boots. The harness's install+start continues the upgrade from the
    /// crash-materialized storage image.
    MidUpgrade,
    /// Crash the host right after a handler leaves unflushed bytes on disk
    /// — between a write and its flush. The node is restarted
    /// [`FaultPlan::crash_point_restart`] later at the version it was
    /// running.
    UnflushedWrite,
}

impl fmt::Display for CrashPointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashPointKind::MidUpgrade => write!(f, "mid-upgrade"),
            CrashPointKind::UnflushedWrite => write!(f, "unflushed-write"),
        }
    }
}

/// A state-triggered crash armed for one node inside a time window.
///
/// The point fires (once) on the first matching hazard inside
/// `[after, not_after]`; if the hazard never occurs in the window, the
/// point simply never fires — the run is still deterministic because the
/// crash-materializer RNG stream is only consumed on actual crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The node whose host crashes.
    pub node: NodeId,
    /// What hazard triggers the crash.
    pub kind: CrashPointKind,
    /// Earliest simulated time the point may fire.
    pub after: SimTime,
    /// Latest simulated time the point may fire.
    pub not_after: SimTime,
}

/// A deterministic fault schedule for one simulation run.
///
/// Probabilities apply independently to every in-flight node-to-node message,
/// first match wins: drop, else duplicate, else delay-spike, else reorder.
/// Scheduled actions fire as ordinary simulator events at their pinned times.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Probability a message is silently dropped.
    pub drop_probability: f64,
    /// Probability a message is delivered twice (the copy lands 1–25 ms
    /// later).
    pub duplicate_probability: f64,
    /// Probability a message's latency is spiked by up to
    /// [`FaultPlan::max_delay_spike`].
    pub delay_probability: f64,
    /// Upper bound of an injected latency spike.
    pub max_delay_spike: SimDuration,
    /// Probability a message is shifted by up to
    /// [`FaultPlan::max_reorder_shift`] so it can land after later sends.
    pub reorder_probability: f64,
    /// Upper bound of an injected reorder shift.
    pub max_reorder_shift: SimDuration,
    /// Crash-durability mode applied to every host while this plan is
    /// installed (see [`Durability`]).
    pub durability: Durability,
    /// How long after an [`CrashPointKind::UnflushedWrite`] crash the
    /// simulator requests the node's restart.
    pub crash_point_restart: SimDuration,
    actions: Vec<ScheduledFault>,
    crash_points: Vec<CrashPoint>,
}

impl FaultPlan {
    /// Creates an empty plan (no probabilities, no actions) seeded with
    /// `seed` for its per-message fate stream.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            delay_probability: 0.0,
            max_delay_spike: SimDuration::from_millis(500),
            reorder_probability: 0.0,
            max_reorder_shift: SimDuration::from_millis(25),
            durability: Durability::Strict,
            crash_point_restart: SimDuration::from_secs(2),
            actions: Vec::new(),
            crash_points: Vec::new(),
        }
    }

    /// The seed of the plan's fate stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules `kind` at simulated time `at`; chains.
    pub fn schedule(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.actions.push(ScheduledFault { at, kind });
        self
    }

    /// The scheduled actions, in insertion order.
    pub fn actions(&self) -> &[ScheduledFault] {
        &self.actions
    }

    /// Arms a state-triggered crash for `node` inside `[after, not_after]`;
    /// chains.
    pub fn crash_point(
        mut self,
        node: NodeId,
        kind: CrashPointKind,
        after: SimTime,
        not_after: SimTime,
    ) -> Self {
        self.crash_points.push(CrashPoint {
            node,
            kind,
            after,
            not_after,
        });
        self
    }

    /// The armed crash points, in insertion order.
    pub fn crash_points(&self) -> &[CrashPoint] {
        &self.crash_points
    }

    /// `true` if the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.actions.is_empty()
            && self.crash_points.is_empty()
            && self.durability == Durability::Strict
            && self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.delay_probability <= 0.0
            && self.reorder_probability <= 0.0
    }

    /// Field-wise copy that reuses the destination's action and crash-point
    /// vec capacities (the derived `clone_from` would clone-and-replace).
    pub(crate) fn copy_from(&mut self, src: &FaultPlan) {
        self.seed = src.seed;
        self.drop_probability = src.drop_probability;
        self.duplicate_probability = src.duplicate_probability;
        self.delay_probability = src.delay_probability;
        self.max_delay_spike = src.max_delay_spike;
        self.reorder_probability = src.reorder_probability;
        self.max_reorder_shift = src.max_reorder_shift;
        self.durability = src.durability;
        self.crash_point_restart = src.crash_point_restart;
        self.actions.clone_from(&src.actions);
        self.crash_points.clone_from(&src.crash_points);
    }

    /// A compact one-line description, suitable for repro strings:
    /// `fault-plan[seed=0x2a drop=2.0% dup=0.0% delay=5.0%/800ms
    /// reorder=10.0%/40ms actions=3]`.
    pub fn describe(&self) -> String {
        format!(
            "fault-plan[seed={:#x} drop={:.1}% dup={:.1}% delay={:.1}%/{} reorder={:.1}%/{} actions={} durability={} crash-points={}]",
            self.seed,
            self.drop_probability * 100.0,
            self.duplicate_probability * 100.0,
            self.delay_probability * 100.0,
            self.max_delay_spike,
            self.reorder_probability * 100.0,
            self.max_reorder_shift,
            self.actions.len(),
            self.durability,
            self.crash_points.len(),
        )
    }
}

/// The fate of one in-flight node-to-node message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Drop silently.
    Drop,
    /// Deliver normally, plus a second copy `extra` later.
    Duplicate {
        /// Offset of the duplicate copy from the original delivery.
        extra: SimDuration,
    },
    /// Deliver `extra` later than the network latency alone.
    Delay {
        /// The injected extra latency (spike or reorder shift).
        extra: SimDuration,
    },
}

/// Live injection state inside [`crate::Sim`]: the plan plus its fate stream
/// and a counter of injections performed.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    rng: SimRng,
    /// The crash-materializer stream: consumed only when a host actually
    /// crashes, independent of message fates.
    pub(crate) crash_rng: SimRng,
    /// Per-[`CrashPoint`] fired flags (each point fires at most once).
    consumed: Vec<bool>,
    pub(crate) injected: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::new(plan.seed).split(FATE_STREAM);
        let crash_rng = SimRng::new(plan.seed).split(CRASH_STREAM);
        let consumed = vec![false; plan.crash_points.len()];
        FaultState {
            plan,
            rng,
            crash_rng,
            consumed,
            injected: 0,
        }
    }

    /// Rebinds this state to a new `plan`, reusing the `consumed` flag vec's
    /// capacity. Observationally identical to `FaultState::new(plan)` — both
    /// RNG streams are re-derived from the plan's seed — so `Sim::reset` can
    /// park and recycle the state without touching the allocator.
    pub(crate) fn reinstall(&mut self, plan: FaultPlan) {
        self.rng = SimRng::new(plan.seed).split(FATE_STREAM);
        self.crash_rng = SimRng::new(plan.seed).split(CRASH_STREAM);
        self.consumed.clear();
        self.consumed.resize(plan.crash_points.len(), false);
        self.injected = 0;
        self.plan = plan;
    }

    /// Cheap pre-check: is an unconsumed crash point armed for `node` of
    /// `kind` whose window contains `now`? Does not consume the point.
    pub(crate) fn wants(&self, node: NodeId, kind: CrashPointKind, now: SimTime) -> bool {
        self.plan
            .crash_points
            .iter()
            .zip(&self.consumed)
            .any(|(p, &used)| {
                !used && p.node == node && p.kind == kind && p.after <= now && now <= p.not_after
            })
    }

    /// Fires the first matching crash point, marking it consumed and
    /// counting one injection. Returns `false` if none is armed.
    pub(crate) fn take_crash_point(
        &mut self,
        node: NodeId,
        kind: CrashPointKind,
        now: SimTime,
    ) -> bool {
        for (p, used) in self.plan.crash_points.iter().zip(&mut self.consumed) {
            if !*used && p.node == node && p.kind == kind && p.after <= now && now <= p.not_after {
                *used = true;
                self.injected += 1;
                return true;
            }
        }
        false
    }

    /// Captures this state — plan, both RNG stream positions, consumed
    /// crash-point flags, injection counter — into a pooled snapshot.
    pub(crate) fn capture_into(&self, snap: &mut FaultSnapshot) {
        snap.plan.copy_from(&self.plan);
        snap.rng = self.rng.clone();
        snap.crash_rng = self.crash_rng.clone();
        snap.consumed.clone_from(&self.consumed);
        snap.injected = self.injected;
    }

    /// Restores this state from a snapshot, reusing retained capacity.
    pub(crate) fn restore_from_snapshot(&mut self, snap: &FaultSnapshot) {
        self.plan.copy_from(&snap.plan);
        self.rng = snap.rng.clone();
        self.crash_rng = snap.crash_rng.clone();
        self.consumed.clone_from(&snap.consumed);
        self.injected = snap.injected;
    }

    /// Decides the fate of one node-to-node message. First matching fault
    /// wins; every non-`Deliver` fate counts as one injection. Draw order is
    /// fixed (drop, duplicate, delay, reorder) so the stream is stable.
    pub(crate) fn message_fate(&mut self) -> MessageFate {
        if self.rng.chance(self.plan.drop_probability) {
            self.injected += 1;
            return MessageFate::Drop;
        }
        if self.rng.chance(self.plan.duplicate_probability) {
            self.injected += 1;
            let extra = SimDuration::from_millis(self.rng.next_range(1, 25));
            return MessageFate::Duplicate { extra };
        }
        if self.rng.chance(self.plan.delay_probability) {
            self.injected += 1;
            let cap = self.plan.max_delay_spike.as_millis().max(1);
            let extra = SimDuration::from_millis(self.rng.next_range(1, cap));
            return MessageFate::Delay { extra };
        }
        if self.rng.chance(self.plan.reorder_probability) {
            self.injected += 1;
            let cap = self.plan.max_reorder_shift.as_millis().max(1);
            let extra = SimDuration::from_millis(self.rng.next_range(1, cap));
            return MessageFate::Delay { extra };
        }
        MessageFate::Deliver
    }
}

/// Pooled snapshot of a [`FaultState`]: the plan plus both RNG stream
/// positions mid-run (unlike [`FaultState::reinstall`], which re-derives
/// them from the seed), so a restored simulator continues drawing fates
/// exactly where the snapshotted one stood.
#[derive(Debug)]
pub(crate) struct FaultSnapshot {
    plan: FaultPlan,
    rng: SimRng,
    crash_rng: SimRng,
    consumed: Vec<bool>,
    injected: u64,
}

impl Default for FaultSnapshot {
    fn default() -> Self {
        FaultSnapshot {
            plan: FaultPlan::new(0),
            rng: SimRng::new(0),
            crash_rng: SimRng::new(0),
            consumed: Vec::new(),
            injected: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy_plan(seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        plan.drop_probability = 0.06;
        plan.duplicate_probability = 0.05;
        plan.delay_probability = 0.05;
        plan.reorder_probability = 0.10;
        plan.schedule(SimTime::from_millis(3000), FaultKind::Partition(0, 1))
            .schedule(SimTime::from_millis(8000), FaultKind::Heal(0, 1))
            .schedule(SimTime::from_millis(9000), FaultKind::Crash(2))
            .schedule(SimTime::from_millis(12000), FaultKind::Restart(2))
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let mut a = FaultState::new(heavy_plan(7));
        let mut b = FaultState::new(heavy_plan(7));
        for _ in 0..10_000 {
            assert_eq!(a.message_fate(), b.message_fate());
        }
        assert_eq!(a.injected, b.injected);
        assert!(a.injected > 0, "heavy plan never injected in 10k draws");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultState::new(heavy_plan(1));
        let mut b = FaultState::new(heavy_plan(2));
        let same = (0..1000)
            .filter(|_| a.message_fate() == b.message_fate())
            .count();
        assert!(same < 1000, "independent streams matched everywhere");
    }

    #[test]
    fn noop_plan_always_delivers_and_counts_nothing() {
        let mut state = FaultState::new(FaultPlan::new(9));
        assert!(state.plan.is_noop());
        for _ in 0..1000 {
            assert_eq!(state.message_fate(), MessageFate::Deliver);
        }
        assert_eq!(state.injected, 0);
    }

    #[test]
    fn actions_keep_insertion_order() {
        let plan = heavy_plan(3);
        assert!(!plan.is_noop());
        let kinds: Vec<FaultKind> = plan.actions().iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Partition(0, 1),
                FaultKind::Heal(0, 1),
                FaultKind::Crash(2),
                FaultKind::Restart(2),
            ]
        );
    }

    #[test]
    fn describe_is_stable_and_compact() {
        let d = heavy_plan(42).describe();
        assert_eq!(d, heavy_plan(42).describe());
        assert!(d.contains("seed=0x2a"), "{d}");
        assert!(d.contains("drop=6.0%"), "{d}");
        assert!(d.contains("actions=4"), "{d}");
        assert!(!d.contains('\n'));
    }

    #[test]
    fn crash_points_fire_once_inside_their_window() {
        let plan = FaultPlan::new(4).crash_point(
            1,
            CrashPointKind::UnflushedWrite,
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        );
        assert!(!plan.is_noop());
        assert_eq!(plan.crash_points().len(), 1);
        let mut state = FaultState::new(plan);
        // Outside the window / wrong node / wrong kind: nothing fires.
        assert!(!state.wants(1, CrashPointKind::UnflushedWrite, SimTime::from_millis(50)));
        assert!(!state.take_crash_point(
            1,
            CrashPointKind::UnflushedWrite,
            SimTime::from_millis(50)
        ));
        assert!(!state.take_crash_point(
            2,
            CrashPointKind::UnflushedWrite,
            SimTime::from_millis(150)
        ));
        assert!(!state.take_crash_point(1, CrashPointKind::MidUpgrade, SimTime::from_millis(150)));
        assert_eq!(state.injected, 0);
        // Inside: fires exactly once.
        assert!(state.wants(1, CrashPointKind::UnflushedWrite, SimTime::from_millis(150)));
        assert!(state.take_crash_point(
            1,
            CrashPointKind::UnflushedWrite,
            SimTime::from_millis(150)
        ));
        assert!(!state.wants(1, CrashPointKind::UnflushedWrite, SimTime::from_millis(150)));
        assert!(!state.take_crash_point(
            1,
            CrashPointKind::UnflushedWrite,
            SimTime::from_millis(150)
        ));
        assert_eq!(state.injected, 1);
    }

    #[test]
    fn durability_alone_makes_a_plan_active() {
        let mut plan = FaultPlan::new(11);
        assert!(plan.is_noop());
        plan.durability = Durability::Torn;
        assert!(!plan.is_noop());
        assert!(
            plan.describe().contains("durability=torn"),
            "{}",
            plan.describe()
        );
    }

    #[test]
    fn fate_extras_respect_caps() {
        let mut plan = FaultPlan::new(5);
        plan.delay_probability = 1.0;
        plan.max_delay_spike = SimDuration::from_millis(100);
        let mut state = FaultState::new(plan);
        for _ in 0..500 {
            match state.message_fate() {
                MessageFate::Delay { extra } => {
                    assert!((1..=100).contains(&extra.as_millis()), "{extra}")
                }
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }
}
