//! Simulated time.
//!
//! The simulator uses a millisecond-resolution virtual clock. Time only
//! advances when the event loop pops an event scheduled in the future, so a
//! run is fully deterministic regardless of host load.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis)
    }

    /// Returns the number of milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Returns the duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_advances_by_duration() {
        let t = SimTime::from_millis(500) + SimDuration::from_secs(2);
        assert_eq!(t.as_millis(), 2500);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_millis(100);
        let late = SimTime::from_millis(400);
        assert_eq!(late.since(early).as_millis(), 300);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(2500).to_string(), "2.500s");
        assert_eq!(SimDuration::from_millis(30).to_string(), "30ms");
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::from_millis(u64::MAX) + SimDuration::from_millis(10);
        assert_eq!(t.as_millis(), u64::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(1) - SimDuration::from_millis(250);
        assert_eq!(d.as_millis(), 750);
        assert_eq!(d.saturating_mul(4).as_millis(), 3000);
    }
}
