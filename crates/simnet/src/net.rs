//! Network model: latency, loss, and partitions.
//!
//! The model is intentionally simple — a base latency plus deterministic
//! jitter, an optional message-loss probability, and a set of partitioned
//! node pairs — because the studied upgrade failures (Finding 11: ~89%
//! deterministic) rarely depend on exotic network behaviour. The pieces that
//! *do* (e.g. the CASSANDRA-6678 handshake race) are expressed through
//! message ordering, which latency jitter perturbs deterministically.

use crate::process::{Endpoint, NodeId};
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Configuration and state of the simulated network.
#[derive(Debug)]
pub struct Network {
    /// Minimum one-way delivery latency.
    pub base_latency: SimDuration,
    /// Maximum extra latency added per message (uniform jitter).
    pub jitter: SimDuration,
    /// Probability that a node-to-node message is silently dropped.
    pub drop_probability: f64,
    /// Partitioned pairs, stored sorted-pair in a `Vec`: clusters hold a
    /// handful of links at most, a linear scan beats a tree, and re-adding a
    /// partition after a heal reuses capacity — fault plans can cycle
    /// partitions in steady state without touching the allocator.
    partitions: Vec<(NodeId, NodeId)>,
}

impl Default for Network {
    fn default() -> Self {
        Network {
            base_latency: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(4),
            drop_probability: 0.0,
            partitions: Vec::new(),
        }
    }
}

impl Network {
    /// Creates the default network model (1–5 ms latency, no loss).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores the default model and heals every partition, keeping the
    /// partition vec's capacity — the network half of `Sim::reset`.
    pub(crate) fn reset(&mut self) {
        let defaults = Network::default();
        self.base_latency = defaults.base_latency;
        self.jitter = defaults.jitter;
        self.drop_probability = defaults.drop_probability;
        self.partitions.clear();
    }

    /// Partitions `a` from `b` (both directions). Idempotent.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        let key = Self::key(a, b);
        if !self.partitions.contains(&key) {
            self.partitions.push(key);
        }
    }

    /// Heals the partition between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        let key = Self::key(a, b);
        if let Some(i) = self.partitions.iter().position(|&p| p == key) {
            self.partitions.swap_remove(i);
        }
    }

    /// Heals all partitions.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// The partitioned pairs, for snapshot capture.
    pub(crate) fn partition_pairs(&self) -> &[(NodeId, NodeId)] {
        &self.partitions
    }

    /// Overwrites the partition set from a snapshot, reusing capacity.
    pub(crate) fn restore_partitions(&mut self, pairs: &[(NodeId, NodeId)]) {
        self.partitions.clear();
        self.partitions.extend_from_slice(pairs);
    }

    /// Returns `true` if `a` and `b` are partitioned from each other.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::key(a, b))
    }

    /// Decides the fate of a message from `from` to `to`: `Some(latency)` to
    /// deliver after that latency, `None` to drop.
    ///
    /// Client traffic is never dropped or partitioned: the harness plays the
    /// role of a co-located test driver, exactly like DUPTester's host-side
    /// client scripts.
    pub fn route(&self, from: Endpoint, to: Endpoint, rng: &mut SimRng) -> Option<SimDuration> {
        if let (Endpoint::Node(a), Endpoint::Node(b)) = (from, to) {
            if self.is_partitioned(a, b) {
                return None;
            }
            if self.drop_probability > 0.0 && rng.chance(self.drop_probability) {
                return None;
            }
        }
        let jitter_ms = if self.jitter.as_millis() == 0 {
            0
        } else {
            rng.next_below(self.jitter.as_millis() + 1)
        };
        Some(self.base_latency + SimDuration::from_millis(jitter_ms))
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut net = Network::new();
        net.partition(1, 2);
        assert!(net.is_partitioned(1, 2));
        assert!(net.is_partitioned(2, 1));
        net.heal(2, 1);
        assert!(!net.is_partitioned(1, 2));
    }

    #[test]
    fn partitioned_pairs_get_no_route() {
        let mut net = Network::new();
        net.partition(0, 1);
        let mut rng = SimRng::new(1);
        assert!(net
            .route(Endpoint::Node(0), Endpoint::Node(1), &mut rng)
            .is_none());
        assert!(net
            .route(Endpoint::Node(0), Endpoint::Node(2), &mut rng)
            .is_some());
    }

    #[test]
    fn client_traffic_survives_loss_and_partitions() {
        let mut net = Network::new();
        net.drop_probability = 1.0;
        net.partition(0, 1);
        let mut rng = SimRng::new(1);
        // Client <-> node traffic is exempt from both loss and partitions.
        assert!(net
            .route(Endpoint::Client(7), Endpoint::Node(0), &mut rng)
            .is_some());
        assert!(net
            .route(Endpoint::Node(0), Endpoint::Client(7), &mut rng)
            .is_some());
        // Node <-> node traffic is dropped.
        assert!(net
            .route(Endpoint::Node(2), Endpoint::Node(3), &mut rng)
            .is_none());
    }

    #[test]
    fn latency_within_configured_bounds() {
        let net = Network::new();
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            let d = net
                .route(Endpoint::Node(0), Endpoint::Node(1), &mut rng)
                .unwrap();
            assert!((1..=5).contains(&d.as_millis()), "latency {d}");
        }
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut net = Network::new();
        net.partition(1, 2);
        net.partition(3, 4);
        net.heal_all();
        assert!(!net.is_partitioned(1, 2));
        assert!(!net.is_partitioned(3, 4));
    }
}
