//! Causal trace recorder for the simulator event loop.
//!
//! When enabled via [`crate::Sim::enable_trace`], the simulator records every
//! consequential event — message sends and deliveries, injected fault fates,
//! timers, node lifecycle transitions, storage flush and crash-materialization
//! outcomes, client traffic — into a fixed-capacity ring of [`TraceEvent`]s.
//! Each event carries the simulated time and the id of its **causal parent**:
//! the event whose processing enqueued or directly produced it. Walking
//! parents from any event reconstructs the chain of messages, timers, and
//! faults that led to it, which is exactly the forensic question a failing
//! upgrade case poses ("*which* delivery made this node crash?").
//!
//! Design rules:
//!
//! - **Allocation-free steady state.** The ring is allocated and prefilled
//!   once at enable time; recording overwrites slots in place and performs no
//!   allocation at all. Anchor lookup scans the live ring at extraction time
//!   instead of maintaining per-record side tables, keeping the hot path to a
//!   single slot store.
//! - **Deterministic.** Event ids are assigned sequentially from 1 and every
//!   recorded field derives from simulator state, so the same seed produces a
//!   byte-identical trace — and a byte-identical [`TraceSlice`] — on every
//!   rerun and regardless of campaign worker-thread count.
//! - **Bounded extraction.** [`TraceBuffer::slice`] returns the lineage chain
//!   (capped at [`TraceConfig::lineage_limit`], oldest first, ending at the
//!   anchor) plus the last [`TraceConfig::tail_events`] events. Events evicted
//!   by ring wrap terminate the lineage walk early; the wrap count is reported
//!   so a truncated chain is distinguishable from a complete one.

use crate::faults::FaultKind;
use crate::process::{Endpoint, NodeId};
use crate::storage::HostId;
use crate::time::{SimDuration, SimTime};
use std::fmt;
use std::fmt::Write as _;

/// Configuration for the trace recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events. Older events are overwritten once the ring
    /// is full (counted in [`TraceBuffer::events_dropped`]).
    pub capacity: usize,
    /// How many trailing events a [`TraceSlice`] carries.
    pub tail_events: usize,
    /// Maximum lineage chain length in a [`TraceSlice`].
    pub lineage_limit: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 4096,
            tail_events: 16,
            lineage_limit: 32,
        }
    }
}

impl TraceConfig {
    /// The config as [`TraceBuffer::new`] will actually apply it (all limits
    /// clamped to at least 1). Two configs with equal normalized forms yield
    /// interchangeable buffers — the test `Sim::enable_trace` uses to reuse
    /// a pooled ring across [`crate::Sim::reset`] instead of reallocating.
    pub fn normalized(self) -> TraceConfig {
        TraceConfig {
            capacity: self.capacity.max(1),
            tail_events: self.tail_events.max(1),
            lineage_limit: self.lineage_limit.max(1),
        }
    }
}

/// What one trace event describes. All variants are plain-old-data: no
/// strings, no heap — recording one is a handful of stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A node handed a message to the network.
    MessageSend {
        /// Sending endpoint.
        from: Endpoint,
        /// Destination endpoint.
        to: Endpoint,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// A message reached a running node.
    MessageDeliver {
        /// Sending endpoint.
        from: Endpoint,
        /// Destination endpoint.
        to: Endpoint,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// The fault plan silently dropped an in-flight message.
    FaultDrop {
        /// Sending endpoint.
        from: Endpoint,
        /// Intended destination.
        to: Endpoint,
    },
    /// The fault plan scheduled a second delivery of a message.
    FaultDuplicate {
        /// Offset of the duplicate copy from the original delivery.
        extra: SimDuration,
    },
    /// The fault plan spiked a message's latency (delay or reorder shift).
    FaultDelay {
        /// The injected extra latency.
        extra: SimDuration,
    },
    /// A handler armed a timer.
    TimerSet {
        /// The arming node.
        node: NodeId,
        /// The handler-chosen token.
        token: u64,
        /// The delay until it fires.
        delay: SimDuration,
    },
    /// A timer fired on a running node of the arming generation.
    TimerFire {
        /// The node whose handler runs.
        node: NodeId,
        /// The token it was armed with.
        token: u64,
    },
    /// A node began running (its `on_start` hook is the child context).
    NodeStart {
        /// The starting node.
        node: NodeId,
        /// Its new generation.
        generation: u64,
    },
    /// A node was stopped gracefully (by the harness or by itself).
    NodeStop {
        /// The stopping node.
        node: NodeId,
    },
    /// The harness killed a node without its shutdown hook.
    NodeKill {
        /// The killed node.
        node: NodeId,
    },
    /// A node crashed: fatal handler error, handler panic, injected crash,
    /// or a fired crash point.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// A new process (typically another version) was installed into a slot.
    NodeUpgrade {
        /// The node whose process was replaced.
        node: NodeId,
    },
    /// An *older* process version was installed over newer on-disk state —
    /// the rollback step of a downgrade rollout. Distinct from
    /// [`TraceEventKind::NodeUpgrade`] so trace signatures separate
    /// forward rollouts from rollbacks.
    NodeDowngrade {
        /// The node whose process was replaced with an older version.
        node: NodeId,
    },
    /// A plan-scheduled restart of a fault-crashed node came due.
    NodeRestartDue {
        /// The node queued for harness restart.
        node: NodeId,
    },
    /// A scheduled fault action fired (partitions, heals, crashes, restarts).
    FaultAction {
        /// The applied action.
        kind: FaultKind,
    },
    /// A host's buffered storage was flushed by a graceful stop.
    StorageFlush {
        /// The flushed host.
        host: HostId,
    },
    /// A crash resolved a host's unflushed storage against the
    /// crash-materializer stream.
    StorageCrash {
        /// The crashed host.
        host: HostId,
        /// Unflushed bytes at risk when the crash hit.
        at_risk: u32,
    },
    /// The harness sent a client request.
    ClientRequest {
        /// The issuing client id.
        client: u64,
        /// The target node.
        node: NodeId,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// A reply reached a client inbox.
    ClientResponse {
        /// The receiving client id.
        client: u64,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// An oracle observation anchor recorded by [`crate::Sim::trace_observe`]:
    /// the terminal event a failure's lineage chain ends at.
    Observation {
        /// The node the observation implicates, if it names one.
        node: Option<NodeId>,
    },
}

impl TraceEventKind {
    /// The node this event primarily touches, used for anchoring
    /// observations to the last event involving a given node.
    fn node(&self) -> Option<NodeId> {
        match *self {
            TraceEventKind::MessageSend {
                from: Endpoint::Node(n),
                ..
            } => Some(n),
            TraceEventKind::MessageDeliver {
                to: Endpoint::Node(n),
                ..
            } => Some(n),
            TraceEventKind::TimerSet { node, .. }
            | TraceEventKind::TimerFire { node, .. }
            | TraceEventKind::NodeStart { node, .. }
            | TraceEventKind::NodeStop { node }
            | TraceEventKind::NodeKill { node }
            | TraceEventKind::NodeCrash { node }
            | TraceEventKind::NodeUpgrade { node }
            | TraceEventKind::NodeDowngrade { node }
            | TraceEventKind::NodeRestartDue { node }
            | TraceEventKind::ClientRequest { node, .. } => Some(node),
            _ => None,
        }
    }

    /// Packs the kind into the compact ring representation: a tag byte plus
    /// three scalar fields. Inlined into the record hot path, where the
    /// encoding is a handful of register moves.
    #[inline(always)]
    fn pack(self) -> (u8, u64, u64, u32) {
        match self {
            TraceEventKind::MessageSend { from, to, bytes } => {
                (0, pack_endpoint(from), pack_endpoint(to), bytes)
            }
            TraceEventKind::MessageDeliver { from, to, bytes } => {
                (1, pack_endpoint(from), pack_endpoint(to), bytes)
            }
            TraceEventKind::FaultDrop { from, to } => {
                (2, pack_endpoint(from), pack_endpoint(to), 0)
            }
            TraceEventKind::FaultDuplicate { extra } => (3, extra.as_millis(), 0, 0),
            TraceEventKind::FaultDelay { extra } => (4, extra.as_millis(), 0, 0),
            TraceEventKind::TimerSet { node, token, delay } => (5, token, delay.as_millis(), node),
            TraceEventKind::TimerFire { node, token } => (6, token, 0, node),
            TraceEventKind::NodeStart { node, generation } => (7, generation, 0, node),
            TraceEventKind::NodeStop { node } => (8, 0, 0, node),
            TraceEventKind::NodeKill { node } => (9, 0, 0, node),
            TraceEventKind::NodeCrash { node } => (10, 0, 0, node),
            TraceEventKind::NodeUpgrade { node } => (11, 0, 0, node),
            TraceEventKind::NodeRestartDue { node } => (12, 0, 0, node),
            TraceEventKind::FaultAction { kind } => match kind {
                FaultKind::Partition(a, b) => (13, a as u64, b as u64, 0),
                FaultKind::Heal(a, b) => (14, a as u64, b as u64, 0),
                FaultKind::HealAll => (15, 0, 0, 0),
                FaultKind::Crash(node) => (16, 0, 0, node),
                FaultKind::Restart(node) => (17, 0, 0, node),
            },
            TraceEventKind::StorageFlush { host } => (18, host.index() as u64, 0, 0),
            TraceEventKind::StorageCrash { host, at_risk } => (19, host.index() as u64, 0, at_risk),
            TraceEventKind::ClientRequest {
                client,
                node,
                bytes,
            } => (20, client, node as u64, bytes),
            TraceEventKind::ClientResponse { client, bytes } => (21, client, 0, bytes),
            TraceEventKind::Observation { node: None } => (22, 0, 0, 0),
            TraceEventKind::Observation { node: Some(node) } => (23, 0, 0, node),
            TraceEventKind::NodeDowngrade { node } => (24, 0, 0, node),
        }
    }

    /// Rebuilds the kind from its packed form. Cold: only runs when a slice
    /// is extracted or the buffer is inspected, never while recording.
    fn unpack(tag: u8, a: u64, b: u64, c: u32) -> TraceEventKind {
        match tag {
            0 => TraceEventKind::MessageSend {
                from: unpack_endpoint(a),
                to: unpack_endpoint(b),
                bytes: c,
            },
            1 => TraceEventKind::MessageDeliver {
                from: unpack_endpoint(a),
                to: unpack_endpoint(b),
                bytes: c,
            },
            2 => TraceEventKind::FaultDrop {
                from: unpack_endpoint(a),
                to: unpack_endpoint(b),
            },
            3 => TraceEventKind::FaultDuplicate {
                extra: SimDuration::from_millis(a),
            },
            4 => TraceEventKind::FaultDelay {
                extra: SimDuration::from_millis(a),
            },
            5 => TraceEventKind::TimerSet {
                node: c,
                token: a,
                delay: SimDuration::from_millis(b),
            },
            6 => TraceEventKind::TimerFire { node: c, token: a },
            7 => TraceEventKind::NodeStart {
                node: c,
                generation: a,
            },
            8 => TraceEventKind::NodeStop { node: c },
            9 => TraceEventKind::NodeKill { node: c },
            10 => TraceEventKind::NodeCrash { node: c },
            11 => TraceEventKind::NodeUpgrade { node: c },
            12 => TraceEventKind::NodeRestartDue { node: c },
            13 => TraceEventKind::FaultAction {
                kind: FaultKind::Partition(a as NodeId, b as NodeId),
            },
            14 => TraceEventKind::FaultAction {
                kind: FaultKind::Heal(a as NodeId, b as NodeId),
            },
            15 => TraceEventKind::FaultAction {
                kind: FaultKind::HealAll,
            },
            16 => TraceEventKind::FaultAction {
                kind: FaultKind::Crash(c),
            },
            17 => TraceEventKind::FaultAction {
                kind: FaultKind::Restart(c),
            },
            18 => TraceEventKind::StorageFlush {
                host: HostId::from_index(a as u32),
            },
            19 => TraceEventKind::StorageCrash {
                host: HostId::from_index(a as u32),
                at_risk: c,
            },
            20 => TraceEventKind::ClientRequest {
                client: a,
                node: b as NodeId,
                bytes: c,
            },
            21 => TraceEventKind::ClientResponse {
                client: a,
                bytes: c,
            },
            22 => TraceEventKind::Observation { node: None },
            24 => TraceEventKind::NodeDowngrade { node: c },
            _ => TraceEventKind::Observation { node: Some(c) },
        }
    }
}

/// Client endpoints are flagged with the top bit; client ids are sequential
/// counters, so the bit can never collide with a real id.
const CLIENT_BIT: u64 = 1 << 63;

#[inline(always)]
fn pack_endpoint(endpoint: Endpoint) -> u64 {
    match endpoint {
        Endpoint::Node(n) => n as u64,
        Endpoint::Client(c) => c | CLIENT_BIT,
    }
}

fn unpack_endpoint(packed: u64) -> Endpoint {
    if packed & CLIENT_BIT != 0 {
        Endpoint::Client(packed & !CLIENT_BIT)
    } else {
        Endpoint::Node(packed as NodeId)
    }
}

/// Derives the structural token of one packed event: the tag byte mixed with
/// the identity payloads only. Timing payloads (delays, durations), byte
/// counts, and generation counters are deliberately excluded so the token is
/// invariant under wall-clock jitter within the same logical schedule.
#[inline(always)]
fn structural_token(packed: &PackedEvent) -> u64 {
    let (x, y) = match packed.tag {
        // Message send/deliver/drop and partition/heal carry two endpoints
        // or node ids in (a, b); the byte count in c is not structural.
        0 | 1 | 2 | 13 | 14 => (packed.a, packed.b),
        // Duplicate/delay payloads are pure timing.
        3 | 4 => (0, 0),
        // Timer set/fire: token + node; the delay in b is timing.
        5 | 6 => (packed.a, packed.c as u64),
        // NodeStart carries a generation counter in a — excluded.
        7 => (packed.c as u64, 0),
        // Node lifecycle and fault crash/restart: the node alone.
        8..=12 | 16 | 17 | 24 => (packed.c as u64, 0),
        // Storage flush/crash: the host; at-risk byte count is not identity.
        18 | 19 => (packed.a, 0),
        // Client request names both the client and the target node.
        20 => (packed.a, packed.b),
        // Client response: the client; bytes excluded.
        21 => (packed.a, 0),
        // Observations: the optional node in c (0 for the anonymous form).
        _ => (packed.c as u64, 0),
    };
    let mut h = (packed.tag as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = mix(h ^ x);
    mix(h ^ y)
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer, the standard choice
/// for hashing small fixed tuples without tables or allocation.
#[inline(always)]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEventKind::MessageSend { from, to, bytes } => {
                write!(f, "send {from}->{to} {bytes}B")
            }
            TraceEventKind::MessageDeliver { from, to, bytes } => {
                write!(f, "deliver {from}->{to} {bytes}B")
            }
            TraceEventKind::FaultDrop { from, to } => write!(f, "fault-drop {from}->{to}"),
            TraceEventKind::FaultDuplicate { extra } => write!(f, "fault-duplicate +{extra}"),
            TraceEventKind::FaultDelay { extra } => write!(f, "fault-delay +{extra}"),
            TraceEventKind::TimerSet { node, token, delay } => {
                write!(f, "timer-set node-{node} token={token} +{delay}")
            }
            TraceEventKind::TimerFire { node, token } => {
                write!(f, "timer-fire node-{node} token={token}")
            }
            TraceEventKind::NodeStart { node, generation } => {
                write!(f, "node-start node-{node} gen={generation}")
            }
            TraceEventKind::NodeStop { node } => write!(f, "node-stop node-{node}"),
            TraceEventKind::NodeKill { node } => write!(f, "node-kill node-{node}"),
            TraceEventKind::NodeCrash { node } => write!(f, "node-crash node-{node}"),
            TraceEventKind::NodeUpgrade { node } => write!(f, "install node-{node}"),
            TraceEventKind::NodeDowngrade { node } => write!(f, "downgrade node-{node}"),
            TraceEventKind::NodeRestartDue { node } => write!(f, "restart-due node-{node}"),
            TraceEventKind::FaultAction { kind } => write!(f, "fault {kind}"),
            TraceEventKind::StorageFlush { host } => {
                write!(f, "storage-flush host#{}", host.index())
            }
            TraceEventKind::StorageCrash { host, at_risk } => {
                write!(f, "storage-crash host#{} {at_risk}B at risk", host.index())
            }
            TraceEventKind::ClientRequest {
                client,
                node,
                bytes,
            } => write!(f, "client-request client-{client}->node-{node} {bytes}B"),
            TraceEventKind::ClientResponse { client, bytes } => {
                write!(f, "client-response client-{client} {bytes}B")
            }
            TraceEventKind::Observation { node } => match node {
                Some(n) => write!(f, "observation node-{n}"),
                None => write!(f, "observation"),
            },
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequential id, starting at 1. Id 0 means "no event" and is only ever
    /// a parent (root events have parent 0).
    pub id: u64,
    /// Id of the causal parent: the event whose processing produced this one.
    pub parent: u64,
    /// Simulated time of the event.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} @{} <-#{} {}",
            self.id, self.time, self.parent, self.kind
        )
    }
}

/// The in-ring event representation: 40 bytes instead of the 64 a full
/// [`TraceEvent`] takes, and no stored id — an event's id is implied by its
/// slot and the write counter, so the hot path stores five scalars and
/// nothing else. [`TraceBuffer::get`] rebuilds the full event on demand.
#[derive(Debug, Clone, Copy)]
struct PackedEvent {
    parent: u64,
    time_ms: u64,
    a: u64,
    b: u64,
    c: u32,
    tag: u8,
}

/// The placeholder filling unwritten ring slots; slots outside the live id
/// range are never exposed (see [`TraceBuffer::get`]), so its content only
/// has to be valid, not meaningful.
const PLACEHOLDER: PackedEvent = PackedEvent {
    parent: 0,
    time_ms: 0,
    a: 0,
    b: 0,
    c: 0,
    tag: 22,
};

/// The fixed-capacity ring of recorded events.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    config: TraceConfig,
    /// Ring storage, prefilled with placeholder events at construction: the
    /// event with id `i` lives at `(i - 1) % capacity`, because ids are
    /// assigned sequentially and slots are overwritten in the same
    /// sequential order.
    events: Vec<PackedEvent>,
    /// The slot the next event lands in — tracks `(next_id - 1) % capacity`
    /// by wrapping increments, keeping the per-record hot path free of
    /// integer division and of a filled-yet? branch.
    cursor: usize,
    /// Id the next recorded event will get; ids start at 1.
    next_id: u64,
}

impl TraceBuffer {
    /// Creates an empty buffer; the ring is fully allocated (and prefilled)
    /// up front so recording never allocates or branches on fill level.
    pub fn new(config: TraceConfig) -> Self {
        let config = config.normalized();
        TraceBuffer {
            config,
            events: vec![PLACEHOLDER; config.capacity],
            cursor: 0,
            next_id: 1,
        }
    }

    /// Rewinds the buffer to its freshly-constructed state without touching
    /// the ring storage. Stale slot contents are unreachable afterwards:
    /// every accessor derives liveness from `next_id`, and slots are
    /// overwritten in id order before an id that maps to them is ever handed
    /// out again. Performs no allocation — the arena half of `Sim::reset`.
    pub(crate) fn reset(&mut self) {
        self.cursor = 0;
        self.next_id = 1;
    }

    /// The configuration the buffer was created with.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Makes this buffer byte-identical to `src`. Slots are `Copy`, so when
    /// both rings share a capacity this is a `memcpy` into retained storage;
    /// a capacity change reallocates (cold — only when the config changed
    /// between snapshot and restore).
    pub(crate) fn copy_from(&mut self, src: &TraceBuffer) {
        self.config = src.config;
        self.events.clone_from(&src.events);
        self.cursor = src.cursor;
        self.next_id = src.next_id;
    }

    /// Total events recorded (including those since evicted by ring wrap).
    pub fn events_recorded(&self) -> u64 {
        self.next_id - 1
    }

    /// Events evicted by ring wrap.
    pub fn events_dropped(&self) -> u64 {
        self.events_recorded().saturating_sub(self.live())
    }

    /// How many events are still live in the ring.
    fn live(&self) -> u64 {
        self.events_recorded().min(self.config.capacity as u64)
    }

    /// Records one event and returns its id. This is the hot path: one slot
    /// store plus cursor/id bookkeeping, nothing else. Public so tooling can
    /// build standalone buffers (e.g. coverage-signature tests); the
    /// simulator only ever exposes its own buffer immutably.
    #[inline(always)]
    pub fn record(&mut self, time: SimTime, parent: u64, kind: TraceEventKind) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let (tag, a, b, c) = kind.pack();
        // `cursor` is always in-bounds (it wraps at `events.len()`), but the
        // optimizer cannot prove that; `get_mut` keeps the check without a
        // panic path in the hot loop.
        if let Some(slot) = self.events.get_mut(self.cursor) {
            *slot = PackedEvent {
                parent,
                time_ms: time.as_millis(),
                a,
                b,
                c,
                tag,
            };
        }
        self.cursor += 1;
        if self.cursor == self.config.capacity {
            self.cursor = 0;
        }
        id
    }

    /// The anchor parent for an observation: the last live event touching
    /// `node` if one exists, otherwise the latest event. Runs once per
    /// failing case (never in the record hot path), so it scans the ring
    /// newest-first instead of maintaining a per-record side table.
    pub(crate) fn anchor_for(&self, node: Option<NodeId>) -> u64 {
        let last = self.next_id - 1;
        let Some(n) = node else { return last };
        let first = self.next_id - self.live();
        (first..self.next_id)
            .rev()
            .find(|&id| self.get(id).is_some_and(|e| e.kind.node() == Some(n)))
            .unwrap_or(last)
    }

    /// The event with id `id`, if it is still live in the ring, rebuilt
    /// from its packed slot.
    pub fn get(&self, id: u64) -> Option<TraceEvent> {
        if id == 0 || id >= self.next_id {
            return None;
        }
        if self.next_id - id > self.live() {
            return None; // Evicted by ring wrap.
        }
        let packed = self
            .events
            .get(((id - 1) % self.config.capacity as u64) as usize)?;
        Some(TraceEvent {
            id,
            parent: packed.parent,
            time: SimTime::from_millis(packed.time_ms),
            kind: TraceEventKind::unpack(packed.tag, packed.a, packed.b, packed.c),
        })
    }

    /// The live events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        let first = self.next_id - self.live();
        (first..self.next_id).filter_map(move |id| self.get(id))
    }

    /// Folds the structural identity of every live event, oldest first, into
    /// `visit`: one token per event, derived only from the event's kind and
    /// the endpoints, nodes, hosts, and clients it touches — never from
    /// times, delays, payload sizes, or generation counters. Two executions
    /// that perform the same logical steps therefore yield the same token
    /// stream even when their timings differ, which is what makes the stream
    /// usable as a coverage signal over the schedule space.
    ///
    /// Allocation-free: the walk reads packed ring slots in place, so it can
    /// run once per case inside a campaign hot loop.
    pub fn fold_structural(&self, mut visit: impl FnMut(u64)) {
        let first = self.next_id - self.live();
        let capacity = self.config.capacity as u64;
        for id in first..self.next_id {
            if let Some(packed) = self.events.get(((id - 1) % capacity) as usize) {
                visit(structural_token(packed));
            }
        }
    }

    /// Extracts the bounded causal slice anchored at `anchor`: the lineage
    /// chain walking parents from the anchor (oldest first, so the chain
    /// *ends* at the anchor), plus the trailing window of events.
    pub fn slice(&self, anchor: u64) -> TraceSlice {
        let mut lineage = Vec::with_capacity(self.config.lineage_limit);
        let mut id = anchor;
        while lineage.len() < self.config.lineage_limit {
            let Some(event) = self.get(id) else { break };
            id = event.parent;
            lineage.push(event);
        }
        lineage.reverse();
        let tail_len = (self.config.tail_events as u64).min(self.live());
        let tail: Vec<TraceEvent> = (self.next_id - tail_len..self.next_id)
            .filter_map(|id| self.get(id))
            .collect();
        TraceSlice {
            lineage,
            tail,
            events_recorded: self.events_recorded(),
            events_dropped: self.events_dropped(),
        }
    }
}

/// A bounded causal slice extracted from a [`TraceBuffer`], small enough to
/// attach to a failure report and cheap to clone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSlice {
    /// The causal chain from the oldest still-live ancestor down to the
    /// anchor event (the violating observation), oldest first.
    pub lineage: Vec<TraceEvent>,
    /// The last [`TraceConfig::tail_events`] events recorded, oldest first.
    pub tail: Vec<TraceEvent>,
    /// Total events the buffer recorded for the run.
    pub events_recorded: u64,
    /// Events the ring evicted; a nonzero count means the lineage chain may
    /// be truncated at its old end.
    pub events_dropped: u64,
}

impl TraceSlice {
    /// `true` if the slice carries no events at all.
    pub fn is_empty(&self) -> bool {
        self.lineage.is_empty() && self.tail.is_empty()
    }

    /// Renders the slice as a human-readable timeline.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events recorded, {} dropped by ring wrap",
            self.events_recorded, self.events_dropped
        );
        let _ = writeln!(out, "lineage (cause -> violation):");
        for event in &self.lineage {
            let _ = writeln!(out, "  {event}");
        }
        let _ = writeln!(out, "tail (last {} events):", self.tail.len());
        for event in &self.tail {
            let _ = writeln!(out, "  {event}");
        }
        out
    }

    /// Exports the slice in Chrome `trace_event` JSON array format, loadable
    /// by `chrome://tracing` / Perfetto. Lineage events come first; tail
    /// events already present in the lineage are not repeated.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let mut emit = |out: &mut String, event: &TraceEvent, track: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            // Event kinds render from numbers and fixed words only, so the
            // name needs no JSON escaping.
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":0,\"tid\":{},\
                 \"cat\":\"{}\",\"args\":{{\"id\":{},\"parent\":{}}}}}",
                event.kind,
                event.time.as_millis() * 1000,
                event.kind.node().unwrap_or(0),
                track,
                event.id,
                event.parent
            );
        };
        for event in &self.lineage {
            emit(&mut out, event, "lineage");
        }
        for event in &self.tail {
            if self.lineage.iter().any(|l| l.id == event.id) {
                continue;
            }
            emit(&mut out, event, "tail");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(n: NodeId) -> TraceEventKind {
        TraceEventKind::TimerFire { node: n, token: 0 }
    }

    #[test]
    fn ids_are_sequential_and_parents_walk() {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        let a = buf.record(SimTime::ZERO, 0, kind(0));
        let b = buf.record(SimTime::from_millis(1), a, kind(1));
        let c = buf.record(SimTime::from_millis(2), b, kind(0));
        assert_eq!((a, b, c), (1, 2, 3));
        let slice = buf.slice(c);
        let ids: Vec<u64> = slice.lineage.iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec![a, b, c],
            "lineage is oldest-first, ends at anchor"
        );
        assert_eq!(slice.events_recorded, 3);
        assert_eq!(slice.events_dropped, 0);
    }

    #[test]
    fn structural_fold_ignores_timing_payloads_but_not_identity() {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        buf.record(
            SimTime::ZERO,
            0,
            TraceEventKind::TimerSet {
                node: 2,
                token: 7,
                delay: SimDuration::from_millis(100),
            },
        );
        let mut base = Vec::new();
        buf.fold_structural(|t| base.push(t));
        assert_eq!(base.len(), 1);

        // Same logical event at a different delay folds identically.
        let mut jittered = TraceBuffer::new(TraceConfig::default());
        jittered.record(
            SimTime::from_millis(9),
            0,
            TraceEventKind::TimerSet {
                node: 2,
                token: 7,
                delay: SimDuration::from_millis(500),
            },
        );
        let mut tokens = Vec::new();
        jittered.fold_structural(|t| tokens.push(t));
        assert_eq!(tokens, base, "delay and timestamp are not structural");

        // A different node is a different token.
        let mut other = TraceBuffer::new(TraceConfig::default());
        other.record(
            SimTime::ZERO,
            0,
            TraceEventKind::TimerSet {
                node: 3,
                token: 7,
                delay: SimDuration::from_millis(100),
            },
        );
        let mut distinct = Vec::new();
        other.fold_structural(|t| distinct.push(t));
        assert_ne!(distinct, base, "node identity is structural");
    }

    #[test]
    fn ring_wrap_evicts_oldest_and_counts_drops() {
        let mut buf = TraceBuffer::new(TraceConfig {
            capacity: 4,
            tail_events: 4,
            lineage_limit: 8,
        });
        let mut last = 0;
        for i in 0..10 {
            last = buf.record(SimTime::from_millis(i), last, kind(0));
        }
        assert_eq!(buf.events_recorded(), 10);
        assert_eq!(buf.events_dropped(), 6);
        assert!(buf.get(6).is_none(), "evicted event is gone");
        assert!(buf.get(7).is_some(), "live window survives");
        let slice = buf.slice(last);
        // The chain breaks where the ring wrapped; only live events appear.
        let ids: Vec<u64> = slice.lineage.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
        assert_eq!(slice.tail.len(), 4);
    }

    #[test]
    fn lineage_limit_caps_the_walk() {
        let mut buf = TraceBuffer::new(TraceConfig {
            capacity: 64,
            tail_events: 2,
            lineage_limit: 3,
        });
        let mut last = 0;
        for i in 0..10 {
            last = buf.record(SimTime::from_millis(i), last, kind(0));
        }
        let slice = buf.slice(last);
        let ids: Vec<u64> = slice.lineage.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![8, 9, 10], "nearest ancestors win");
    }

    #[test]
    fn observation_anchors_to_the_implicated_node() {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        buf.record(SimTime::ZERO, 0, kind(0));
        let on_node_1 = buf.record(SimTime::from_millis(1), 0, kind(1));
        buf.record(SimTime::from_millis(2), 0, kind(0));
        assert_eq!(buf.anchor_for(Some(1)), on_node_1);
        assert_eq!(buf.anchor_for(None), 3, "no hint anchors to the latest");
        assert_eq!(buf.anchor_for(Some(9)), 3, "unknown node anchors to latest");
    }

    #[test]
    fn renders_are_deterministic_and_json_is_balanced() {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        let a = buf.record(
            SimTime::from_millis(5),
            0,
            TraceEventKind::MessageSend {
                from: Endpoint::Node(0),
                to: Endpoint::Node(1),
                bytes: 12,
            },
        );
        buf.record(
            SimTime::from_millis(6),
            a,
            TraceEventKind::Observation { node: Some(1) },
        );
        let slice = buf.slice(2);
        assert_eq!(slice.render_timeline(), buf.slice(2).render_timeline());
        assert!(slice.render_timeline().contains("send node-0->node-1 12B"));
        let json = slice.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert_eq!(json.matches("{\"name\"").count(), 2, "{json}");
        assert!(json.contains("\"ts\":5000"), "{json}");
    }
}
