//! # dup-simnet — deterministic distributed-system simulation substrate
//!
//! This crate is the simulation analog of the containerized test environment
//! used by DUPTester in *Understanding and Detecting Software Upgrade
//! Failures in Distributed Systems* (SOSP 2021, §6.1.1). It provides:
//!
//! - a millisecond-resolution virtual clock and a deterministic
//!   discrete-event loop ([`Sim`]);
//! - node slots with container-like lifecycle — start, graceful stop, crash,
//!   and *upgrade* (replace the process, keep the host's persistent storage)
//!   ([`Sim::install`]);
//! - per-host persistent storage that outlives process generations
//!   ([`HostStorage`]), reproducing DUPTester's shared host directories;
//! - a simple network model with latency jitter, message loss, and
//!   partitions ([`Network`]);
//! - deterministic fault injection — seeded per-message drop / duplicate /
//!   delay-spike / reorder plus scheduled partitions and crash-then-restart
//!   ([`FaultPlan`], [`Sim::install_fault_plan`]);
//! - a crash-durability model: writes buffer until an explicit flush, and a
//!   seeded crash materializer drops or tears the unflushed tail on every
//!   crash ([`Durability`], [`Ctx::flush`]), with state-triggered
//!   [`CrashPoint`]s that kill hosts mid-upgrade or between a write and its
//!   flush;
//! - panic containment: a panicking process crashes *its node*, not the
//!   simulation — the analog of a JVM dying inside its container;
//! - captured, queryable logs ([`LogBuffer`]) for the failure oracle;
//! - an allocation-free causal trace recorder ([`Sim::enable_trace`],
//!   [`TraceBuffer`]) whose bounded slices reconstruct the chain of
//!   messages, timers, faults, and crashes behind a violating observation.
//!
//! Everything is deterministic in the root seed, which is what makes
//! Finding 11 of the paper (≈89% of upgrade failures are deterministic)
//! testable: replaying the same seed replays the same failure.
//!
//! # Examples
//!
//! ```
//! use dup_simnet::{Sim, SimDuration, Process, Ctx, StepResult, Endpoint};
//! use bytes::Bytes;
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
//!         ctx.info("up");
//!         Ok(())
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, p: &[u8]) -> StepResult {
//!         ctx.send(from, Bytes::copy_from_slice(p));
//!         Ok(())
//!     }
//!     fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult { Ok(()) }
//! }
//!
//! let mut sim = Sim::new(42);
//! let n = sim.add_node("host-0", "v1.0", Box::new(Echo));
//! sim.start_node(n).unwrap();
//! sim.run_for(SimDuration::from_millis(10));
//! let resp = sim.rpc(n, Bytes::from_static(b"hi"), SimDuration::from_secs(1));
//! assert_eq!(resp.as_deref(), Some(&b"hi"[..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod log;
mod net;
mod node;
mod process;
mod rng;
mod sim;
mod storage;
mod time;
mod trace;

pub use crate::faults::{
    CrashPoint, CrashPointKind, FaultKind, FaultPlan, ScheduledFault, FAULT_CRASH_REASON,
};
pub use crate::log::{LogBuffer, LogLevel, LogMark, LogRecord};
pub use crate::net::Network;
pub use crate::node::{NodeMetrics, NodeStatus};
pub use crate::process::{Ctx, Endpoint, Fatal, NodeId, Process, StepResult};
pub use crate::rng::SimRng;
pub use crate::sim::{ClientHandle, Sim, SimError, SimSnapshot};
pub use crate::storage::{Durability, HostId, HostStorage, StorageMap};
pub use crate::time::{SimDuration, SimTime};
pub use crate::trace::{TraceBuffer, TraceConfig, TraceEvent, TraceEventKind, TraceSlice};
