//! The process abstraction: what runs "inside a container".
//!
//! A [`Process`] is the versioned software under test. The simulator calls
//! its handlers in response to events; handlers interact with the world only
//! through the [`Ctx`] they are given (sending messages, setting timers,
//! reading and writing host storage, logging). A handler that returns
//! [`Fatal`] — or that panics — crashes the node, which is the simulation
//! analog of a JVM process dying inside its container.

use crate::log::{LogBuffer, LogLevel, LogRecord};
use crate::rng::SimRng;
use crate::storage::HostStorage;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use std::fmt;

/// Identifier of a node slot in the simulation.
pub type NodeId = u32;

/// A message source or destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A simulated node.
    Node(NodeId),
    /// An external client (one id per outstanding request issued by the harness).
    Client(u64),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Node(n) => write!(f, "node-{n}"),
            Endpoint::Client(c) => write!(f, "client-{c}"),
        }
    }
}

/// An unrecoverable error raised by a process handler.
///
/// Returning `Fatal` crashes the node: the slot transitions to
/// [`crate::NodeStatus::Crashed`], a FATAL record is logged, and the process
/// state is discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fatal {
    /// Human-readable description (becomes the FATAL log message).
    pub message: String,
}

impl Fatal {
    /// Creates a fatal error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Fatal {
            message: message.into(),
        }
    }
}

impl fmt::Display for Fatal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fatal: {}", self.message)
    }
}

impl std::error::Error for Fatal {}

/// Result type for process handlers.
pub type StepResult = Result<(), Fatal>;

/// Side effects a handler requests; applied by the simulator after the
/// handler returns (so a crashing handler's effects are still delivered,
/// matching real systems where buffers may already have been flushed).
#[derive(Debug)]
pub(crate) enum Effect {
    Send { to: Endpoint, payload: Bytes },
    SetTimer { delay: SimDuration, token: u64 },
    StopSelf,
}

/// The handler-side view of the simulation world.
///
/// A `Ctx` borrows exactly the per-node state a handler may touch: its host's
/// storage, its RNG stream, the global log buffer, and an effect queue.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) generation: u64,
    pub(crate) storage: &'a mut HostStorage,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) logs: &'a mut LogBuffer,
    pub(crate) effects: &'a mut Vec<Effect>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This node's endpoint, for use as a reply address.
    pub fn me(&self) -> Endpoint {
        Endpoint::Node(self.node)
    }

    /// Sends `payload` to `to`; delivery latency follows the network model.
    pub fn send(&mut self, to: Endpoint, payload: Bytes) {
        self.effects.push(Effect::Send { to, payload });
    }

    /// Arms a timer that fires `delay` from now, delivering `token` to
    /// [`Process::on_timer`]. Timers do not survive restarts or upgrades.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::SetTimer { delay, token });
    }

    /// Requests a graceful stop of this node after the current handler.
    pub fn stop_self(&mut self) {
        self.effects.push(Effect::StopSelf);
    }

    /// This node's persistent storage (survives restarts and upgrades).
    pub fn storage(&mut self) -> &mut HostStorage {
        self.storage
    }

    /// Read-only view of this node's persistent storage.
    pub fn storage_ref(&self) -> &HostStorage {
        self.storage
    }

    /// Flushes one file to durable storage (the `fsync(2)` analog).
    /// Equivalent to `ctx.storage().flush(path)`; a no-op under
    /// [`crate::Durability::Strict`], where everything is already durable.
    pub fn flush(&mut self, path: &str) {
        self.storage.flush(path);
    }

    /// Flushes every file this host has written (the `sync(2)` analog).
    pub fn flush_all(&mut self) {
        self.storage.flush_all();
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Emits a log record attributed to this node.
    pub fn log(&mut self, level: LogLevel, message: impl Into<String>) {
        self.logs.push(LogRecord {
            time: self.now,
            node: Some(self.node),
            generation: self.generation,
            level,
            message: message.into(),
        });
    }

    /// Shorthand for an INFO record.
    pub fn info(&mut self, message: impl Into<String>) {
        self.log(LogLevel::Info, message);
    }

    /// Shorthand for a WARN record.
    pub fn warn(&mut self, message: impl Into<String>) {
        self.log(LogLevel::Warn, message);
    }

    /// Shorthand for an ERROR record.
    pub fn error(&mut self, message: impl Into<String>) {
        self.log(LogLevel::Error, message);
    }
}

/// The software that runs on a node.
///
/// Implementations are state machines: all I/O goes through the [`Ctx`].
/// Any handler may return [`Fatal`] to crash the node; a panic inside a
/// handler is caught by the simulator and treated identically.
///
/// The `Any` supertrait (and thus `'static`) exists for snapshot-and-fork:
/// [`Process::fork`] captures a node's in-memory state into a
/// [`crate::SimSnapshot`], and [`Process::restore_from`] writes a captured
/// state back into a live process of the same concrete type without
/// reallocating it. Both have no-op defaults, so ordinary (non-snapshotted)
/// processes implement only the three handlers.
pub trait Process: std::any::Any {
    /// Called once when the node starts (fresh start or post-upgrade restart).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult;

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, payload: &[u8]) -> StepResult;

    /// Called when a timer armed by this process generation fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> StepResult;

    /// Called on graceful shutdown (full-stop upgrades stop nodes gracefully);
    /// the default does nothing. Crashes skip this hook.
    fn on_shutdown(&mut self, _ctx: &mut Ctx<'_>) -> StepResult {
        Ok(())
    }

    /// Deep-copies this process for a [`crate::SimSnapshot`]. Returning
    /// `None` (the default) marks the process unsnapshottable, which makes
    /// [`crate::Sim::snapshot`] fail soft — callers then fall back to
    /// re-executing from scratch. Snapshot-aware processes implement this as
    /// `Some(Box::new(self.clone()))`.
    fn fork(&self) -> Option<Box<dyn Process>> {
        None
    }

    /// Restores this process in place from `src`, reusing existing heap
    /// capacity where possible. Returns `false` (the default) when the
    /// states are not the same concrete type or in-place restore is
    /// unsupported; the simulator then falls back to [`Process::fork`]`()`
    /// on the snapshot side.
    fn restore_from(&mut self, _src: &dyn Process) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        assert_eq!(Endpoint::Node(3).to_string(), "node-3");
        assert_eq!(Endpoint::Client(9).to_string(), "client-9");
    }

    #[test]
    fn fatal_formats_message() {
        let f = Fatal::new("checkpoint missing required field 'id'");
        assert_eq!(
            f.to_string(),
            "fatal: checkpoint missing required field 'id'"
        );
    }

    #[test]
    fn ctx_accumulates_effects() {
        let mut storage = HostStorage::new();
        let mut rng = SimRng::new(1);
        let mut logs = LogBuffer::new();
        let mut effects = Vec::new();
        let mut ctx = Ctx {
            now: SimTime::from_millis(10),
            node: 2,
            generation: 1,
            storage: &mut storage,
            rng: &mut rng,
            logs: &mut logs,
            effects: &mut effects,
        };
        ctx.send(Endpoint::Node(0), Bytes::from_static(b"hi"));
        ctx.set_timer(SimDuration::from_secs(1), 7);
        ctx.stop_self();
        ctx.info("hello");
        assert_eq!(ctx.me(), Endpoint::Node(2));
        assert_eq!(ctx.node_id(), 2);
        assert_eq!(ctx.now().as_millis(), 10);
        assert_eq!(effects.len(), 3);
        assert_eq!(logs.len(), 1);
    }
}
