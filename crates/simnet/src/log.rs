//! Captured simulation logs.
//!
//! Every node writes through [`crate::Ctx::log`] into a global, time-ordered
//! buffer. DUPTester's failure oracle (paper §6.1.1) treats error log
//! messages, exceptions, and crashes as indications of an upgrade failure, so
//! the buffer offers query helpers over levels and substrings.

use crate::time::SimTime;
use std::fmt;

/// Severity of a log record, mirroring the levels the studied systems use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogLevel {
    /// Verbose diagnostics; never consulted by the oracle.
    Debug,
    /// Normal operational messages.
    Info,
    /// Suspicious but non-fatal conditions.
    Warn,
    /// Failed operations; the oracle flags these.
    Error,
    /// Conditions that terminate the node; the oracle flags these.
    Fatal,
}

impl LogLevel {
    /// Number of levels (size of per-level count tables).
    pub const COUNT: usize = 5;

    /// The level as a dense index (`Debug == 0` … `Fatal == 4`).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogLevel::Debug => "DEBUG",
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
            LogLevel::Fatal => "FATAL",
        };
        f.write_str(s)
    }
}

/// One captured log line.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// When the line was emitted.
    pub time: SimTime,
    /// Emitting node id, or `None` for harness-level records.
    pub node: Option<u32>,
    /// Node generation (incremented on every restart/upgrade of the slot).
    pub generation: u64,
    /// Severity.
    pub level: LogLevel,
    /// Message text.
    pub message: String,
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(
                f,
                "[{} n{}g{} {}] {}",
                self.time, n, self.generation, self.level, self.message
            ),
            None => write!(f, "[{} sim {}] {}", self.time, self.level, self.message),
        }
    }
}

/// A cursor into a [`LogBuffer`]: the buffer length and per-level counts at
/// the moment the mark was taken.
///
/// The buffer is append-only, so a mark stays valid forever and lets
/// consumers (the failure oracle, harness phases) scan only the records
/// appended since — and answer "any ERROR since the mark?" in O(1) by
/// differencing the count snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogMark {
    index: usize,
    counts: [usize; LogLevel::COUNT],
}

impl LogMark {
    /// The record index this mark points at (== buffer length at mark time).
    pub fn index(self) -> usize {
        self.index
    }
}

/// An append-only, time-ordered buffer of log records.
///
/// Per-level counts are maintained on push, so level queries
/// ([`LogBuffer::has_at_or_above`], [`LogBuffer::count_at_or_above`]) are
/// O(1) instead of a scan — they run inside oracle checks on every case.
#[derive(Debug, Default)]
pub struct LogBuffer {
    records: Vec<LogRecord>,
    level_counts: [usize; LogLevel::COUNT],
}

impl LogBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the buffer while keeping the record vec's capacity — the
    /// log half of `Sim::reset`. Observationally identical to a fresh
    /// buffer afterwards.
    pub(crate) fn reset(&mut self) {
        self.records.clear();
        self.level_counts = [0; LogLevel::COUNT];
    }

    /// Appends a record.
    pub fn push(&mut self, record: LogRecord) {
        self.level_counts[record.level.index()] += 1;
        self.records.push(record);
    }

    /// Makes this buffer byte-identical to `src`, reusing retained record
    /// capacity (element-wise `clone_from`, so message strings keep their
    /// allocations when they fit). Used by `Sim::snapshot`/`Sim::restore`
    /// in both directions.
    pub(crate) fn copy_from(&mut self, src: &LogBuffer) {
        self.records.truncate(src.records.len());
        for (dst, s) in self.records.iter_mut().zip(&src.records) {
            dst.time = s.time;
            dst.node = s.node;
            dst.generation = s.generation;
            dst.level = s.level;
            dst.message.clone_from(&s.message);
        }
        for s in &src.records[self.records.len()..] {
            self.records.push(s.clone());
        }
        self.level_counts = src.level_counts;
    }

    /// Returns all records in emission order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Returns the number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns records at `level` or above.
    pub fn at_or_above(&self, level: LogLevel) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(move |r| r.level >= level)
    }

    /// Returns records whose message contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a LogRecord> {
        self.records
            .iter()
            .filter(move |r| r.message.contains(needle))
    }

    /// Number of records at `level` or above. O(1).
    pub fn count_at_or_above(&self, level: LogLevel) -> usize {
        self.level_counts[level.index()..].iter().sum()
    }

    /// Returns `true` if any record at `level` or above exists. O(1).
    pub fn has_at_or_above(&self, level: LogLevel) -> bool {
        self.count_at_or_above(level) > 0
    }

    /// Takes a mark at the current buffer position.
    pub fn mark(&self) -> LogMark {
        LogMark {
            index: self.records.len(),
            counts: self.level_counts,
        }
    }

    /// The records appended since `mark` was taken.
    pub fn records_since(&self, mark: LogMark) -> &[LogRecord] {
        &self.records[mark.index..]
    }

    /// Number of records at `level` or above appended since `mark`. O(1).
    pub fn count_at_or_above_since(&self, level: LogLevel, mark: LogMark) -> usize {
        self.level_counts[level.index()..]
            .iter()
            .zip(&mark.counts[level.index()..])
            .map(|(now, then)| now - then)
            .sum()
    }

    /// Returns `true` if any record at `level` or above was appended since
    /// `mark`. O(1).
    pub fn has_at_or_above_since(&self, level: LogLevel, mark: LogMark) -> bool {
        self.count_at_or_above_since(level, mark) > 0
    }

    /// Returns records emitted at or after `since`.
    pub fn since(&self, since: SimTime) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(move |r| r.time >= since)
    }

    /// Renders the whole buffer, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(level: LogLevel, msg: &str, t: u64) -> LogRecord {
        LogRecord {
            time: SimTime::from_millis(t),
            node: Some(1),
            generation: 0,
            level,
            message: msg.to_string(),
        }
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(LogLevel::Fatal > LogLevel::Error);
        assert!(LogLevel::Error > LogLevel::Warn);
        assert!(LogLevel::Warn > LogLevel::Info);
        assert!(LogLevel::Info > LogLevel::Debug);
    }

    #[test]
    fn filters_by_level_and_pattern() {
        let mut buf = LogBuffer::new();
        buf.push(rec(LogLevel::Info, "starting up", 0));
        buf.push(rec(LogLevel::Error, "failed to parse fsimage", 10));
        buf.push(rec(LogLevel::Fatal, "aborting", 20));

        assert_eq!(buf.at_or_above(LogLevel::Error).count(), 2);
        assert_eq!(buf.matching("fsimage").count(), 1);
        assert!(buf.has_at_or_above(LogLevel::Fatal));
        assert_eq!(buf.since(SimTime::from_millis(10)).count(), 2);
    }

    #[test]
    fn render_is_line_per_record() {
        let mut buf = LogBuffer::new();
        buf.push(rec(LogLevel::Warn, "slow heartbeat", 5));
        let text = buf.render();
        assert!(text.contains("WARN"));
        assert!(text.contains("slow heartbeat"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn empty_buffer_reports_empty() {
        let buf = LogBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert!(!buf.has_at_or_above(LogLevel::Debug));
    }

    #[test]
    fn level_counts_match_scans() {
        let mut buf = LogBuffer::new();
        buf.push(rec(LogLevel::Debug, "d", 0));
        buf.push(rec(LogLevel::Info, "i", 1));
        buf.push(rec(LogLevel::Error, "e1", 2));
        buf.push(rec(LogLevel::Error, "e2", 3));
        buf.push(rec(LogLevel::Fatal, "f", 4));
        for level in [
            LogLevel::Debug,
            LogLevel::Info,
            LogLevel::Warn,
            LogLevel::Error,
            LogLevel::Fatal,
        ] {
            assert_eq!(
                buf.count_at_or_above(level),
                buf.at_or_above(level).count(),
                "{level}"
            );
        }
    }

    #[test]
    fn marks_see_only_appended_records() {
        let mut buf = LogBuffer::new();
        buf.push(rec(LogLevel::Error, "before", 0));
        let mark = buf.mark();
        assert_eq!(mark.index(), 1);
        assert!(buf.records_since(mark).is_empty());
        assert!(!buf.has_at_or_above_since(LogLevel::Error, mark));

        buf.push(rec(LogLevel::Info, "after-1", 1));
        buf.push(rec(LogLevel::Fatal, "after-2", 2));
        let since: Vec<&str> = buf
            .records_since(mark)
            .iter()
            .map(|r| r.message.as_str())
            .collect();
        assert_eq!(since, vec!["after-1", "after-2"]);
        assert_eq!(buf.count_at_or_above_since(LogLevel::Error, mark), 1);
        assert!(buf.has_at_or_above_since(LogLevel::Fatal, mark));
        assert!(!buf.has_at_or_above_since(LogLevel::Error, buf.mark()));
    }
}
