//! Captured simulation logs.
//!
//! Every node writes through [`crate::Ctx::log`] into a global, time-ordered
//! buffer. DUPTester's failure oracle (paper §6.1.1) treats error log
//! messages, exceptions, and crashes as indications of an upgrade failure, so
//! the buffer offers query helpers over levels and substrings.

use crate::time::SimTime;
use std::fmt;

/// Severity of a log record, mirroring the levels the studied systems use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogLevel {
    /// Verbose diagnostics; never consulted by the oracle.
    Debug,
    /// Normal operational messages.
    Info,
    /// Suspicious but non-fatal conditions.
    Warn,
    /// Failed operations; the oracle flags these.
    Error,
    /// Conditions that terminate the node; the oracle flags these.
    Fatal,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogLevel::Debug => "DEBUG",
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
            LogLevel::Fatal => "FATAL",
        };
        f.write_str(s)
    }
}

/// One captured log line.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// When the line was emitted.
    pub time: SimTime,
    /// Emitting node id, or `None` for harness-level records.
    pub node: Option<u32>,
    /// Node generation (incremented on every restart/upgrade of the slot).
    pub generation: u64,
    /// Severity.
    pub level: LogLevel,
    /// Message text.
    pub message: String,
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(
                f,
                "[{} n{}g{} {}] {}",
                self.time, n, self.generation, self.level, self.message
            ),
            None => write!(f, "[{} sim {}] {}", self.time, self.level, self.message),
        }
    }
}

/// An append-only, time-ordered buffer of log records.
#[derive(Debug, Default)]
pub struct LogBuffer {
    records: Vec<LogRecord>,
}

impl LogBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Returns all records in emission order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Returns the number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns records at `level` or above.
    pub fn at_or_above(&self, level: LogLevel) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(move |r| r.level >= level)
    }

    /// Returns records whose message contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a LogRecord> {
        self.records
            .iter()
            .filter(move |r| r.message.contains(needle))
    }

    /// Returns `true` if any record at `level` or above exists.
    pub fn has_at_or_above(&self, level: LogLevel) -> bool {
        self.at_or_above(level).next().is_some()
    }

    /// Returns records emitted at or after `since`.
    pub fn since(&self, since: SimTime) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(move |r| r.time >= since)
    }

    /// Renders the whole buffer, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(level: LogLevel, msg: &str, t: u64) -> LogRecord {
        LogRecord {
            time: SimTime::from_millis(t),
            node: Some(1),
            generation: 0,
            level,
            message: msg.to_string(),
        }
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(LogLevel::Fatal > LogLevel::Error);
        assert!(LogLevel::Error > LogLevel::Warn);
        assert!(LogLevel::Warn > LogLevel::Info);
        assert!(LogLevel::Info > LogLevel::Debug);
    }

    #[test]
    fn filters_by_level_and_pattern() {
        let mut buf = LogBuffer::new();
        buf.push(rec(LogLevel::Info, "starting up", 0));
        buf.push(rec(LogLevel::Error, "failed to parse fsimage", 10));
        buf.push(rec(LogLevel::Fatal, "aborting", 20));

        assert_eq!(buf.at_or_above(LogLevel::Error).count(), 2);
        assert_eq!(buf.matching("fsimage").count(), 1);
        assert!(buf.has_at_or_above(LogLevel::Fatal));
        assert_eq!(buf.since(SimTime::from_millis(10)).count(), 2);
    }

    #[test]
    fn render_is_line_per_record() {
        let mut buf = LogBuffer::new();
        buf.push(rec(LogLevel::Warn, "slow heartbeat", 5));
        let text = buf.render();
        assert!(text.contains("WARN"));
        assert!(text.contains("slow heartbeat"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn empty_buffer_reports_empty() {
        let buf = LogBuffer::new();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert!(!buf.has_at_or_above(LogLevel::Debug));
    }
}
