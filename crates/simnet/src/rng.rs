//! Deterministic, splittable random number generation.
//!
//! Every source of randomness in a simulation is derived from a single `u64`
//! seed. Each node generation and the network jitter model get independent
//! streams, so adding a node or a message never perturbs the random choices
//! seen by unrelated components.

/// A small, fast, deterministic PRNG (SplitMix64 core).
///
/// SplitMix64 passes BigCrush for the 64-bit output function used here and is
/// trivially splittable: deriving a child stream from `(seed, stream_id)`
/// yields statistically independent sequences, which is exactly what the
/// simulator needs for per-node streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point of the underlying mix.
        SimRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derives an independent child stream identified by `stream_id`.
    pub fn split(&self, stream_id: u64) -> SimRng {
        let mut child = SimRng::new(
            self.state
                .wrapping_add(stream_id.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        );
        // Burn one output so adjacent stream ids decorrelate.
        child.next_u64();
        child
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling; bias is < 2^-64 per draw, which is
        // irrelevant for workload generation.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.next_below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_use() {
        let parent = SimRng::new(7);
        let mut c1 = parent.split(3);
        let first = c1.next_u64();

        let mut parent2 = SimRng::new(7);
        parent2.next_u64(); // Consuming from the parent clone...
        let mut c2 = SimRng::new(7).split(3);
        assert_eq!(first, c2.next_u64()); // ...does not change the child stream.
    }

    #[test]
    fn bounded_values_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let v = rng.next_range(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn pick_returns_none_on_empty() {
        let mut rng = SimRng::new(5);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        assert_eq!(rng.pick(&[42u8]), Some(&42));
    }
}
