//! The discrete-event simulator.
//!
//! [`Sim`] owns the clock, the event queue, the node slots, the network, the
//! per-host persistent storage, and the captured logs. All execution is
//! deterministic in the seed: events are ordered by `(time, sequence)` and all
//! randomness is drawn from split streams of one root RNG.

use crate::faults::{
    CrashPointKind, FaultKind, FaultPlan, FaultSnapshot, FaultState, MessageFate,
    FAULT_CRASH_REASON,
};
use crate::log::{LogBuffer, LogLevel, LogRecord};
use crate::net::Network;
use crate::node::{NodeMetrics, NodeSlot, NodeStatus};
use crate::process::{Ctx, Effect, Endpoint, NodeId, Process};
use crate::rng::SimRng;
use crate::storage::{HostId, HostStorage, StorageMap, StorageSnapshot};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceBuffer, TraceConfig, TraceEventKind};
use bytes::Bytes;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Errors reported by the simulation harness API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An operation referenced a node id that was never added.
    UnknownNode(NodeId),
    /// The operation is invalid in the node's current status.
    BadStatus {
        /// The offending node.
        node: NodeId,
        /// Its status at the time of the call.
        status: NodeStatus,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// `run_until_idle` exceeded its event budget (likely a livelock or storm).
    Runaway {
        /// Number of events processed before giving up.
        events: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SimError::BadStatus { node, status, op } => {
                write!(f, "cannot {op} node {node} while {status}")
            }
            SimError::Runaway { events } => {
                write!(f, "simulation did not quiesce after {events} events")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Handle to the responses of one client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientHandle(u64);

#[derive(Debug, Clone)]
enum EventKind {
    Start {
        node: NodeId,
        generation: u64,
    },
    Deliver {
        from: Endpoint,
        to: Endpoint,
        payload: Bytes,
    },
    Timer {
        node: NodeId,
        generation: u64,
        token: u64,
    },
    /// A scheduled fault action: an index into the installed plan's actions,
    /// tagged with the plan epoch so events from a replaced plan are inert.
    Fault {
        action: usize,
        epoch: u64,
    },
    /// A due restart after a crash-point crash: re-queues the node for the
    /// harness if it is still fault-crashed. Epoch-tagged like `Fault`.
    PointRestart {
        node: NodeId,
        epoch: u64,
    },
}

#[derive(Clone)]
struct QueuedEvent {
    time: SimTime,
    seq: u64,
    /// Trace id of the event whose processing enqueued this one (0 when
    /// tracing is disabled or the enqueue was a harness root action).
    cause: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Snapshot of one node slot: everything in [`NodeSlot`] with the live
/// process replaced by a [`Process::fork`]ed copy.
struct NodeSnapshot {
    host: HostId,
    version_label: String,
    process: Option<Box<dyn Process>>,
    status: NodeStatus,
    generation: u64,
    rng: SimRng,
    crash_reason: Option<String>,
    metrics: NodeMetrics,
}

impl NodeSnapshot {
    fn empty() -> Self {
        NodeSnapshot {
            host: HostId::from_index(0),
            version_label: String::new(),
            process: None,
            status: NodeStatus::Idle,
            generation: 0,
            rng: SimRng::new(0),
            crash_reason: None,
            metrics: NodeMetrics::default(),
        }
    }

    /// Writes `src`'s state into this pooled slot. Returns `false` — snapshot
    /// impossible — if the slot holds a live process that does not support
    /// [`Process::fork`].
    fn capture_from(&mut self, src: &NodeSlot) -> bool {
        self.host = src.host;
        self.version_label.clone_from(&src.version_label);
        self.status = src.status;
        self.generation = src.generation;
        self.rng = src.rng.clone();
        self.crash_reason.clone_from(&src.crash_reason);
        self.metrics = src.metrics;
        match src.process.as_deref() {
            Some(live) => {
                // Prefer restoring into the process retained from the last
                // capture (no allocation); fall back to a fresh fork.
                let reused = match self.process.as_deref_mut() {
                    Some(saved) => saved.restore_from(live),
                    None => false,
                };
                if !reused {
                    match live.fork() {
                        Some(forked) => self.process = Some(forked),
                        None => return false,
                    }
                }
            }
            None => self.process = None,
        }
        true
    }
}

/// A resumable snapshot of a [`Sim`]'s complete logical state, produced by
/// [`Sim::snapshot`] and consumed by [`Sim::restore`].
///
/// The buffer is pooled: re-capturing into an existing snapshot
/// ([`Sim::snapshot_into`]) and restoring into a warm simulator both write
/// into retained capacity, so in steady state neither direction touches the
/// allocator. This is what lets a campaign runner execute a shared case
/// prefix once, snapshot, and then fork many seed-divergent suffixes off the
/// same snapshot at ~the cost of a `memcpy`.
pub struct SimSnapshot {
    seed: u64,
    now: SimTime,
    seq: u64,
    /// The event queue flattened in the heap's internal order. Restore
    /// re-heapifies; pop order is unaffected because event ordering is total
    /// on the unique `(time, seq)` key.
    queue: Vec<QueuedEvent>,
    nodes: Vec<NodeSnapshot>,
    storage: StorageSnapshot,
    net_base_latency: SimDuration,
    net_jitter: SimDuration,
    net_drop_probability: f64,
    partitions: Vec<(NodeId, NodeId)>,
    logs: LogBuffer,
    net_rng: SimRng,
    /// Issued client inboxes (the live prefix only; warm spares are not
    /// observable state). `len()` is the issued-client count.
    client_inbox: Vec<VecDeque<Bytes>>,
    events_processed: u64,
    messages_delivered: u64,
    faults: Option<FaultSnapshot>,
    fault_epoch: u64,
    pending_restarts: VecDeque<NodeId>,
    event_budget: Option<u64>,
    trace: Option<TraceBuffer>,
    trace_ctx: u64,
}

impl Default for SimSnapshot {
    fn default() -> Self {
        SimSnapshot {
            seed: 0,
            now: SimTime::ZERO,
            seq: 0,
            queue: Vec::new(),
            nodes: Vec::new(),
            storage: StorageSnapshot::default(),
            net_base_latency: SimDuration::from_millis(0),
            net_jitter: SimDuration::from_millis(0),
            net_drop_probability: 0.0,
            partitions: Vec::new(),
            logs: LogBuffer::new(),
            net_rng: SimRng::new(0),
            client_inbox: Vec::new(),
            events_processed: 0,
            messages_delivered: 0,
            faults: None,
            fault_epoch: 0,
            pending_restarts: VecDeque::new(),
            event_budget: None,
            trace: None,
            trace_ctx: 0,
        }
    }
}

impl SimSnapshot {
    /// Creates an empty snapshot buffer for use with [`Sim::snapshot_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The simulated time at which the snapshot was taken.
    pub fn taken_at(&self) -> SimTime {
        self.now
    }
}

impl fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

/// The simulated world.
pub struct Sim {
    seed: u64,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    nodes: Vec<NodeSlot>,
    storage: StorageMap,
    /// The network model; mutate directly to inject partitions or loss.
    pub net: Network,
    logs: LogBuffer,
    net_rng: SimRng,
    /// Client inboxes, a slab indexed by client id: [`Sim::client_send`]
    /// assigns ids densely, so the id *is* the index. `VecDeque` makes
    /// [`Sim::poll_response`] a pointer bump instead of a `Vec::remove(0)`
    /// shift, and the slab spares [`Sim::rpc`] a tree lookup per poll. The
    /// slab may hold more (empty) slots than `clients` after a
    /// [`Sim::reset`]: slots are retained for reuse and re-issued in order.
    client_inbox: Vec<VecDeque<Bytes>>,
    /// Number of client ids issued so far — the live prefix of
    /// `client_inbox`. Slots at or past this index are warm spares; they
    /// must be invisible (a fresh simulator would not have them).
    clients: usize,
    events_processed: u64,
    messages_delivered: u64,
    /// Scratch buffer for the per-dispatch effect queue, recycled across
    /// dispatches so steady-state dispatch performs no heap allocation.
    effects_pool: Vec<Effect>,
    /// Active fault-injection state, if a plan was installed.
    faults: Option<FaultState>,
    /// Fault state parked by [`Sim::reset`]; the next
    /// [`Sim::install_fault_plan`] recycles its allocations.
    fault_pool: Option<FaultState>,
    /// Incremented per [`Sim::install_fault_plan`]; stamps `Fault` events so
    /// a replaced plan's leftover events do nothing.
    fault_epoch: u64,
    /// Nodes crashed by the plan whose scheduled restart has come due. The
    /// harness drains this via [`Sim::take_pending_restart`] and decides what
    /// process to install (the simulator cannot spawn processes itself).
    pending_restarts: VecDeque<NodeId>,
    /// Remaining event budget, if one was set: the watchdog against
    /// non-terminating cases. At zero, [`Sim::step`] refuses to run and
    /// [`Sim::peek_time`] reports no pending events.
    event_budget: Option<u64>,
    /// The causal trace recorder, if [`Sim::enable_trace`] was called. The
    /// hot path pays one branch per record site when disabled.
    trace: Option<TraceBuffer>,
    /// Trace ring parked by [`Sim::reset`]; the next [`Sim::enable_trace`]
    /// with the same (normalized) config recycles it instead of allocating.
    trace_pool: Option<TraceBuffer>,
    /// Trace id of the event currently being processed: the causal parent
    /// for everything the running handler produces. 0 while tracing is off.
    trace_ctx: u64,
}

impl Sim {
    /// Creates an empty simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let root = SimRng::new(seed);
        Sim {
            seed,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            storage: StorageMap::new(),
            net: Network::new(),
            logs: LogBuffer::new(),
            net_rng: root.split(u64::MAX),
            client_inbox: Vec::new(),
            clients: 0,
            events_processed: 0,
            messages_delivered: 0,
            effects_pool: Vec::new(),
            faults: None,
            fault_pool: None,
            fault_epoch: 0,
            pending_restarts: VecDeque::new(),
            event_budget: None,
            trace: None,
            trace_pool: None,
            trace_ctx: 0,
        }
    }

    /// Arena-style reset: returns the simulator to the state `Sim::new(seed)`
    /// would produce, but keeps every pooled allocation — the event queue,
    /// storage and inbox slabs, the effect scratch buffer, and (parked for
    /// the next [`Sim::install_fault_plan`] / [`Sim::enable_trace`]) the
    /// fault state and trace ring. In steady state this touches the
    /// allocator zero times, which is what makes warm per-worker simulators
    /// cheaper than constructing a fresh `Sim` per case.
    ///
    /// The reset-equals-fresh contract: after `reset(s)`, every observable
    /// behaviour — event order, RNG streams, host-id assignment, client
    /// handles, digests, trace slices — is byte-identical to a fresh
    /// `Sim::new(s)` driven the same way. Tests assert this; any new `Sim`
    /// field must be restored here or the contract (and campaign report
    /// byte-identity across warm workers) breaks.
    pub fn reset(&mut self, seed: u64) {
        self.seed = seed;
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.queue.clear();
        self.nodes.clear();
        self.storage.reset();
        self.net.reset();
        self.logs.reset();
        self.net_rng = SimRng::new(seed).split(u64::MAX);
        for inbox in &mut self.client_inbox {
            inbox.clear();
        }
        self.clients = 0;
        self.events_processed = 0;
        self.messages_delivered = 0;
        self.effects_pool.clear();
        // Park rather than drop: a fresh sim has `faults: None`, and the
        // crash/fate gating tests that (`crash_materialize_host` is a no-op
        // without a plan), so the state cannot stay in `faults` — but its
        // allocations are worth keeping for the next plan install.
        if let Some(f) = self.faults.take() {
            self.fault_pool = Some(f);
        }
        self.fault_epoch = 0;
        self.pending_restarts.clear();
        self.event_budget = None;
        if let Some(t) = self.trace.take() {
            self.trace_pool = Some(t);
        }
        self.trace_ctx = 0;
    }

    // ----- snapshot & fork --------------------------------------------------

    /// Captures the simulator's complete logical state into a fresh
    /// [`SimSnapshot`]. Returns `None` if any live process does not support
    /// [`Process::fork`] — snapshotting is opt-in per process type.
    ///
    /// For repeated captures, allocate the buffer once and use
    /// [`Sim::snapshot_into`], which reuses its capacity.
    pub fn snapshot(&self) -> Option<SimSnapshot> {
        let mut snap = SimSnapshot::default();
        self.snapshot_into(&mut snap).then_some(snap)
    }

    /// Captures the simulator's state into a pooled snapshot buffer,
    /// overwriting whatever it held. Returns `false` (leaving the buffer's
    /// contents unspecified) if any live process does not support
    /// [`Process::fork`].
    ///
    /// In steady state — re-capturing a similarly shaped world into a warm
    /// buffer — this performs no heap allocation: strings, vecs, storage
    /// images, and forked processes are all written into retained capacity.
    pub fn snapshot_into(&self, snap: &mut SimSnapshot) -> bool {
        snap.seed = self.seed;
        snap.now = self.now;
        snap.seq = self.seq;
        snap.queue.clear();
        snap.queue
            .extend(self.queue.iter().map(|Reverse(e)| e.clone()));
        if snap.nodes.len() > self.nodes.len() {
            snap.nodes.truncate(self.nodes.len());
        }
        for (dst, src) in snap.nodes.iter_mut().zip(&self.nodes) {
            if !dst.capture_from(src) {
                return false;
            }
        }
        for src in &self.nodes[snap.nodes.len()..] {
            let mut dst = NodeSnapshot::empty();
            if !dst.capture_from(src) {
                return false;
            }
            snap.nodes.push(dst);
        }
        self.storage.capture_into(&mut snap.storage);
        snap.net_base_latency = self.net.base_latency;
        snap.net_jitter = self.net.jitter;
        snap.net_drop_probability = self.net.drop_probability;
        snap.partitions.clear();
        snap.partitions
            .extend_from_slice(self.net.partition_pairs());
        snap.logs.copy_from(&self.logs);
        snap.net_rng = self.net_rng.clone();
        // Only the issued prefix is observable; warm spare slots are not
        // part of the logical state.
        if snap.client_inbox.len() > self.clients {
            snap.client_inbox.truncate(self.clients);
        }
        let common = snap.client_inbox.len();
        for (dst, src) in snap
            .client_inbox
            .iter_mut()
            .zip(&self.client_inbox[..common])
        {
            dst.clone_from(src);
        }
        for src in &self.client_inbox[common..self.clients] {
            snap.client_inbox.push(src.clone());
        }
        snap.events_processed = self.events_processed;
        snap.messages_delivered = self.messages_delivered;
        match &self.faults {
            Some(state) => {
                let dst = snap.faults.get_or_insert_with(FaultSnapshot::default);
                state.capture_into(dst);
            }
            None => snap.faults = None,
        }
        snap.fault_epoch = self.fault_epoch;
        snap.pending_restarts.clone_from(&self.pending_restarts);
        snap.event_budget = self.event_budget;
        match &self.trace {
            Some(t) => match snap.trace.as_mut() {
                Some(dst) => dst.copy_from(t),
                None => snap.trace = Some(t.clone()),
            },
            None => snap.trace = None,
        }
        snap.trace_ctx = self.trace_ctx;
        true
    }

    /// Restores the simulator to the exact state captured in `snap`,
    /// overwriting the current state while reusing every retained
    /// allocation (the restore analog of [`Sim::reset`]).
    ///
    /// The restore-equals-fresh contract: after `restore(&s)`, every
    /// observable behaviour — event order, RNG streams, storage digests,
    /// client handles, logs, trace slices — is byte-identical to the
    /// simulator that produced `s` continuing from the capture point, which
    /// in turn is byte-identical to a fresh `Sim` driven through the same
    /// history. Tests assert this; any new `Sim` field must be captured in
    /// [`Sim::snapshot_into`] and restored here or the contract (and
    /// snapshot-mode campaign report byte-identity) breaks.
    ///
    /// In steady state — restoring the same snapshot into the same warm
    /// simulator repeatedly, as the campaign runner does per seed — this
    /// performs no heap allocation.
    pub fn restore(&mut self, snap: &SimSnapshot) {
        self.seed = snap.seed;
        self.now = snap.now;
        self.seq = snap.seq;
        // Reuse the heap's backing vec; re-heapifying cannot change pop
        // order because event ordering is total on the unique (time, seq).
        let mut heap_vec = std::mem::take(&mut self.queue).into_vec();
        heap_vec.clear();
        heap_vec.extend(snap.queue.iter().map(|e| Reverse(e.clone())));
        self.queue = BinaryHeap::from(heap_vec);
        if self.nodes.len() > snap.nodes.len() {
            self.nodes.truncate(snap.nodes.len());
        }
        for (slot, saved) in self.nodes.iter_mut().zip(&snap.nodes) {
            slot.host = saved.host;
            slot.version_label.clone_from(&saved.version_label);
            slot.status = saved.status;
            slot.generation = saved.generation;
            slot.rng = saved.rng.clone();
            slot.crash_reason.clone_from(&saved.crash_reason);
            slot.metrics = saved.metrics;
            match saved.process.as_deref() {
                Some(sp) => {
                    let reused = match slot.process.as_deref_mut() {
                        Some(live) => live.restore_from(sp),
                        None => false,
                    };
                    if !reused {
                        slot.process = sp.fork();
                    }
                }
                None => slot.process = None,
            }
        }
        for saved in &snap.nodes[self.nodes.len()..] {
            self.nodes.push(NodeSlot {
                host: saved.host,
                version_label: saved.version_label.clone(),
                process: saved.process.as_deref().and_then(Process::fork),
                status: saved.status,
                generation: saved.generation,
                rng: saved.rng.clone(),
                crash_reason: saved.crash_reason.clone(),
                metrics: saved.metrics,
            });
        }
        self.storage.restore_from_snapshot(&snap.storage);
        self.net.base_latency = snap.net_base_latency;
        self.net.jitter = snap.net_jitter;
        self.net.drop_probability = snap.net_drop_probability;
        self.net.restore_partitions(&snap.partitions);
        self.logs.copy_from(&snap.logs);
        self.net_rng = snap.net_rng.clone();
        let common = self.client_inbox.len().min(snap.client_inbox.len());
        for (dst, src) in self.client_inbox[..common]
            .iter_mut()
            .zip(&snap.client_inbox[..common])
        {
            dst.clone_from(src);
        }
        for src in &snap.client_inbox[common..] {
            self.client_inbox.push(src.clone());
        }
        // Slots past the snapshot's issued prefix become warm spares again;
        // they must read as empty when their ids are re-issued.
        for spare in &mut self.client_inbox[snap.client_inbox.len()..] {
            spare.clear();
        }
        self.clients = snap.client_inbox.len();
        self.events_processed = snap.events_processed;
        self.messages_delivered = snap.messages_delivered;
        self.effects_pool.clear();
        match &snap.faults {
            Some(fsnap) => {
                let state = match self.faults.take().or_else(|| self.fault_pool.take()) {
                    Some(state) => state,
                    None => FaultState::new(FaultPlan::new(0)),
                };
                let mut state = state;
                state.restore_from_snapshot(fsnap);
                self.faults = Some(state);
            }
            None => {
                if let Some(f) = self.faults.take() {
                    self.fault_pool = Some(f);
                }
            }
        }
        self.fault_epoch = snap.fault_epoch;
        self.pending_restarts.clone_from(&snap.pending_restarts);
        self.event_budget = snap.event_budget;
        match &snap.trace {
            Some(src) => match self.trace.take().or_else(|| self.trace_pool.take()) {
                Some(mut t) => {
                    t.copy_from(src);
                    self.trace = Some(t);
                }
                None => self.trace = Some(src.clone()),
            },
            None => {
                if let Some(t) = self.trace.take() {
                    self.trace_pool = Some(t);
                }
            }
        }
        self.trace_ctx = snap.trace_ctx;
    }

    /// Rebinds the root seed without disturbing any existing state: node
    /// RNG streams derived so far keep their positions, but every stream
    /// derived *after* this call — node starts, restarts, new nodes, and the
    /// network jitter stream — comes from `seed`.
    ///
    /// This is the fork point of snapshot-and-fork execution: restore a
    /// seed-independent prefix snapshot, `reseed(case_seed)`, and the
    /// suffix diverges exactly as if the whole case had run under a harness
    /// that switched seeds at the same instant.
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.net_rng = SimRng::new(seed).split(u64::MAX);
    }

    /// Caps the total number of further events this simulation may process.
    /// Once the budget is spent, [`Sim::step`] returns `false` and
    /// [`Sim::peek_time`] reports no pending events, so every driver loop
    /// terminates — the virtual-time watchdog for non-terminating cases.
    /// Check [`Sim::budget_exhausted`] afterwards to tell "quiesced" from
    /// "cut off".
    pub fn set_event_budget(&mut self, max_events: u64) {
        self.event_budget = Some(max_events);
    }

    /// `true` once a budget set via [`Sim::set_event_budget`] hit zero.
    pub fn budget_exhausted(&self) -> bool {
        self.event_budget == Some(0)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total node-to-node and node-to-client messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Captured logs.
    pub fn logs(&self) -> &LogBuffer {
        &self.logs
    }

    // ----- causal tracing ---------------------------------------------------

    /// Enables the causal trace recorder. The ring is fully allocated here,
    /// so recording itself performs no heap allocation; call before the run
    /// starts to capture the whole history. Replaces any previous buffer —
    /// except that a buffer with the same (normalized) config, current or
    /// parked by [`Sim::reset`], is emptied and reused instead of
    /// reallocated, so warm case runners re-enable tracing for free.
    pub fn enable_trace(&mut self, config: TraceConfig) {
        let config = config.normalized();
        self.trace = match self.trace.take().or_else(|| self.trace_pool.take()) {
            Some(mut t) if t.config() == config => {
                t.reset();
                Some(t)
            }
            _ => Some(TraceBuffer::new(config)),
        };
        self.trace_ctx = 0;
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Records an observation anchor — the terminal event a failure's
    /// lineage chain ends at — parented to the last event touching `node`
    /// (or the latest event overall when no node is implicated). Returns the
    /// anchor's trace id, or 0 when tracing is disabled.
    pub fn trace_observe(&mut self, node: Option<NodeId>) -> u64 {
        let parent = match self.trace.as_ref() {
            Some(t) => t.anchor_for(node),
            None => return 0,
        };
        self.trace_record(parent, TraceEventKind::Observation { node })
    }

    /// Records one trace event at the current time; returns 0 when disabled.
    #[inline(always)]
    fn trace_record(&mut self, parent: u64, kind: TraceEventKind) -> u64 {
        match self.trace.as_mut() {
            Some(t) => t.record(self.now, parent, kind),
            None => 0,
        }
    }

    /// Emits a harness-level log record.
    pub fn log_sim(&mut self, level: LogLevel, message: impl Into<String>) {
        self.logs.push(LogRecord {
            time: self.now,
            node: None,
            generation: 0,
            level,
            message: message.into(),
        });
    }

    // ----- node lifecycle -------------------------------------------------

    /// Adds a node slot on `host` running `process` labelled `version_label`.
    ///
    /// The node starts `Idle`; call [`Sim::start_node`].
    pub fn add_node(
        &mut self,
        host: &str,
        version_label: &str,
        process: Box<dyn Process>,
    ) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let host = self.storage.intern(host);
        self.nodes.push(NodeSlot {
            host,
            version_label: version_label.to_string(),
            process: Some(process),
            status: NodeStatus::Idle,
            generation: 0,
            rng: SimRng::new(self.seed).split(u64::from(id)),
            crash_reason: None,
            metrics: NodeMetrics::default(),
        });
        id
    }

    /// Number of node slots (including stopped/crashed ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The status of `node`.
    pub fn node_status(&self, node: NodeId) -> NodeStatus {
        self.nodes
            .get(node as usize)
            .map(|s| s.status)
            .unwrap_or(NodeStatus::Idle)
    }

    /// The version label currently installed on `node`.
    pub fn node_version(&self, node: NodeId) -> &str {
        self.nodes
            .get(node as usize)
            .map(|s| s.version_label.as_str())
            .unwrap_or("")
    }

    /// The crash reason, if the node crashed.
    pub fn crash_reason(&self, node: NodeId) -> Option<&str> {
        self.nodes
            .get(node as usize)
            .and_then(|s| s.crash_reason.as_deref())
    }

    /// Per-node traffic counters.
    pub fn node_metrics(&self, node: NodeId) -> NodeMetrics {
        self.nodes
            .get(node as usize)
            .map(|s| s.metrics)
            .unwrap_or_default()
    }

    /// Ids of nodes currently `Running`.
    pub fn running_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&n| self.nodes[n as usize].status.is_running())
            .collect()
    }

    /// Ids of nodes currently `Crashed`.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&n| self.nodes[n as usize].status == NodeStatus::Crashed)
            .collect()
    }

    /// Schedules `node` to start at the current time.
    ///
    /// Starting bumps the node's generation: timers armed by the previous
    /// process generation are discarded, mirroring a process restart.
    pub fn start_node(&mut self, node: NodeId) -> Result<(), SimError> {
        let seed = self.seed;
        let slot = self.slot_mut(node)?;
        if slot.status == NodeStatus::Running || slot.status == NodeStatus::Starting {
            return Err(SimError::BadStatus {
                node,
                status: slot.status,
                op: "start",
            });
        }
        if slot.process.is_none() {
            return Err(SimError::BadStatus {
                node,
                status: slot.status,
                op: "start (no process installed)",
            });
        }
        slot.generation += 1;
        slot.status = NodeStatus::Starting;
        slot.crash_reason = None;
        let generation = slot.generation;
        slot.rng = SimRng::new(seed).split(u64::from(node) << 20 | generation);
        self.schedule(self.now, 0, EventKind::Start { node, generation });
        Ok(())
    }

    /// Gracefully stops `node`: its `on_shutdown` hook runs, then the process
    /// is discarded. Persistent storage survives.
    pub fn stop_node(&mut self, node: NodeId) -> Result<(), SimError> {
        let status = self.slot_mut(node)?.status;
        match status {
            NodeStatus::Running => {
                let stop_id = self.trace_record(0, TraceEventKind::NodeStop { node });
                self.trace_ctx = stop_id;
                self.dispatch(node, DispatchKind::Shutdown);
                // A shutdown handler may itself crash the node; only mark
                // stopped if it survived.
                if self.nodes[node as usize].status == NodeStatus::Running {
                    let host = self.nodes[node as usize].host;
                    // An armed mid-upgrade crash point fires here: the old
                    // version has shut down, and the host dies before the
                    // next version boots.
                    let fired = self.faults.as_mut().is_some_and(|f| {
                        f.take_crash_point(node, CrashPointKind::MidUpgrade, self.now)
                    });
                    let slot = &mut self.nodes[node as usize];
                    slot.process = None;
                    if fired {
                        slot.status = NodeStatus::Crashed;
                        slot.crash_reason = Some(FAULT_CRASH_REASON.to_string());
                        let generation = slot.generation;
                        self.logs.push(LogRecord {
                            time: self.now,
                            node: Some(node),
                            generation,
                            level: LogLevel::Warn,
                            message: format!("crash point: node {node} crashed mid-upgrade"),
                        });
                        let crash_id =
                            self.trace_record(stop_id, TraceEventKind::NodeCrash { node });
                        self.crash_materialize_host(host, crash_id);
                    } else {
                        slot.status = NodeStatus::Stopped;
                        // A graceful stop syncs buffered storage (a clean
                        // daemon exit flushes before the container is torn
                        // down).
                        self.trace_record(stop_id, TraceEventKind::StorageFlush { host });
                        self.storage.by_id_mut(host).flush_all();
                    }
                }
                Ok(())
            }
            NodeStatus::Starting | NodeStatus::Idle => {
                self.trace_record(0, TraceEventKind::NodeStop { node });
                let slot = self.slot_mut(node)?;
                slot.status = NodeStatus::Stopped;
                Ok(())
            }
            NodeStatus::Stopped | NodeStatus::Crashed => Ok(()),
        }
    }

    /// Kills `node` without running its shutdown hook (simulates `kill -9` /
    /// container teardown).
    pub fn kill_node(&mut self, node: NodeId) -> Result<(), SimError> {
        let slot = self.slot_mut(node)?;
        slot.status = NodeStatus::Crashed;
        slot.crash_reason = Some("killed by harness".to_string());
        slot.process = None;
        let host = slot.host;
        let kill_id = self.trace_record(0, TraceEventKind::NodeKill { node });
        self.crash_materialize_host(host, kill_id);
        Ok(())
    }

    /// Installs a new process (typically a different software version) into a
    /// stopped, crashed, or idle slot. The host — and its persistent storage —
    /// is unchanged: this is the "replace the container, keep the shared
    /// directory" upgrade step of DUPTester.
    pub fn install(
        &mut self,
        node: NodeId,
        version_label: &str,
        process: Box<dyn Process>,
    ) -> Result<(), SimError> {
        let slot = self.slot_mut(node)?;
        if slot.status == NodeStatus::Running || slot.status == NodeStatus::Starting {
            return Err(SimError::BadStatus {
                node,
                status: slot.status,
                op: "install over",
            });
        }
        slot.process = Some(process);
        slot.version_label = version_label.to_string();
        self.trace_record(0, TraceEventKind::NodeUpgrade { node });
        Ok(())
    }

    /// Installs an *older* process version into a stopped, crashed, or idle
    /// slot — the rollback step of a downgrade rollout. Mechanically
    /// identical to [`Sim::install`] (the host keeps its persistent storage,
    /// including any newer-format state the replaced version wrote), but the
    /// trace records a distinct downgrade event so rollbacks are separable
    /// from forward rollouts in signatures and slices.
    pub fn install_downgrade(
        &mut self,
        node: NodeId,
        version_label: &str,
        process: Box<dyn Process>,
    ) -> Result<(), SimError> {
        let slot = self.slot_mut(node)?;
        if slot.status == NodeStatus::Running || slot.status == NodeStatus::Starting {
            return Err(SimError::BadStatus {
                node,
                status: slot.status,
                op: "install over",
            });
        }
        slot.process = Some(process);
        slot.version_label = version_label.to_string();
        self.trace_record(0, TraceEventKind::NodeDowngrade { node });
        Ok(())
    }

    /// Interns `host` (the same id [`Sim::add_node`] would assign) for use
    /// with the id-addressed storage API.
    pub fn host_id(&mut self, host: &str) -> HostId {
        self.storage.intern(host)
    }

    /// Direct access to a host's persistent storage by interned id. O(1).
    pub fn host_storage_by_id(&mut self, host: HostId) -> &mut HostStorage {
        self.storage.by_id_mut(host)
    }

    /// Read-only access to a host's persistent storage by interned id, or
    /// `None` if nothing was ever stored there.
    pub fn host_storage_by_id_ref(&self, host: HostId) -> Option<&HostStorage> {
        self.storage.by_id(host)
    }

    /// The host name of `node`.
    pub fn node_host(&self, node: NodeId) -> &str {
        self.nodes
            .get(node as usize)
            .map(|s| self.storage.name(s.host))
            .unwrap_or("")
    }

    /// The interned host id of `node`.
    pub fn node_host_id(&self, node: NodeId) -> Option<HostId> {
        self.nodes.get(node as usize).map(|s| s.host)
    }

    // ----- fault injection --------------------------------------------------

    /// Installs a [`FaultPlan`]: schedules its actions as simulator events
    /// (actions already in the past fire at the current time) and activates
    /// its per-message fate stream. Replaces any previously installed plan;
    /// the old plan's pending actions become inert.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_epoch += 1;
        let epoch = self.fault_epoch;
        for (action, fault) in plan.actions().iter().enumerate() {
            let at = fault.at.max(self.now);
            self.schedule(at, 0, EventKind::Fault { action, epoch });
        }
        // The plan's durability axis applies to every host, current and
        // future, for as long as the plan is installed.
        self.storage.set_mode(plan.durability);
        // Recycle the replaced (or reset-parked) state's allocations;
        // `reinstall` re-derives both RNG streams from the plan's seed, so
        // the result is indistinguishable from `FaultState::new(plan)`.
        self.faults = match self.faults.take().or_else(|| self.fault_pool.take()) {
            Some(mut state) => {
                state.reinstall(plan);
                Some(state)
            }
            None => Some(FaultState::new(plan)),
        };
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Total faults injected so far: per-message fates (drops, duplicates,
    /// delays, reorders) plus applied scheduled actions.
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map(|f| f.injected).unwrap_or(0)
    }

    /// Pops the next node whose plan-scheduled restart is due. The caller
    /// installs a process and starts the node; the simulator has no way to
    /// spawn one.
    pub fn take_pending_restart(&mut self) -> Option<NodeId> {
        self.pending_restarts.pop_front()
    }

    /// `true` if `node` is crashed and the crash was injected by the fault
    /// plan (as opposed to a genuine process failure).
    pub fn is_fault_crashed(&self, node: NodeId) -> bool {
        self.node_status(node) == NodeStatus::Crashed
            && self.crash_reason(node) == Some(FAULT_CRASH_REASON)
    }

    /// Applies one scheduled fault action. Partition changes are silent (the
    /// hot path must stay allocation-free); crash/restart actions log at
    /// `Warn` — below the `Error` threshold failure oracles scan for.
    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Partition(a, b) => self.net.partition(a, b),
            FaultKind::Heal(a, b) => self.net.heal(a, b),
            FaultKind::HealAll => self.net.heal_all(),
            FaultKind::Crash(n) => {
                let Some(slot) = self.nodes.get_mut(n as usize) else {
                    return;
                };
                if !matches!(slot.status, NodeStatus::Running | NodeStatus::Starting) {
                    return;
                }
                slot.status = NodeStatus::Crashed;
                slot.crash_reason = Some(FAULT_CRASH_REASON.to_string());
                slot.process = None;
                let host = slot.host;
                self.logs.push(LogRecord {
                    time: self.now,
                    node: Some(n),
                    generation: self.nodes[n as usize].generation,
                    level: LogLevel::Warn,
                    message: format!("fault injection: crashed node {n}"),
                });
                let ctx = self.trace_ctx;
                let crash_id = self.trace_record(ctx, TraceEventKind::NodeCrash { node: n });
                self.crash_materialize_host(host, crash_id);
            }
            FaultKind::Restart(n) => {
                if !self.is_fault_crashed(n) {
                    return; // Never restart a genuinely crashed node.
                }
                self.pending_restarts.push_back(n);
                self.logs.push(LogRecord {
                    time: self.now,
                    node: Some(n),
                    generation: self.nodes[n as usize].generation,
                    level: LogLevel::Warn,
                    message: format!("fault injection: restart of node {n} due"),
                });
                let ctx = self.trace_ctx;
                self.trace_record(ctx, TraceEventKind::NodeRestartDue { node: n });
            }
        }
        if let Some(f) = self.faults.as_mut() {
            f.injected += 1;
        }
    }

    /// Resolves a host's unflushed storage against the plan's
    /// crash-materializer stream. Called on **every** crash — scheduled
    /// fault, harness kill, genuine process failure, crash point — so the
    /// recovery image is always crash-consistent. A no-op without a plan
    /// (no plan means strict durability: nothing is ever unflushed).
    /// `parent` is the trace id of the crash that triggered it.
    fn crash_materialize_host(&mut self, host: HostId, parent: u64) {
        if self.faults.is_none() {
            return;
        }
        if self.trace.is_some() {
            let at_risk = self.storage.by_id_mut(host).unflushed_bytes() as u32;
            self.trace_record(parent, TraceEventKind::StorageCrash { host, at_risk });
        }
        if let Some(f) = self.faults.as_mut() {
            self.storage
                .by_id_mut(host)
                .crash_materialize(&mut f.crash_rng);
        }
    }

    // ----- client traffic ---------------------------------------------------

    /// Sends `payload` to `to` on behalf of a fresh external client; responses
    /// the node sends back are collected under the returned handle.
    pub fn client_send(&mut self, to: NodeId, payload: Bytes) -> ClientHandle {
        let id = self.clients as u64;
        if self.clients == self.client_inbox.len() {
            self.client_inbox.push(VecDeque::new());
        }
        self.clients += 1;
        let from = Endpoint::Client(id);
        let latency = self
            .net
            .route(from, Endpoint::Node(to), &mut self.net_rng)
            .unwrap_or(SimDuration::from_millis(1));
        let request_id = self.trace_record(
            0,
            TraceEventKind::ClientRequest {
                client: id,
                node: to,
                bytes: payload.len() as u32,
            },
        );
        self.schedule(
            self.now + latency,
            request_id,
            EventKind::Deliver {
                from,
                to: Endpoint::Node(to),
                payload,
            },
        );
        ClientHandle(id)
    }

    /// Pops the next response received for `handle`, if any.
    pub fn poll_response(&mut self, handle: ClientHandle) -> Option<Bytes> {
        // Index only the issued prefix: warm spare slots past `clients`
        // must behave exactly like the out-of-range ids they would be on a
        // fresh simulator.
        self.client_inbox[..self.clients]
            .get_mut(handle.0 as usize)?
            .pop_front()
    }

    /// Sends a request and runs the simulation until a response arrives or
    /// `timeout` elapses. Returns `None` on timeout.
    pub fn rpc(&mut self, to: NodeId, payload: Bytes, timeout: SimDuration) -> Option<Bytes> {
        let handle = self.client_send(to, payload);
        let deadline = self.now + timeout;
        loop {
            if let Some(resp) = self.poll_response(handle) {
                return Some(resp);
            }
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => {
                    self.now = deadline;
                    return self.poll_response(handle);
                }
            }
        }
    }

    // ----- event loop -------------------------------------------------------

    /// Processes the next event, if any; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        if self.budget_exhausted() {
            return false;
        }
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        if let Some(budget) = self.event_budget.as_mut() {
            *budget -= 1;
        }
        debug_assert!(event.time >= self.now, "time went backwards");
        self.now = event.time;
        self.events_processed += 1;
        match event.kind {
            EventKind::Start { node, generation } => {
                let slot = &mut self.nodes[node as usize];
                if slot.generation == generation && slot.status == NodeStatus::Starting {
                    slot.status = NodeStatus::Running;
                    self.trace_ctx = self
                        .trace_record(event.cause, TraceEventKind::NodeStart { node, generation });
                    self.dispatch(node, DispatchKind::Start);
                }
            }
            EventKind::Deliver { from, to, payload } => match to {
                Endpoint::Node(n) => {
                    if let Some(slot) = self.nodes.get_mut(n as usize) {
                        if slot.status.is_running() {
                            slot.metrics.messages_received += 1;
                            self.messages_delivered += 1;
                            self.trace_ctx = self.trace_record(
                                event.cause,
                                TraceEventKind::MessageDeliver {
                                    from,
                                    to,
                                    bytes: payload.len() as u32,
                                },
                            );
                            self.dispatch(n, DispatchKind::Message { from, payload });
                        }
                    }
                }
                Endpoint::Client(c) => {
                    self.messages_delivered += 1;
                    self.trace_record(
                        event.cause,
                        TraceEventKind::ClientResponse {
                            client: c,
                            bytes: payload.len() as u32,
                        },
                    );
                    // A reply to a client id the harness never issued has no
                    // reader; drop it (it still counts as delivered above,
                    // exactly as the old map-backed inbox counted it). The
                    // issued prefix keeps warm spare slots from absorbing
                    // such replies and leaking them to a later client that
                    // gets the recycled id.
                    if let Some(inbox) = self.client_inbox[..self.clients].get_mut(c as usize) {
                        inbox.push_back(payload);
                    }
                }
            },
            EventKind::Timer {
                node,
                generation,
                token,
            } => {
                let slot = &mut self.nodes[node as usize];
                if slot.generation == generation && slot.status.is_running() {
                    slot.metrics.timers_fired += 1;
                    self.trace_ctx =
                        self.trace_record(event.cause, TraceEventKind::TimerFire { node, token });
                    self.dispatch(node, DispatchKind::Timer { token });
                }
            }
            EventKind::Fault { action, epoch } => {
                if epoch == self.fault_epoch {
                    let kind = self
                        .faults
                        .as_ref()
                        .and_then(|f| f.plan.actions().get(action))
                        .map(|a| a.kind);
                    if let Some(kind) = kind {
                        self.trace_ctx =
                            self.trace_record(event.cause, TraceEventKind::FaultAction { kind });
                        self.apply_fault(kind);
                    }
                }
            }
            EventKind::PointRestart { node, epoch } => {
                if epoch == self.fault_epoch && self.is_fault_crashed(node) {
                    self.pending_restarts.push_back(node);
                    self.logs.push(LogRecord {
                        time: self.now,
                        node: Some(node),
                        generation: self.nodes[node as usize].generation,
                        level: LogLevel::Warn,
                        message: format!("crash point: restart of node {node} due"),
                    });
                    self.trace_record(event.cause, TraceEventKind::NodeRestartDue { node });
                }
            }
        }
        true
    }

    /// Runs until the queue is empty or `deadline` is reached; `now` ends at
    /// `deadline` even if the queue drained early.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// Runs until no events remain, with an event budget to catch storms.
    pub fn run_until_idle(&mut self, max_events: u64) -> Result<(), SimError> {
        let mut n = 0;
        while self.step() {
            n += 1;
            if n >= max_events {
                return Err(SimError::Runaway { events: n });
            }
        }
        Ok(())
    }

    /// The timestamp of the next queued event. Reports `None` once the
    /// event budget is exhausted, so deadline loops built on peek+step
    /// terminate instead of spinning on events that will never run.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.budget_exhausted() {
            return None;
        }
        self.queue.peek().map(|Reverse(e)| e.time)
    }

    // ----- internals --------------------------------------------------------

    fn slot_mut(&mut self, node: NodeId) -> Result<&mut NodeSlot, SimError> {
        self.nodes
            .get_mut(node as usize)
            .ok_or(SimError::UnknownNode(node))
    }

    fn schedule(&mut self, time: SimTime, cause: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            seq,
            cause,
            kind,
        }));
    }

    fn dispatch(&mut self, node: NodeId, kind: DispatchKind) {
        let slot = &mut self.nodes[node as usize];
        let Some(mut process) = slot.process.take() else {
            return;
        };
        let host: HostId = slot.host;
        let generation = slot.generation;
        let mut rng = std::mem::replace(&mut slot.rng, SimRng::new(0));

        // Recycle the effect scratch buffer: after warm-up its capacity
        // covers any handler's burst, so steady-state dispatch performs no
        // heap allocation. (Dispatch never nests — effects are applied after
        // the handler returns — so one pooled buffer suffices.)
        let mut effects: Vec<Effect> = std::mem::take(&mut self.effects_pool);
        debug_assert!(effects.is_empty());
        let result = {
            let storage = self.storage.by_id_mut(host);
            let mut ctx = Ctx {
                now: self.now,
                node,
                generation,
                storage,
                rng: &mut rng,
                logs: &mut self.logs,
                effects: &mut effects,
            };
            // The process is discarded if the handler panics, so its
            // (possibly broken) state can never be observed afterwards;
            // catching the unwind here is therefore sound and reproduces a
            // process crash inside a container.
            catch_unwind(AssertUnwindSafe(|| match &kind {
                DispatchKind::Start => process.on_start(&mut ctx),
                DispatchKind::Message { from, payload } => {
                    process.on_message(&mut ctx, *from, payload)
                }
                DispatchKind::Timer { token } => process.on_timer(&mut ctx, *token),
                DispatchKind::Shutdown => process.on_shutdown(&mut ctx),
            }))
        };

        let slot = &mut self.nodes[node as usize];
        slot.rng = rng;

        // Everything this handler produced is causally parented to the
        // event that dispatched it.
        let dispatch_ctx = self.trace_ctx;
        let mut stop_requested = false;
        let mut sent = 0u64;
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, payload } => {
                    sent += 1;
                    let send_id = self.trace_record(
                        dispatch_ctx,
                        TraceEventKind::MessageSend {
                            from: Endpoint::Node(node),
                            to,
                            bytes: payload.len() as u32,
                        },
                    );
                    if let Some(latency) =
                        self.net.route(Endpoint::Node(node), to, &mut self.net_rng)
                    {
                        // Only node-to-node traffic is subject to injected
                        // faults; replies to clients always go through, like
                        // partition/loss exemption in `Network::route`.
                        let fate = match (&mut self.faults, to) {
                            (Some(f), Endpoint::Node(_)) => f.message_fate(),
                            _ => MessageFate::Deliver,
                        };
                        let from = Endpoint::Node(node);
                        match fate {
                            MessageFate::Drop => {
                                self.trace_record(send_id, TraceEventKind::FaultDrop { from, to });
                            }
                            MessageFate::Duplicate { extra } => {
                                let dup_id = self.trace_record(
                                    send_id,
                                    TraceEventKind::FaultDuplicate { extra },
                                );
                                // `Bytes::clone` bumps a refcount; no copy.
                                self.schedule(
                                    self.now + latency + extra,
                                    dup_id,
                                    EventKind::Deliver {
                                        from,
                                        to,
                                        payload: payload.clone(),
                                    },
                                );
                                self.schedule(
                                    self.now + latency,
                                    send_id,
                                    EventKind::Deliver { from, to, payload },
                                );
                            }
                            MessageFate::Delay { extra } => {
                                let delay_id = self
                                    .trace_record(send_id, TraceEventKind::FaultDelay { extra });
                                self.schedule(
                                    self.now + latency + extra,
                                    delay_id,
                                    EventKind::Deliver { from, to, payload },
                                );
                            }
                            MessageFate::Deliver => {
                                self.schedule(
                                    self.now + latency,
                                    send_id,
                                    EventKind::Deliver { from, to, payload },
                                );
                            }
                        }
                    }
                }
                Effect::SetTimer { delay, token } => {
                    let timer_id = self.trace_record(
                        dispatch_ctx,
                        TraceEventKind::TimerSet { node, token, delay },
                    );
                    self.schedule(
                        self.now + delay,
                        timer_id,
                        EventKind::Timer {
                            node,
                            generation,
                            token,
                        },
                    );
                }
                Effect::StopSelf => stop_requested = true,
            }
        }
        self.effects_pool = effects;
        let slot = &mut self.nodes[node as usize];
        slot.metrics.messages_sent += sent;

        let mut crashed = false;
        match result {
            Ok(Ok(())) => {
                if stop_requested {
                    slot.status = NodeStatus::Stopped;
                    // Process already taken out; drop it.
                } else {
                    slot.process = Some(process);
                }
            }
            Ok(Err(fatal)) => {
                slot.status = NodeStatus::Crashed;
                slot.crash_reason = Some(fatal.message.clone());
                self.logs.push(LogRecord {
                    time: self.now,
                    node: Some(node),
                    generation,
                    level: LogLevel::Fatal,
                    message: fatal.message,
                });
                crashed = true;
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                let slot = &mut self.nodes[node as usize];
                slot.status = NodeStatus::Crashed;
                slot.crash_reason = Some(msg.clone());
                self.logs.push(LogRecord {
                    time: self.now,
                    node: Some(node),
                    generation,
                    level: LogLevel::Fatal,
                    message: format!("panic: {msg}"),
                });
                crashed = true;
            }
        }

        if crashed {
            // A dying process never got to fsync: resolve its unflushed
            // state now, before anything can observe the storage.
            let crash_id = self.trace_record(dispatch_ctx, TraceEventKind::NodeCrash { node });
            self.crash_materialize_host(host, crash_id);
        } else if stop_requested {
            // A graceful self-stop syncs buffered storage, like stop_node.
            let stop_id = self.trace_record(dispatch_ctx, TraceEventKind::NodeStop { node });
            self.trace_record(stop_id, TraceEventKind::StorageFlush { host });
            self.storage.by_id_mut(host).flush_all();
        } else if self
            .faults
            .as_ref()
            .is_some_and(|f| f.wants(node, CrashPointKind::UnflushedWrite, self.now))
            && self.nodes[node as usize].status.is_running()
            && self.storage.by_id_mut(host).has_unflushed()
        {
            // An armed unflushed-write crash point fires: the handler left
            // dirty bytes behind and the host dies before flushing them.
            if let Some(f) = self.faults.as_mut() {
                f.take_crash_point(node, CrashPointKind::UnflushedWrite, self.now);
            }
            let restart = self
                .faults
                .as_ref()
                .map(|f| f.plan.crash_point_restart)
                .unwrap_or(SimDuration::from_secs(2));
            let epoch = self.fault_epoch;
            let slot = &mut self.nodes[node as usize];
            slot.status = NodeStatus::Crashed;
            slot.crash_reason = Some(FAULT_CRASH_REASON.to_string());
            slot.process = None;
            self.logs.push(LogRecord {
                time: self.now,
                node: Some(node),
                generation,
                level: LogLevel::Warn,
                message: format!("crash point: node {node} crashed with unflushed writes"),
            });
            let crash_id = self.trace_record(dispatch_ctx, TraceEventKind::NodeCrash { node });
            self.crash_materialize_host(host, crash_id);
            self.schedule(
                self.now + restart,
                crash_id,
                EventKind::PointRestart { node, epoch },
            );
        }
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes)
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

enum DispatchKind {
    Start,
    Message { from: Endpoint, payload: Bytes },
    Timer { token: u64 },
    Shutdown,
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::StepResult;

    /// Echoes every message back to its sender, optionally crashing on a
    /// magic payload.
    struct Echo;

    impl Process for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
            ctx.info("echo started");
            Ok(())
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, payload: &[u8]) -> StepResult {
            if payload == b"die" {
                return Err(crate::Fatal::new("told to die"));
            }
            if payload == b"panic" {
                panic!("echo exploded");
            }
            ctx.send(from, Bytes::copy_from_slice(payload));
            Ok(())
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) -> StepResult {
            Ok(())
        }
    }

    fn started_echo(sim: &mut Sim) -> NodeId {
        let n = sim.add_node("h0", "v1", Box::new(Echo));
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_millis(10));
        n
    }

    #[test]
    fn rpc_roundtrip() {
        let mut sim = Sim::new(1);
        let n = started_echo(&mut sim);
        let resp = sim.rpc(n, Bytes::from_static(b"ping"), SimDuration::from_secs(1));
        assert_eq!(resp.as_deref(), Some(&b"ping"[..]));
        assert!(sim.node_status(n).is_running());
    }

    #[test]
    fn fatal_crashes_node_and_logs() {
        let mut sim = Sim::new(1);
        let n = started_echo(&mut sim);
        let resp = sim.rpc(n, Bytes::from_static(b"die"), SimDuration::from_secs(1));
        assert!(resp.is_none());
        assert_eq!(sim.node_status(n), NodeStatus::Crashed);
        assert_eq!(sim.crash_reason(n), Some("told to die"));
        assert!(sim.logs().has_at_or_above(LogLevel::Fatal));
    }

    #[test]
    fn panic_is_contained_as_crash() {
        let mut sim = Sim::new(1);
        let n = started_echo(&mut sim);
        let resp = sim.rpc(n, Bytes::from_static(b"panic"), SimDuration::from_secs(1));
        assert!(resp.is_none());
        assert_eq!(sim.node_status(n), NodeStatus::Crashed);
        assert!(sim.crash_reason(n).unwrap().contains("echo exploded"));
        assert_eq!(sim.crashed_nodes(), vec![n]);
    }

    #[test]
    fn upgrade_preserves_storage() {
        /// Writes a marker at start; v2 reads v1's marker.
        struct Writer(&'static str);
        impl Process for Writer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
                let prior = ctx.storage_ref().read("marker").map(<[u8]>::to_vec);
                if let Some(prev) = prior {
                    ctx.info(format!("found marker {}", String::from_utf8_lossy(&prev)));
                }
                ctx.storage().write("marker", self.0.as_bytes().to_vec());
                Ok(())
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: &[u8]) -> StepResult {
                Ok(())
            }
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
                Ok(())
            }
        }

        let mut sim = Sim::new(7);
        let n = sim.add_node("hostA", "v1", Box::new(Writer("one")));
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_millis(10));
        sim.stop_node(n).unwrap();
        assert_eq!(sim.node_status(n), NodeStatus::Stopped);

        sim.install(n, "v2", Box::new(Writer("two"))).unwrap();
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.node_version(n), "v2");
        assert_eq!(sim.logs().matching("found marker one").count(), 1);
        let host = sim.host_id("hostA");
        assert_eq!(
            sim.host_storage_by_id_ref(host).unwrap().read("marker"),
            Some(&b"two"[..])
        );
    }

    #[test]
    fn timers_do_not_survive_upgrade() {
        /// Arms a long timer at start; firing it crashes the node.
        struct TimerBomb;
        impl Process for TimerBomb {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
                ctx.set_timer(SimDuration::from_secs(10), 1);
                Ok(())
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: &[u8]) -> StepResult {
                Ok(())
            }
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
                Err(crate::Fatal::new("stale timer fired"))
            }
        }
        let mut sim = Sim::new(1);
        let n = sim.add_node("h", "v1", Box::new(TimerBomb));
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        sim.stop_node(n).unwrap();
        sim.install(n, "v2", Box::new(Echo)).unwrap();
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_secs(60));
        // The v1 timer was discarded with its generation: node still alive.
        assert!(sim.node_status(n).is_running());
    }

    #[test]
    fn start_errors_on_running_node() {
        let mut sim = Sim::new(1);
        let n = started_echo(&mut sim);
        let err = sim.start_node(n).unwrap_err();
        assert!(matches!(err, SimError::BadStatus { op: "start", .. }));
    }

    #[test]
    fn install_rejected_while_running() {
        let mut sim = Sim::new(1);
        let n = started_echo(&mut sim);
        let err = sim.install(n, "v2", Box::new(Echo)).unwrap_err();
        assert!(matches!(err, SimError::BadStatus { .. }));
    }

    #[test]
    fn unknown_node_is_reported() {
        let mut sim = Sim::new(1);
        assert_eq!(sim.start_node(9).unwrap_err(), SimError::UnknownNode(9));
    }

    #[test]
    fn kill_skips_shutdown_hook() {
        /// Writes a tombstone on graceful shutdown.
        struct Flusher;
        impl Process for Flusher {
            fn on_start(&mut self, _: &mut Ctx<'_>) -> StepResult {
                Ok(())
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: &[u8]) -> StepResult {
                Ok(())
            }
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
                Ok(())
            }
            fn on_shutdown(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
                ctx.storage().write("clean", b"yes".to_vec());
                Ok(())
            }
        }
        let mut sim = Sim::new(1);
        let a = sim.add_node("ha", "v1", Box::new(Flusher));
        let b = sim.add_node("hb", "v1", Box::new(Flusher));
        sim.start_node(a).unwrap();
        sim.start_node(b).unwrap();
        sim.run_for(SimDuration::from_millis(5));
        sim.stop_node(a).unwrap();
        sim.kill_node(b).unwrap();
        let ha = sim.node_host_id(a).unwrap();
        let hb = sim.node_host_id(b).unwrap();
        assert!(sim.host_storage_by_id_ref(ha).unwrap().exists("clean"));
        assert!(!sim.host_storage_by_id_ref(hb).unwrap().exists("clean"));
        assert_eq!(sim.node_status(b), NodeStatus::Crashed);
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        fn run(seed: u64) -> (u64, String) {
            let mut sim = Sim::new(seed);
            let n = started_echo(&mut sim);
            for i in 0..20u8 {
                sim.rpc(n, Bytes::copy_from_slice(&[i]), SimDuration::from_secs(1));
            }
            (sim.events_processed(), sim.logs().render())
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, 0);
    }

    #[test]
    fn runaway_detection_trips() {
        /// Two nodes ping-ponging forever.
        struct PingPong(NodeId);
        impl Process for PingPong {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
                ctx.send(Endpoint::Node(self.0), Bytes::from_static(b"p"));
                Ok(())
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _: &[u8]) -> StepResult {
                ctx.send(from, Bytes::from_static(b"p"));
                Ok(())
            }
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
                Ok(())
            }
        }
        let mut sim = Sim::new(3);
        let a = sim.add_node("a", "v", Box::new(PingPong(1)));
        let b = sim.add_node("b", "v", Box::new(PingPong(0)));
        sim.start_node(a).unwrap();
        sim.start_node(b).unwrap();
        let err = sim.run_until_idle(1000).unwrap_err();
        assert!(matches!(err, SimError::Runaway { events: 1000 }));
    }

    #[test]
    fn rpc_response_at_exact_deadline_is_returned() {
        // Regression: a response whose Deliver event lands exactly on the
        // rpc deadline must be drained and returned, not dropped. With
        // jitter zeroed, latencies are exact: request delivery at +1 ms,
        // response delivery at +2 ms — so a 2 ms timeout is the edge.
        let mut sim = Sim::new(5);
        sim.net.jitter = SimDuration::ZERO;
        let n = sim.add_node("h0", "v1", Box::new(Echo));
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_millis(10));
        let resp = sim.rpc(n, Bytes::from_static(b"edge"), SimDuration::from_millis(2));
        assert_eq!(resp.as_deref(), Some(&b"edge"[..]));
        // One millisecond less and the deadline cuts the response off.
        let resp = sim.rpc(n, Bytes::from_static(b"late"), SimDuration::from_millis(1));
        assert!(resp.is_none());
        // The timed-out response is still in the inbox afterwards, not lost:
        // it can be drained once simulated time catches up.
        sim.run_for(SimDuration::from_millis(5));
        assert!(sim.node_status(n).is_running());
    }

    #[test]
    fn client_inboxes_are_fifo_and_per_handle() {
        /// Replies twice to every message: payload then "again".
        struct DoubleEcho;
        impl Process for DoubleEcho {
            fn on_start(&mut self, _: &mut Ctx<'_>) -> StepResult {
                Ok(())
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, p: &[u8]) -> StepResult {
                ctx.send(from, Bytes::copy_from_slice(p));
                ctx.send(from, Bytes::from_static(b"again"));
                Ok(())
            }
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
                Ok(())
            }
        }
        let mut sim = Sim::new(2);
        let n = sim.add_node("h", "v", Box::new(DoubleEcho));
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_millis(5));
        let h1 = sim.client_send(n, Bytes::from_static(b"one"));
        let h2 = sim.client_send(n, Bytes::from_static(b"two"));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.poll_response(h1).as_deref(), Some(&b"one"[..]));
        assert_eq!(sim.poll_response(h1).as_deref(), Some(&b"again"[..]));
        assert!(sim.poll_response(h1).is_none());
        assert_eq!(sim.poll_response(h2).as_deref(), Some(&b"two"[..]));
        assert_eq!(sim.poll_response(h2).as_deref(), Some(&b"again"[..]));
        assert!(sim.poll_response(h2).is_none());
    }

    #[test]
    fn node_host_roundtrips_through_interning() {
        let mut sim = Sim::new(1);
        let a = sim.add_node("alpha", "v1", Box::new(Echo));
        let b = sim.add_node("beta", "v1", Box::new(Echo));
        // Same host, second node: same interned id.
        let a2 = sim.add_node("alpha", "v2", Box::new(Echo));
        assert_eq!(sim.node_host(a), "alpha");
        assert_eq!(sim.node_host(b), "beta");
        assert_eq!(sim.node_host_id(a), sim.node_host_id(a2));
        assert_ne!(sim.node_host_id(a), sim.node_host_id(b));
        assert_eq!(sim.node_host_id(99), None);
        assert_eq!(sim.node_host(99), "");
        // Interning is idempotent: `host_id` returns the id the node slot
        // already carries, and both address the same bytes.
        let id = sim.host_id("alpha");
        assert_eq!(sim.node_host_id(a), Some(id));
        sim.host_storage_by_id(id).write("f", b"x".to_vec());
        assert_eq!(
            sim.host_storage_by_id_ref(id).unwrap().read("f"),
            Some(&b"x"[..])
        );
    }

    /// Ping-pongs with a peer forever, re-arming a keepalive timer so the
    /// volley survives injected message drops.
    struct KeepalivePinger(NodeId);
    impl Process for KeepalivePinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
            ctx.send(Endpoint::Node(self.0), Bytes::from_static(b"p"));
            ctx.set_timer(SimDuration::from_millis(50), 0);
            Ok(())
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _: &[u8]) -> StepResult {
            ctx.send(from, Bytes::from_static(b"p"));
            Ok(())
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) -> StepResult {
            ctx.send(Endpoint::Node(self.0), Bytes::from_static(b"p"));
            ctx.set_timer(SimDuration::from_millis(50), 0);
            Ok(())
        }
    }

    fn pinger_pair(seed: u64) -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("fa", "v", Box::new(KeepalivePinger(1)));
        let b = sim.add_node("fb", "v", Box::new(KeepalivePinger(0)));
        sim.start_node(a).unwrap();
        sim.start_node(b).unwrap();
        (sim, a, b)
    }

    #[test]
    fn full_drop_plan_silences_node_traffic_but_not_clients() {
        let (mut sim, a, _) = pinger_pair(11);
        sim.run_for(SimDuration::from_secs(1));
        let mut plan = FaultPlan::new(99);
        plan.drop_probability = 1.0;
        sim.install_fault_plan(plan);
        // Messages already in flight at install time keep their fate; let
        // them drain before measuring.
        sim.run_for(SimDuration::from_millis(100));
        let before = sim.messages_delivered();
        sim.run_for(SimDuration::from_secs(2));
        // Timers still fire and send, but every node-to-node message drops.
        assert_eq!(sim.messages_delivered(), before);
        assert!(sim.faults_injected() > 0);
        // Client RPCs are exempt from injected faults end to end — but the
        // Echo reply path here is a Pinger, which replies to the client too.
        let resp = sim.rpc(a, Bytes::from_static(b"x"), SimDuration::from_secs(1));
        assert!(resp.is_some(), "client traffic must never be faulted");
    }

    /// Sends to a peer on a timer and ignores incoming messages. The
    /// duplicate test needs this: a node that *replies* to every delivery
    /// would turn `duplicate_probability = 0.5` into a supercritical
    /// branching process (1.5 expected deliveries, each spawning a reply)
    /// and the run would never drain.
    struct TickSender(NodeId);
    impl Process for TickSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
            ctx.set_timer(SimDuration::from_millis(20), 0);
            Ok(())
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: &[u8]) -> StepResult {
            Ok(())
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) -> StepResult {
            ctx.send(Endpoint::Node(self.0), Bytes::from_static(b"p"));
            ctx.set_timer(SimDuration::from_millis(20), 0);
            Ok(())
        }
    }

    fn ticker_pair(seed: u64) -> Sim {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("fa", "v", Box::new(TickSender(1)));
        let b = sim.add_node("fb", "v", Box::new(TickSender(0)));
        sim.start_node(a).unwrap();
        sim.start_node(b).unwrap();
        sim
    }

    #[test]
    fn duplicate_plan_inflates_deliveries_deterministically() {
        let run = |seed: u64| {
            let mut sim = ticker_pair(5);
            let mut plan = FaultPlan::new(seed);
            plan.duplicate_probability = 0.5;
            sim.install_fault_plan(plan);
            sim.run_for(SimDuration::from_secs(5));
            (
                sim.messages_delivered(),
                sim.events_processed(),
                sim.faults_injected(),
            )
        };
        let baseline = {
            let mut sim = ticker_pair(5);
            sim.run_for(SimDuration::from_secs(5));
            sim.messages_delivered()
        };
        let (delivered, _, injected) = run(77);
        assert!(injected > 0);
        assert!(
            delivered > baseline,
            "duplicates should inflate deliveries: {delivered} vs {baseline}"
        );
        assert_eq!(run(77), run(77), "same plan seed must replay identically");
        assert_ne!(run(77).2, run(78).2, "different plan seeds should diverge");
    }

    #[test]
    fn scheduled_crash_and_restart_round_trip() {
        let (mut sim, a, b) = pinger_pair(2);
        let plan = FaultPlan::new(1)
            .schedule(SimTime::from_millis(500), FaultKind::Crash(a))
            .schedule(SimTime::from_millis(1500), FaultKind::Restart(a));
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node_status(a), NodeStatus::Crashed);
        assert!(sim.is_fault_crashed(a));
        assert!(!sim.is_fault_crashed(b));
        assert_eq!(sim.crash_reason(a), Some(FAULT_CRASH_REASON));
        assert!(sim.take_pending_restart().is_none(), "restart not due yet");
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.take_pending_restart(), Some(a));
        assert_eq!(sim.take_pending_restart(), None);
        // The harness re-installs and restarts; the slot works again.
        sim.install(a, "v2", Box::new(KeepalivePinger(b))).unwrap();
        sim.start_node(a).unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.node_status(a).is_running());
        assert!(!sim.is_fault_crashed(a));
    }

    #[test]
    fn restart_of_genuinely_crashed_node_is_refused() {
        let mut sim = Sim::new(4);
        let n = started_echo(&mut sim);
        sim.rpc(n, Bytes::from_static(b"die"), SimDuration::from_secs(1));
        assert_eq!(sim.node_status(n), NodeStatus::Crashed);
        let plan = FaultPlan::new(1).schedule(SimTime::ZERO, FaultKind::Restart(n));
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_secs(1));
        assert!(
            sim.take_pending_restart().is_none(),
            "fault plan must not resurrect a genuine crash"
        );
        assert!(!sim.is_fault_crashed(n));
    }

    #[test]
    fn scheduled_partition_blocks_and_heal_restores() {
        let (mut sim, a, b) = pinger_pair(6);
        let plan = FaultPlan::new(3)
            .schedule(SimTime::from_millis(1000), FaultKind::Partition(a, b))
            .schedule(SimTime::from_millis(3000), FaultKind::HealAll);
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_millis(1500));
        assert!(sim.net.is_partitioned(a, b));
        let during = sim.messages_delivered();
        sim.run_for(SimDuration::from_millis(1000));
        // Keepalive sends continue but nothing crosses the cut.
        assert_eq!(sim.messages_delivered(), during);
        sim.run_for(SimDuration::from_secs(2));
        assert!(!sim.net.is_partitioned(a, b));
        assert!(sim.messages_delivered() > during, "traffic resumes on heal");
        assert_eq!(sim.faults_injected(), 2);
    }

    #[test]
    fn replacing_a_plan_neutralizes_the_old_schedule() {
        let (mut sim, a, _) = pinger_pair(8);
        sim.install_fault_plan(
            FaultPlan::new(1).schedule(SimTime::from_millis(2000), FaultKind::Crash(a)),
        );
        // Replace before the crash fires; the stale event must be inert.
        sim.install_fault_plan(FaultPlan::new(2));
        sim.run_for(SimDuration::from_secs(3));
        assert!(sim.node_status(a).is_running());
        assert_eq!(sim.faults_injected(), 0);
        assert!(sim.fault_plan().is_some());
    }

    #[test]
    fn event_budget_halts_the_run() {
        let (mut sim, a, b) = pinger_pair(9);
        sim.run_for(SimDuration::from_millis(100));
        assert!(!sim.budget_exhausted());
        sim.set_event_budget(50);
        sim.run_for(SimDuration::from_secs(60));
        assert!(sim.budget_exhausted());
        assert!(sim.peek_time().is_none(), "exhausted budget hides events");
        assert!(!sim.step(), "exhausted budget refuses to step");
        // Time still advanced to the deadline; nodes are untouched.
        assert_eq!(sim.now().as_millis(), 60_100);
        assert!(sim.node_status(a).is_running());
        assert!(sim.node_status(b).is_running());
    }

    /// Appends to a WAL on every timer tick without flushing.
    struct LazyWriter;
    impl Process for LazyWriter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
            ctx.set_timer(SimDuration::from_millis(10), 0);
            Ok(())
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Endpoint, _: &[u8]) -> StepResult {
            Ok(())
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) -> StepResult {
            ctx.storage().append("wal", b"record;");
            ctx.set_timer(SimDuration::from_millis(10), 0);
            Ok(())
        }
    }

    #[test]
    fn mid_upgrade_crash_point_fires_between_stop_and_boot() {
        let mut sim = Sim::new(21);
        let n = sim.add_node("h", "v1", Box::new(LazyWriter));
        let h = sim.host_id("h");
        sim.start_node(n).unwrap();
        let mut plan = FaultPlan::new(5).crash_point(
            n,
            CrashPointKind::MidUpgrade,
            SimTime::ZERO,
            SimTime::from_millis(60_000),
        );
        plan.durability = crate::Durability::Buffered;
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.host_storage_by_id_ref(h).unwrap().has_unflushed());
        // The stop-for-upgrade becomes a crash: old version down, host dies
        // before the new version boots.
        sim.stop_node(n).unwrap();
        assert_eq!(sim.node_status(n), NodeStatus::Crashed);
        assert!(sim.is_fault_crashed(n));
        assert!(sim.faults_injected() > 0);
        // The recovery image is crash-consistent (materialized, not dirty).
        assert!(!sim.host_storage_by_id_ref(h).unwrap().has_unflushed());
        // The upgrade continues from the crashed slot.
        sim.install(n, "v2", Box::new(LazyWriter)).unwrap();
        sim.start_node(n).unwrap();
        sim.run_for(SimDuration::from_millis(100));
        assert!(sim.node_status(n).is_running());
        // A second stop finds the point consumed: graceful, and flushed.
        sim.stop_node(n).unwrap();
        assert_eq!(sim.node_status(n), NodeStatus::Stopped);
        assert!(!sim.host_storage_by_id_ref(h).unwrap().has_unflushed());
    }

    #[test]
    fn unflushed_write_crash_point_crashes_and_schedules_restart() {
        let mut sim = Sim::new(22);
        let n = sim.add_node("h", "v1", Box::new(LazyWriter));
        let h = sim.host_id("h");
        sim.start_node(n).unwrap();
        let mut plan = FaultPlan::new(6).crash_point(
            n,
            CrashPointKind::UnflushedWrite,
            SimTime::from_millis(100),
            SimTime::from_millis(60_000),
        );
        plan.durability = crate::Durability::Torn;
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.node_status(n), NodeStatus::Crashed);
        assert!(sim.is_fault_crashed(n));
        assert!(sim.take_pending_restart().is_none(), "restart not due yet");
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(sim.take_pending_restart(), Some(n));
        // The torn image holds a prefix of the append stream.
        let wal = sim.host_storage_by_id_ref(h).unwrap().read("wal");
        if let Some(bytes) = wal {
            let full: Vec<u8> = b"record;".repeat(64);
            assert!(full.starts_with(bytes), "torn WAL is not a write prefix");
        }
    }

    #[test]
    fn graceful_stop_flushes_buffered_storage() {
        let mut sim = Sim::new(23);
        let n = sim.add_node("h", "v1", Box::new(LazyWriter));
        let h = sim.host_id("h");
        sim.start_node(n).unwrap();
        let mut plan = FaultPlan::new(7);
        plan.durability = crate::Durability::Torn;
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_secs(1));
        let written = sim
            .host_storage_by_id_ref(h)
            .unwrap()
            .read("wal")
            .unwrap()
            .to_vec();
        assert!(sim.host_storage_by_id_ref(h).unwrap().has_unflushed());
        sim.stop_node(n).unwrap();
        assert_eq!(sim.node_status(n), NodeStatus::Stopped);
        // The clean shutdown synced everything: nothing at risk, bytes intact.
        let storage = sim.host_storage_by_id_ref(h).unwrap();
        assert!(!storage.has_unflushed());
        assert_eq!(storage.read("wal"), Some(&written[..]));
        assert_eq!(storage.read_durable("wal"), Some(&written[..]));
    }

    #[test]
    fn trace_lineage_links_request_to_crash() {
        let mut sim = Sim::new(31);
        sim.enable_trace(TraceConfig::default());
        let n = started_echo(&mut sim);
        sim.rpc(n, Bytes::from_static(b"die"), SimDuration::from_secs(1));
        assert_eq!(sim.node_status(n), NodeStatus::Crashed);
        let anchor = sim.trace_observe(Some(n));
        let trace = sim.trace().unwrap();
        assert!(trace.events_recorded() > 0);
        let slice = trace.slice(anchor);
        assert!(!slice.is_empty());
        // The chain ends at the observation and passes through the fatal
        // delivery and the client request that caused it.
        let kinds: Vec<String> = slice.lineage.iter().map(|e| e.kind.to_string()).collect();
        assert_eq!(
            kinds.last().map(String::as_str),
            Some(format!("observation node-{n}").as_str()),
            "{kinds:?}"
        );
        assert!(
            kinds.iter().any(|k| k.starts_with("node-crash")),
            "{kinds:?}"
        );
        assert!(
            kinds
                .iter()
                .any(|k| k.starts_with("deliver client-0->node-0")),
            "{kinds:?}"
        );
        assert!(
            kinds.iter().any(|k| k.starts_with("client-request")),
            "{kinds:?}"
        );
    }

    #[test]
    fn traces_replay_byte_identically_for_a_seed() {
        fn traced_run(seed: u64) -> String {
            let mut sim = Sim::new(seed);
            sim.enable_trace(TraceConfig::default());
            let (a, b) = {
                let a = sim.add_node("fa", "v", Box::new(KeepalivePinger(1)));
                let b = sim.add_node("fb", "v", Box::new(KeepalivePinger(0)));
                (a, b)
            };
            sim.start_node(a).unwrap();
            sim.start_node(b).unwrap();
            let mut plan = FaultPlan::new(seed);
            plan.drop_probability = 0.05;
            plan.duplicate_probability = 0.05;
            plan.delay_probability = 0.05;
            sim.install_fault_plan(plan);
            sim.run_for(SimDuration::from_secs(5));
            let anchor = sim.trace_observe(None);
            sim.trace().unwrap().slice(anchor).render_timeline()
        }
        assert_eq!(traced_run(42), traced_run(42));
        assert_ne!(traced_run(42), traced_run(43));
    }

    #[test]
    fn disabled_trace_records_nothing_and_observe_returns_zero() {
        let mut sim = Sim::new(1);
        let n = started_echo(&mut sim);
        sim.rpc(n, Bytes::from_static(b"x"), SimDuration::from_secs(1));
        assert!(sim.trace().is_none());
        assert_eq!(sim.trace_observe(Some(n)), 0);
    }

    #[test]
    fn messages_to_stopped_nodes_vanish() {
        let mut sim = Sim::new(1);
        let n = started_echo(&mut sim);
        sim.stop_node(n).unwrap();
        let resp = sim.rpc(
            n,
            Bytes::from_static(b"hello"),
            SimDuration::from_millis(100),
        );
        assert!(resp.is_none());
    }

    /// A forkable keepalive pinger for snapshot tests: same traffic shape as
    /// [`KeepalivePinger`], plus a payload counter so process state matters.
    #[derive(Clone)]
    struct ForkPinger {
        peer: NodeId,
        sent: u64,
    }
    impl ForkPinger {
        fn new(peer: NodeId) -> Self {
            ForkPinger { peer, sent: 0 }
        }
    }
    impl Process for ForkPinger {
        fn fork(&self) -> Option<Box<dyn Process>> {
            Some(Box::new(self.clone()))
        }
        fn restore_from(&mut self, src: &dyn Process) -> bool {
            let any: &dyn std::any::Any = src;
            match any.downcast_ref::<Self>() {
                Some(other) => {
                    self.clone_from(other);
                    true
                }
                None => false,
            }
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
            ctx.set_timer(SimDuration::from_millis(40), 0);
            Ok(())
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, p: &[u8]) -> StepResult {
            if let Endpoint::Client(_) = from {
                ctx.send(from, Bytes::copy_from_slice(p));
            }
            Ok(())
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) -> StepResult {
            self.sent += 1;
            ctx.storage().append("pings", b"x");
            ctx.send(
                Endpoint::Node(self.peer),
                Bytes::copy_from_slice(&self.sent.to_be_bytes()),
            );
            ctx.set_timer(SimDuration::from_millis(40), 0);
            Ok(())
        }
    }

    /// Boots a traced, faulted two-node ForkPinger world and runs the shared
    /// "prefix" for one second.
    fn forkable_world(seed: u64) -> Sim {
        let mut sim = Sim::new(seed);
        sim.enable_trace(TraceConfig::default());
        let a = sim.add_node("fa", "v", Box::new(ForkPinger::new(1)));
        let b = sim.add_node("fb", "v", Box::new(ForkPinger::new(0)));
        sim.start_node(a).unwrap();
        sim.start_node(b).unwrap();
        let mut plan = FaultPlan::new(seed ^ 0x5EED);
        plan.drop_probability = 0.1;
        plan.delay_probability = 0.1;
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_secs(1));
        sim
    }

    /// Runs a divergent "suffix" and fingerprints every observable channel.
    fn suffix_fingerprint(sim: &mut Sim) -> String {
        sim.net.partition(0, 1);
        sim.run_for(SimDuration::from_millis(300));
        sim.net.heal_all();
        sim.run_for(SimDuration::from_millis(700));
        let resp = sim.rpc(0, Bytes::from_static(b"probe"), SimDuration::from_secs(1));
        let anchor = sim.trace_observe(Some(1));
        let slice = sim.trace().unwrap().slice(anchor).render_timeline();
        format!(
            "events={} delivered={} faults={} resp={:?}\nLOGS\n{}\nTRACE\n{}",
            sim.events_processed(),
            sim.messages_delivered(),
            sim.faults_injected(),
            resp,
            sim.logs().render(),
            slice,
        )
    }

    #[test]
    fn snapshot_requires_forkable_processes() {
        let mut sim = Sim::new(1);
        let _ = started_echo(&mut sim); // Echo does not implement fork.
        assert!(sim.snapshot().is_none());
        // Stopping the node removes the unforkable process: snapshot works.
        sim.stop_node(0).unwrap();
        assert!(sim.snapshot().is_some());
    }

    #[test]
    fn restore_equals_fresh_byte_for_byte() {
        // The reference: a fresh world driven straight through.
        let mut fresh = forkable_world(77);
        let want = suffix_fingerprint(&mut fresh);

        // Snapshot at the fork point, run the suffix, restore, run it again:
        // both runs must match the fresh run byte for byte.
        let mut sim = forkable_world(77);
        let snap = sim.snapshot().expect("world is forkable");
        assert_eq!(snap.taken_at(), sim.now());
        let first = suffix_fingerprint(&mut sim);
        assert_eq!(first, want, "suffix after snapshot capture diverged");
        for round in 0..3 {
            sim.restore(&snap);
            let again = suffix_fingerprint(&mut sim);
            assert_eq!(again, want, "restored suffix diverged (round {round})");
        }

        // Restoring into a cold, unrelated simulator works too.
        let mut cold = Sim::new(0);
        cold.restore(&snap);
        assert_eq!(suffix_fingerprint(&mut cold), want);
    }

    #[test]
    fn snapshot_into_reuses_the_buffer() {
        let mut sim = forkable_world(5);
        let mut snap = SimSnapshot::new();
        assert!(sim.snapshot_into(&mut snap));
        let want = suffix_fingerprint(&mut sim);
        sim.restore(&snap);
        // Re-capture over the warm buffer mid-flight, then keep using it.
        sim.run_for(SimDuration::from_millis(100));
        assert!(sim.snapshot_into(&mut snap));
        sim.restore(&snap);
        sim.restore(&snap); // Double restore is idempotent.
        assert_eq!(sim.now(), snap.taken_at());
        // The original pre-capture suffix is gone; the recaptured world
        // replays its own suffix deterministically.
        let a = suffix_fingerprint(&mut sim);
        sim.restore(&snap);
        let b = suffix_fingerprint(&mut sim);
        assert_eq!(a, b);
        assert_ne!(a, want, "recapture at a later time must change the run");
    }

    #[test]
    fn reseed_forks_divergent_but_reproducible_suffixes() {
        let mut sim = forkable_world(9);
        let snap = sim.snapshot().unwrap();

        let mut fp = |seed: u64| {
            sim.restore(&snap);
            sim.reseed(seed);
            suffix_fingerprint(&mut sim)
        };
        let s1 = fp(101);
        let s2 = fp(202);
        assert_ne!(s1, s2, "different fork seeds must diverge");
        assert_eq!(fp(101), s1, "same fork seed must replay identically");
        assert_eq!(fp(202), s2);
    }

    #[test]
    fn restore_discards_post_snapshot_state() {
        let mut sim = forkable_world(13);
        let snap = sim.snapshot().unwrap();
        let want = suffix_fingerprint(&mut sim);

        // Wreck the world after the snapshot: crash a node, add another,
        // issue clients, install a new plan. Restore must erase all of it.
        sim.kill_node(0).unwrap();
        let extra = sim.add_node("extra", "vx", Box::new(ForkPinger::new(0)));
        sim.start_node(extra).unwrap();
        let mut plan = FaultPlan::new(999);
        plan.drop_probability = 1.0;
        sim.install_fault_plan(plan);
        sim.run_for(SimDuration::from_secs(2));
        let h = sim.client_send(1, Bytes::from_static(b"junk"));
        sim.run_for(SimDuration::from_secs(1));
        let _ = sim.poll_response(h);

        sim.restore(&snap);
        assert_eq!(sim.node_count(), 2);
        assert_eq!(suffix_fingerprint(&mut sim), want);
    }
}
