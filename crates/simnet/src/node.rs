//! Node slots: the simulation analog of DUPTester's containers.
//!
//! A slot binds a host name (and therefore persistent storage) to a sequence
//! of process *generations*. Upgrading a node replaces the process while the
//! slot — and its storage — persists, exactly like replacing a container that
//! shares a host directory (paper §6.1.1).

use crate::process::Process;
use crate::rng::SimRng;
use crate::storage::HostId;
use std::fmt;

/// Lifecycle state of a node slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeStatus {
    /// Added but never started, or awaiting a scheduled start.
    Idle,
    /// Start scheduled; will transition to `Running` when the start event fires.
    Starting,
    /// Process is live and receiving events.
    Running,
    /// Stopped gracefully (by the harness or by the process itself).
    Stopped,
    /// Terminated by a fatal error, a panic, or a hard kill.
    Crashed,
}

impl NodeStatus {
    /// Returns `true` for `Running`.
    pub fn is_running(self) -> bool {
        self == NodeStatus::Running
    }
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeStatus::Idle => "idle",
            NodeStatus::Starting => "starting",
            NodeStatus::Running => "running",
            NodeStatus::Stopped => "stopped",
            NodeStatus::Crashed => "crashed",
        };
        f.write_str(s)
    }
}

/// Per-node traffic counters, used by performance-degradation oracles
/// (e.g. the CASSANDRA-13441 schema-migration storm).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Node-to-node and client messages delivered to this node.
    pub messages_received: u64,
    /// Messages this node sent (before any loss).
    pub messages_sent: u64,
    /// Timer events dispatched to this node.
    pub timers_fired: u64,
}

/// One container slot in the simulated cluster.
///
/// The slot stores the *interned* host id, not the host name: the event
/// loop reaches storage by `Vec` index, and the name is recoverable from the
/// [`crate::StorageMap`] at the API edge.
pub(crate) struct NodeSlot {
    pub host: HostId,
    pub version_label: String,
    pub process: Option<Box<dyn Process>>,
    pub status: NodeStatus,
    pub generation: u64,
    pub rng: SimRng,
    pub crash_reason: Option<String>,
    pub metrics: NodeMetrics,
}

impl fmt::Debug for NodeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeSlot")
            .field("host", &self.host)
            .field("version", &self.version_label)
            .field("status", &self.status)
            .field("generation", &self.generation)
            .field("crash_reason", &self.crash_reason)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display_and_predicates() {
        assert_eq!(NodeStatus::Running.to_string(), "running");
        assert_eq!(NodeStatus::Crashed.to_string(), "crashed");
        assert!(NodeStatus::Running.is_running());
        assert!(!NodeStatus::Stopped.is_running());
    }

    #[test]
    fn metrics_default_to_zero() {
        let m = NodeMetrics::default();
        assert_eq!(m.messages_received, 0);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.timers_fired, 0);
    }
}
