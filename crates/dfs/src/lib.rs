//! # dup-dfs — a miniature versioned HDFS
//!
//! A master/worker distributed filesystem (node 0 = NameNode, others =
//! DataNodes) built as a DUPTester subject. Nine releases (0.20.0 → 3.3.0)
//! re-create the studied HDFS upgrade failures:
//!
//! | Seeded bug | Pair | Mechanism |
//! |---|---|---|
//! | HDFS-1936  | 0.20 → 1.0 | LayoutVersion bumped to a compression-implying value without implementing compression |
//! | HDFS-5988  | 1.0 → 2.0 | fsimage loaded without populating the inode map; the re-checkpointed image is unreadable — all files lost |
//! | HDFS-8676  | 2.6 → 2.7 | synchronous trash purge at upgrade finalization stalls heartbeats past the dead timeout |
//! | HDFS-11856 | 2.7 → 2.8 rolling | a DataNode restarting longer than the tolerance window is marked bad *permanently* (Figure 1 of the paper) |
//! | HDFS-14726 | 3.1 → 3.2 rolling | `required committedTxnId` added to the heartbeat; the upgraded NameNode crashes on old heartbeats |
//! | HDFS-15624 | 3.2 → 3.3 rolling | `NVDIMM` inserted mid-enum shifts `ARCHIVE`; old reports are read as NVDIMM and the DataNodes get excluded |
//!
//! Clean pairs (2.0 → 2.6 and 2.8 → 3.1) are controls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod node;
mod sut;

pub use crate::node::{
    DataNode, NameNode, DEAD_TIMEOUT, HEARTBEAT_INTERVAL, RESTART_TOLERANCE, TRASH_PURGE_PER_BLOCK,
};
pub use crate::sut::DfsSystem;
