//! Version-specific formats of the mini HDFS: the fsimage checkpoint and the
//! DataNode heartbeat/block-report message.
//!
//! The format history re-creates the studied HDFS bugs:
//!
//! - **HDFS-1936**: release 0.20 stamps its fsimage with LayoutVersion 31 —
//!   a version that implies compression — but writes it uncompressed. Its
//!   own feature-unaware reader doesn't care; every later reader does.
//! - **HDFS-5988**: LayoutVersion ≥ 40 images carry inode ids. Release 2.0
//!   loads older images *without* populating the inode map, checkpoints in
//!   its own format (silently inode-less), and can never load the result.
//! - **HDFS-14726**: release 3.2 adds a `required committedTxnId` to the
//!   heartbeat — old heartbeats stop parsing.
//! - **HDFS-15624**: release 3.3 inserts `NVDIMM` mid-enum, shifting
//!   `ARCHIVE` from 2 to 3; a 3.2 DataNode's `ARCHIVE` report reads as
//!   `NVDIMM` on a 3.3 NameNode.

use dup_core::VersionId;
use dup_wire::{
    proto, EnumDescriptor, FieldDescriptor, FieldType, Frame, MessageDescriptor, MessageValue,
    Schema, Value, WireError,
};

/// Marker byte prefixed to compressed fsimage bodies.
pub const COMPRESSION_MARKER: u8 = 0xC0;
/// LayoutVersions at or above this are expected to be compressed (HDFS-1936).
pub const COMPRESSED_SINCE_LV: u32 = 24;
/// LayoutVersions at or above this carry inode ids (HDFS-5988).
pub const INODES_SINCE_LV: u32 = 40;

/// The LayoutVersion each release writes.
///
/// 0.20's value is the HDFS-1936 bug: it was bumped to 31 (a
/// compression-implying version) without implementing compression.
pub fn layout_version(v: VersionId) -> u32 {
    match (v.major, v.minor) {
        (0, 20) => 31,
        (1, 0) => 32,
        (2, 0) => 40,
        (2, 6) => 60,
        (2, 7) => 61,
        (2, 8) => 62,
        (3, 1) => 64,
        (3, 2) => 65,
        _ => 66, // 3.3
    }
}

/// One file in the namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Absolute path.
    pub path: String,
    /// Block ids (one block per file in the mini system).
    pub blocks: Vec<u64>,
    /// Inode id; 0 means "not populated" — the HDFS-5988 hole.
    pub inode: u64,
}

/// The NameNode namespace as checkpointed in an fsimage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Namespace {
    /// Files by declaration order.
    pub files: Vec<FileEntry>,
    /// Next inode id to assign.
    pub next_inode: u64,
    /// Next block id to assign.
    pub next_block: u64,
}

fn fsimage_schema() -> Schema {
    Schema::new()
        .with_message(
            MessageDescriptor::new("FsImage")
                .with(FieldDescriptor::repeated(
                    1,
                    "files",
                    FieldType::Message("FileEntry".into()),
                ))
                .with(FieldDescriptor::required(
                    2,
                    "next_inode",
                    FieldType::Uint64,
                ))
                .with(FieldDescriptor::required(
                    3,
                    "next_block",
                    FieldType::Uint64,
                )),
        )
        .with_message(
            MessageDescriptor::new("FileEntry")
                .with(FieldDescriptor::required(1, "path", FieldType::Str))
                .with(FieldDescriptor::repeated(2, "blocks", FieldType::Uint64))
                .with(FieldDescriptor::optional(3, "inode", FieldType::Uint64)),
        )
}

/// Serializes `ns` as release `v` would: stamped with `v`'s LayoutVersion,
/// compressed iff the release actually implements compression, inodes
/// written only when populated.
pub fn encode_fsimage(v: VersionId, ns: &Namespace) -> Result<Vec<u8>, WireError> {
    let lv = layout_version(v);
    let schema = fsimage_schema();
    let mut img = MessageValue::new("FsImage")
        .set("next_inode", Value::U64(ns.next_inode.max(1)))
        .set("next_block", Value::U64(ns.next_block.max(1)));
    for f in &ns.files {
        let mut e = MessageValue::new("FileEntry").set("path", Value::Str(f.path.clone()));
        for b in &f.blocks {
            e.push_mut("blocks", Value::U64(*b));
        }
        if lv >= INODES_SINCE_LV && f.inode != 0 {
            e.put("inode", Value::U64(f.inode));
        }
        img.push_mut("files", Value::Msg(e));
    }
    let mut body = proto::encode(&schema, &img)?;
    // HDFS-1936: 0.20 claims LayoutVersion 31 but never compresses.
    let implements_compression = lv >= COMPRESSED_SINCE_LV && !(v.major == 0 && v.minor == 20);
    if implements_compression {
        body.insert(0, COMPRESSION_MARKER);
    }
    Ok(Frame::new(lv, "fsimage", body).encode().to_vec())
}

/// Errors loading an fsimage; each variant is a distinct studied failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsImageError {
    /// The LayoutVersion promises compression the body lacks (HDFS-1936).
    ExpectedCompression {
        /// The offending LayoutVersion.
        layout: u32,
    },
    /// A LayoutVersion ≥ 40 image contains a file without an inode (HDFS-5988).
    MissingInode {
        /// The path with no inode.
        path: String,
    },
    /// Underlying wire error.
    Wire(WireError),
}

impl std::fmt::Display for FsImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsImageError::ExpectedCompression { layout } => {
                write!(
                    f,
                    "fsimage with LayoutVersion {layout} must be compressed but is not"
                )
            }
            FsImageError::MissingInode { path } => {
                write!(f, "fsimage corrupt: no inode found for file {path}")
            }
            FsImageError::Wire(e) => write!(f, "fsimage parse error: {e}"),
        }
    }
}

impl std::error::Error for FsImageError {}

/// A decoded fsimage plus its writer's LayoutVersion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedImage {
    /// The namespace.
    pub namespace: Namespace,
    /// LayoutVersion the image was written with.
    pub layout: u32,
}

/// Loads an fsimage as release `v` would.
///
/// Version-specific behaviour:
/// - 0.20's reader is feature-unaware and never expects compression;
/// - readers ≥ 1.0 enforce the compression feature implied by the layout;
/// - a reader with inode support loading an *older* (< 40) image either
///   skips the inode map (2.0 — the HDFS-5988 bug) or assigns fresh inodes
///   (2.6+ — the fix);
/// - a reader with inode support loading a ≥ 40 image requires every file to
///   carry an inode.
pub fn decode_fsimage(v: VersionId, bytes: &[u8]) -> Result<DecodedImage, FsImageError> {
    let frame = Frame::decode(bytes).map_err(FsImageError::Wire)?;
    let layout = frame.version;
    let own_lv = layout_version(v);
    let feature_aware = !(v.major == 0 && v.minor == 20);
    let mut body: &[u8] = &frame.body;
    if layout >= COMPRESSED_SINCE_LV && feature_aware {
        match body.first() {
            Some(&COMPRESSION_MARKER) => body = &body[1..],
            _ => return Err(FsImageError::ExpectedCompression { layout }),
        }
    } else if body.first() == Some(&COMPRESSION_MARKER) {
        body = &body[1..];
    }
    let schema = fsimage_schema();
    let img = proto::decode(&schema, "FsImage", body).map_err(FsImageError::Wire)?;
    let mut ns = Namespace {
        files: Vec::new(),
        next_inode: img.get_u64("next_inode").map_err(FsImageError::Wire)?,
        next_block: img.get_u64("next_block").map_err(FsImageError::Wire)?,
    };
    for fv in img.get_all("files") {
        let Value::Msg(fv) = fv else { continue };
        let path = fv.get_str("path").map_err(FsImageError::Wire)?.to_string();
        let blocks = fv
            .get_all("blocks")
            .iter()
            .filter_map(|b| {
                if let Value::U64(v) = b {
                    Some(*v)
                } else {
                    None
                }
            })
            .collect();
        let inode = fv.get_u64("inode").unwrap_or(0);
        ns.files.push(FileEntry {
            path,
            blocks,
            inode,
        });
    }
    if own_lv >= INODES_SINCE_LV {
        if layout >= INODES_SINCE_LV {
            // Same-era image: inodes are mandatory.
            if let Some(f) = ns.files.iter().find(|f| f.inode == 0) {
                return Err(FsImageError::MissingInode {
                    path: f.path.clone(),
                });
            }
        } else if v.major == 2 && v.minor == 0 {
            // HDFS-5988: 2.0 "proceeds to load and parse the fsimage ...
            // except that it skips populating the inode map".
        } else {
            // The fix (2.6+): assign fresh inodes while converting.
            for f in &mut ns.files {
                if f.inode == 0 {
                    f.inode = ns.next_inode;
                    ns.next_inode += 1;
                }
            }
        }
    }
    Ok(DecodedImage {
        namespace: ns,
        layout,
    })
}

/// The StorageType enum as release `v` declares it.
///
/// 3.3 inserts `NVDIMM` in the middle (HDFS-15624).
pub fn storage_type_enum(v: VersionId) -> EnumDescriptor {
    if v.major > 3 || (v.major == 3 && v.minor >= 3) {
        EnumDescriptor::new(
            "StorageType",
            &[
                ("DISK", 0),
                ("SSD", 1),
                ("NVDIMM", 2),
                ("ARCHIVE", 3),
                ("PROVIDED", 4),
            ],
        )
    } else {
        EnumDescriptor::new(
            "StorageType",
            &[("DISK", 0), ("SSD", 1), ("ARCHIVE", 2), ("PROVIDED", 3)],
        )
    }
}

/// The ARCHIVE member's number in `v`'s enum.
pub fn archive_number(v: VersionId) -> i32 {
    storage_type_enum(v)
        .number_of("ARCHIVE")
        .expect("every release declares ARCHIVE")
}

/// The heartbeat/block-report schema of release `v`.
pub fn heartbeat_schema(v: VersionId) -> Schema {
    let mut m = MessageDescriptor::new("Heartbeat")
        .with(FieldDescriptor::required(1, "node", FieldType::Uint32))
        .with(FieldDescriptor::repeated(2, "blocks", FieldType::Uint64));
    if v.major >= 3 {
        m = m.with(FieldDescriptor::repeated(
            3,
            "storages",
            FieldType::Enum("StorageType".into()),
        ));
    }
    if v.major > 3 || (v.major == 3 && v.minor >= 2) {
        // HDFS-14726: a *required* member added to a live message.
        m = m.with(FieldDescriptor::required(
            4,
            "committedTxnId",
            FieldType::Uint64,
        ));
    }
    Schema::new()
        .with_message(m)
        .with_enum(storage_type_enum(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn ns_with(inode: u64) -> Namespace {
        Namespace {
            files: vec![FileEntry {
                path: "/a".into(),
                blocks: vec![7],
                inode,
            }],
            next_inode: 5,
            next_block: 9,
        }
    }

    #[test]
    fn layout_versions_are_nondecreasing_from_1_0() {
        let vs = [
            "1.0.0", "2.0.0", "2.6.0", "2.7.0", "2.8.0", "3.1.0", "3.2.0", "3.3.0",
        ];
        for w in vs.windows(2) {
            assert!(layout_version(v(w[0])) < layout_version(v(w[1])));
        }
        // 0.20's bogus 31 is *within* the compressed range — the bug.
        assert!(layout_version(v("0.20.0")) >= COMPRESSED_SINCE_LV);
    }

    #[test]
    fn fsimage_roundtrip_same_version() {
        for ver in ["0.20.0", "1.0.0", "2.0.0", "3.3.0"] {
            let ver = v(ver);
            let bytes = encode_fsimage(ver, &ns_with(3)).unwrap();
            let back = decode_fsimage(ver, &bytes).unwrap();
            assert_eq!(back.namespace.files[0].path, "/a");
            assert_eq!(back.layout, layout_version(ver));
        }
    }

    #[test]
    fn hdfs_1936_uncompressed_image_with_compressed_layout() {
        let bytes = encode_fsimage(v("0.20.0"), &ns_with(0)).unwrap();
        // 0.20 can read its own image (feature-unaware reader)...
        assert!(decode_fsimage(v("0.20.0"), &bytes).is_ok());
        // ...but 1.0 trusts the LayoutVersion and demands compression.
        let err = decode_fsimage(v("1.0.0"), &bytes).unwrap_err();
        assert_eq!(err, FsImageError::ExpectedCompression { layout: 31 });
    }

    #[test]
    fn hdfs_5988_inode_skip_then_unreadable_checkpoint() {
        // 1.0 writes an image without inodes (layout 32 < 40).
        let old = encode_fsimage(v("1.0.0"), &ns_with(0)).unwrap();
        // 2.0 loads it but skips the inode map...
        let loaded = decode_fsimage(v("2.0.0"), &old).unwrap();
        assert_eq!(loaded.namespace.files[0].inode, 0);
        // ...checkpoints in its own format...
        let checkpoint = encode_fsimage(v("2.0.0"), &loaded.namespace).unwrap();
        // ...and can never load the result: all files are lost.
        let err = decode_fsimage(v("2.0.0"), &checkpoint).unwrap_err();
        assert_eq!(err, FsImageError::MissingInode { path: "/a".into() });
    }

    #[test]
    fn the_fix_assigns_fresh_inodes() {
        let old = encode_fsimage(v("1.0.0"), &ns_with(0)).unwrap();
        let loaded = decode_fsimage(v("2.6.0"), &old).unwrap();
        assert_ne!(loaded.namespace.files[0].inode, 0);
        let checkpoint = encode_fsimage(v("2.6.0"), &loaded.namespace).unwrap();
        assert!(decode_fsimage(v("2.6.0"), &checkpoint).is_ok());
    }

    #[test]
    fn hdfs_14726_required_txn_id_breaks_old_heartbeats() {
        let old = heartbeat_schema(v("3.1.0"));
        let hb = MessageValue::new("Heartbeat")
            .set("node", Value::U32(1))
            .push("storages", Value::Enum(0));
        let bytes = proto::encode(&old, &hb).unwrap();
        let new = heartbeat_schema(v("3.2.0"));
        let err = proto::decode(&new, "Heartbeat", &bytes).unwrap_err();
        assert!(
            matches!(err, WireError::MissingRequired { field, .. } if field == "committedTxnId")
        );
    }

    #[test]
    fn hdfs_15624_archive_shifts_to_nvdimm() {
        assert_eq!(archive_number(v("3.2.0")), 2);
        assert_eq!(archive_number(v("3.3.0")), 3);
        // A 3.2 ARCHIVE report decodes on 3.3 — as NVDIMM.
        let old = heartbeat_schema(v("3.2.0"));
        let hb = MessageValue::new("Heartbeat")
            .set("node", Value::U32(1))
            .set("committedTxnId", Value::U64(1))
            .push("storages", Value::Enum(archive_number(v("3.2.0"))));
        let bytes = proto::encode(&old, &hb).unwrap();
        let new = heartbeat_schema(v("3.3.0"));
        let decoded = proto::decode(&new, "Heartbeat", &bytes).unwrap();
        let got = decoded.get_all("storages")[0].clone();
        assert_eq!(got, Value::Enum(2));
        assert_eq!(storage_type_enum(v("3.3.0")).name_of(2), Some("NVDIMM"));
    }

    #[test]
    fn pre_3_heartbeats_have_no_storages() {
        let s = heartbeat_schema(v("2.7.0"));
        assert!(s
            .message("Heartbeat")
            .unwrap()
            .field_by_name("storages")
            .is_none());
    }
}
