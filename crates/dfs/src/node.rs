//! NameNode and DataNode processes of the mini HDFS.
//!
//! Node 0 is the NameNode; all other indices are DataNodes. Clients talk to
//! the NameNode with text commands (`WRITE`, `READ`, `DELETE`, `CHECK`, …);
//! NameNode ↔ DataNode traffic uses framed proto messages, and the fsimage
//! checkpoint uses the versioned format in [`crate::codec`].

use crate::codec::{self, archive_number, heartbeat_schema, layout_version, FileEntry, Namespace};
use dup_core::{NodeSetup, VersionId};
use dup_simnet::{Ctx, Endpoint, Fatal, Process, SimDuration, SimTime, StepResult};
use dup_wire::{proto, Frame, MessageValue, Value};
use std::collections::{BTreeMap, BTreeSet};

const TOKEN_HEARTBEAT: u64 = 1;
const TOKEN_DEAD_CHECK: u64 = 2;
const TOKEN_WRITE_BASE: u64 = 1_000_000;

/// DataNode heartbeat interval.
pub const HEARTBEAT_INTERVAL: SimDuration = SimDuration::from_millis(500);
/// How long the NameNode waits before declaring a silent DataNode dead.
pub const DEAD_TIMEOUT: SimDuration = SimDuration::from_secs(60);
/// How long a restarting DataNode is tolerated before the HDFS-11856-buggy
/// NameNode marks it bad permanently (the paper's "30 seconds", scaled).
pub const RESTART_TOLERANCE: SimDuration = SimDuration::from_secs(3);
/// Synchronous trash-purge cost per trashed block (HDFS-8676).
pub const TRASH_PURGE_PER_BLOCK: SimDuration = SimDuration::from_secs(15);
/// How long the NameNode waits for pipeline acks before answering the client.
const WRITE_ACK_DEADLINE: SimDuration = SimDuration::from_secs(2);
/// Re-replication retry backoff.
const COPY_RETRY: SimDuration = SimDuration::from_secs(5);

fn has_restart_notice(v: VersionId) -> bool {
    v >= VersionId::new(2, 7, 0)
}

/// HDFS-11856 lives in the 2.7/2.8 NameNodes; 3.1 fixed it.
fn marks_bad_permanently(v: VersionId) -> bool {
    v.major == 2 && (v.minor == 7 || v.minor == 8)
}

/// HDFS-8676: 2.7 purges trash synchronously at upgrade finalization.
fn purges_trash_synchronously(v: VersionId) -> bool {
    v.major == 2 && v.minor == 7
}

#[derive(Debug, Default, Clone)]
struct DnInfo {
    last_heartbeat: Option<SimTime>,
    dead: bool,
    permanently_bad: bool,
    restarting_since: Option<SimTime>,
    storages_ok: bool,
}

#[derive(Clone)]
struct PendingWrite {
    client: Endpoint,
    path: String,
    expected: Vec<u32>,
    acks: BTreeSet<u32>,
}

/// The master. Holds the namespace, tracks DataNodes, coordinates writes.
#[derive(Clone)]
pub struct NameNode {
    version: VersionId,
    setup: NodeSetup,
    namespace: Namespace,
    block_locations: BTreeMap<u64, BTreeSet<u32>>,
    dn: BTreeMap<u32, DnInfo>,
    pending_writes: BTreeMap<u64, PendingWrite>,
    pending_reads: BTreeMap<u64, Endpoint>,
    copy_inflight: BTreeMap<u64, SimTime>,
    started_at: SimTime,
}

impl NameNode {
    /// Creates the NameNode process for `version`.
    pub fn new(version: VersionId, setup: NodeSetup) -> Self {
        NameNode {
            version,
            setup,
            namespace: Namespace::default(),
            block_locations: BTreeMap::new(),
            dn: BTreeMap::new(),
            pending_writes: BTreeMap::new(),
            pending_reads: BTreeMap::new(),
            copy_inflight: BTreeMap::new(),
            started_at: SimTime::ZERO,
        }
    }

    fn checkpoint(&mut self, ctx: &mut Ctx<'_>) -> Result<(), Fatal> {
        let bytes = codec::encode_fsimage(self.version, &self.namespace)
            .map_err(|e| Fatal::new(format!("cannot write fsimage: {e}")))?;
        ctx.storage().write("fsimage", bytes);
        // The checkpoint is only a checkpoint once it is on disk.
        ctx.flush("fsimage");
        Ok(())
    }

    fn candidates(&mut self, ctx: &mut Ctx<'_>) -> Vec<u32> {
        let now = ctx.now();
        let mut out = Vec::new();
        let mark_bad = marks_bad_permanently(self.version);
        let mut newly_bad = Vec::new();
        for (&id, info) in &mut self.dn {
            if info.dead || info.permanently_bad || !info.storages_ok {
                continue;
            }
            if let Some(since) = info.restarting_since {
                if now.since(since) > RESTART_TOLERANCE {
                    if mark_bad {
                        // HDFS-11856: the restart outlived the tolerance
                        // window, so the DataNode is marked bad *forever*.
                        info.permanently_bad = true;
                        newly_bad.push(id);
                    }
                    continue;
                }
                continue; // Restarting but within tolerance: skip politely.
            }
            out.push(id);
        }
        for id in newly_bad {
            ctx.error(format!(
                "marking DataNode dn-{id} bad permanently: restart exceeded {RESTART_TOLERANCE}"
            ));
        }
        out
    }

    fn live_replicas(&self, block: u64) -> Vec<u32> {
        self.block_locations
            .get(&block)
            .map(|set| {
                set.iter()
                    .copied()
                    .filter(|dn| {
                        self.dn
                            .get(dn)
                            .is_some_and(|i| !i.dead && !i.permanently_bad)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn replication_target(&self) -> usize {
        2.min(self.dn.len())
    }

    fn handle_client(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, text: &str) {
        let parts: Vec<&str> = text.split_whitespace().collect();
        let reply = match parts.as_slice() {
            ["HEALTH"] => Some("OK healthy".to_string()),
            ["LS"] => {
                let names: Vec<&str> = self
                    .namespace
                    .files
                    .iter()
                    .map(|f| f.path.as_str())
                    .collect();
                Some(format!("OK {}", names.join(",")))
            }
            ["WRITE", path, data] => self.cmd_write(ctx, from, path, data),
            ["READ", path] => self.cmd_read(ctx, from, path),
            ["DELETE", path] => Some(self.cmd_delete(ctx, path)),
            ["CHECK", path] => Some(self.cmd_check(path)),
            _ => Some(format!("ERR unknown command '{text}'")),
        };
        if let Some(reply) = reply {
            ctx.send(from, reply.into_bytes().into());
        }
    }

    fn cmd_write(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: Endpoint,
        path: &str,
        data: &str,
    ) -> Option<String> {
        let targets = self.candidates(ctx);
        let targets: Vec<u32> = targets.into_iter().take(2).collect();
        if targets.is_empty() {
            ctx.error(format!("no usable DataNodes for write of {path}"));
            return Some("ERR no usable DataNodes".to_string());
        }
        let block = self.namespace.next_block.max(1);
        self.namespace.next_block = block + 1;
        let inode = self.namespace.next_inode.max(1);
        self.namespace.next_inode = inode + 1;
        self.namespace.files.retain(|f| f.path != path);
        self.namespace.files.push(FileEntry {
            path: path.to_string(),
            blocks: vec![block],
            inode,
        });
        for &dn in &targets {
            let msg = MessageValue::new("BlockWrite");
            let _ = msg; // Block writes use a hand-rolled frame; see below.
            let mut body = Vec::new();
            body.extend_from_slice(&block.to_be_bytes());
            body.extend_from_slice(data.as_bytes());
            ctx.send(
                Endpoint::Node(dn),
                Frame::new(layout_version(self.version), "block_write", body).encode(),
            );
        }
        if targets.len() < self.replication_target() {
            ctx.warn(format!("block {block} for {path} starts under-replicated"));
        }
        self.pending_writes.insert(
            block,
            PendingWrite {
                client: from,
                path: path.to_string(),
                expected: targets,
                acks: BTreeSet::new(),
            },
        );
        ctx.set_timer(WRITE_ACK_DEADLINE, TOKEN_WRITE_BASE + block);
        None // Reply deferred until acks arrive.
    }

    fn cmd_read(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, path: &str) -> Option<String> {
        let Some(file) = self.namespace.files.iter().find(|f| f.path == path) else {
            return Some("ERR not found".to_string());
        };
        let Some(&block) = file.blocks.first() else {
            return Some("OK ".to_string());
        };
        let replicas = self.live_replicas(block);
        let Some(&dn) = replicas.first() else {
            ctx.error(format!("no live replica of block {block} for {path}"));
            return Some("ERR no live replica".to_string());
        };
        self.pending_reads.insert(block, from);
        ctx.send(
            Endpoint::Node(dn),
            Frame::new(
                layout_version(self.version),
                "block_read",
                block.to_be_bytes().to_vec(),
            )
            .encode(),
        );
        None
    }

    fn cmd_delete(&mut self, ctx: &mut Ctx<'_>, path: &str) -> String {
        let Some(pos) = self.namespace.files.iter().position(|f| f.path == path) else {
            return "ERR not found".to_string();
        };
        let file = self.namespace.files.remove(pos);
        for block in file.blocks {
            if let Some(holders) = self.block_locations.remove(&block) {
                for dn in holders {
                    ctx.send(
                        Endpoint::Node(dn),
                        Frame::new(
                            layout_version(self.version),
                            "block_trash",
                            block.to_be_bytes().to_vec(),
                        )
                        .encode(),
                    );
                }
            }
        }
        "OK".to_string()
    }

    fn cmd_check(&self, path: &str) -> String {
        let Some(file) = self.namespace.files.iter().find(|f| f.path == path) else {
            return "ERR not found".to_string();
        };
        let target = self.replication_target();
        for &block in &file.blocks {
            let n = self.live_replicas(block).len();
            if n < target {
                return format!("ERR under-replicated {path} replication={n} expected={target}");
            }
        }
        format!("OK replication={target}")
    }

    fn handle_heartbeat(&mut self, ctx: &mut Ctx<'_>, from: u32, frame: &Frame) -> StepResult {
        let schema = heartbeat_schema(self.version);
        let hb = match proto::decode(&schema, "Heartbeat", &frame.body) {
            Ok(hb) => hb,
            Err(e) => {
                if self.version >= VersionId::new(3, 2, 0) {
                    // HDFS-14726: the new decoder's required field makes old
                    // heartbeats fatal.
                    return Err(Fatal::new(format!(
                        "InvalidProtocolBufferException while parsing heartbeat from dn-{from}: {e}"
                    )));
                }
                ctx.warn(format!("ignoring malformed heartbeat from dn-{from}: {e}"));
                return Ok(());
            }
        };
        let info = self.dn.entry(from).or_insert_with(|| DnInfo {
            storages_ok: true,
            ..DnInfo::default()
        });
        if info.permanently_bad {
            // The HDFS-11856 damage: a bad DataNode's re-registration is
            // ignored forever.
            return Ok(());
        }
        let was_gone = info.dead || info.restarting_since.is_some();
        info.last_heartbeat = Some(ctx.now());
        info.dead = false;
        info.restarting_since = None;

        // HDFS-15624: a 3.3 NameNode sees a 3.2 DataNode's ARCHIVE (=2) as
        // NVDIMM (=2) and refuses to place blocks on it.
        let mut storages_ok = true;
        if self.version >= VersionId::new(3, 3, 0) {
            let nvdimm = 2;
            if hb.get_all("storages").contains(&Value::Enum(nvdimm)) {
                storages_ok = false;
            }
        }
        let flipped = info.storages_ok && !storages_ok;
        info.storages_ok = storages_ok;
        if flipped {
            ctx.error(format!(
                "DataNode dn-{from} reports storage type NVDIMM, which is not supported for \
                 block placement; excluding it"
            ));
        }
        if was_gone {
            ctx.info(format!("DataNode dn-{from} re-registered"));
        }
        for b in hb.get_all("blocks") {
            if let Value::U64(b) = b {
                self.block_locations.entry(*b).or_default().insert(from);
            }
        }
        Ok(())
    }

    fn rereplicate(&mut self, ctx: &mut Ctx<'_>) {
        let target = self.replication_target();
        let now = ctx.now();
        let alive: Vec<u32> = self
            .dn
            .iter()
            .filter(|(_, i)| !i.dead && !i.permanently_bad && i.restarting_since.is_none())
            .map(|(&id, _)| id)
            .collect();
        let blocks: Vec<u64> = self.block_locations.keys().copied().collect();
        for block in blocks {
            let replicas = self.live_replicas(block);
            if replicas.len() >= target || replicas.is_empty() {
                continue;
            }
            if self
                .copy_inflight
                .get(&block)
                .is_some_and(|t| now.since(*t) < COPY_RETRY)
            {
                continue;
            }
            let Some(&dest) = alive.iter().find(|d| !replicas.contains(d)) else {
                continue;
            };
            let holder = replicas[0];
            self.copy_inflight.insert(block, now);
            let mut body = Vec::new();
            body.extend_from_slice(&block.to_be_bytes());
            body.extend_from_slice(&dest.to_be_bytes());
            ctx.send(
                Endpoint::Node(holder),
                Frame::new(layout_version(self.version), "block_copy", body).encode(),
            );
        }
    }
}

impl Process for NameNode {
    fn fork(&self) -> Option<Box<dyn Process>> {
        Some(Box::new(self.clone()))
    }

    fn restore_from(&mut self, src: &dyn Process) -> bool {
        let any: &dyn std::any::Any = src;
        match any.downcast_ref::<Self>() {
            Some(other) => {
                self.clone_from(other);
                true
            }
            None => false,
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        self.started_at = ctx.now();
        let own_lv = layout_version(self.version);
        if let Some(bytes) = ctx.storage_ref().read("fsimage").map(<[u8]>::to_vec) {
            let decoded = codec::decode_fsimage(self.version, &bytes)
                .map_err(|e| Fatal::new(e.to_string()))?;
            self.namespace = decoded.namespace;
            if decoded.layout < own_lv {
                ctx.info(format!(
                    "upgrading fsimage from LayoutVersion {} to {own_lv}",
                    decoded.layout
                ));
                // Upgrade checkpoint + verification reload: this is where
                // HDFS-5988 loses the filesystem.
                self.checkpoint(ctx)?;
                let bytes = ctx
                    .storage_ref()
                    .read("fsimage")
                    .expect("just written")
                    .to_vec();
                let verified = codec::decode_fsimage(self.version, &bytes)
                    .map_err(|e| Fatal::new(format!("upgraded fsimage is unreadable: {e}")))?;
                self.namespace = verified.namespace;
            }
        }
        for peer in self.setup.peers() {
            self.dn.insert(
                peer,
                DnInfo {
                    last_heartbeat: Some(ctx.now()),
                    storages_ok: true,
                    ..DnInfo::default()
                },
            );
        }
        ctx.info(format!(
            "NameNode {} started (LayoutVersion {own_lv})",
            self.version
        ));
        ctx.set_timer(SimDuration::from_secs(1), TOKEN_DEAD_CHECK);
        Ok(())
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, payload: &[u8]) -> StepResult {
        match from {
            Endpoint::Client(_) => {
                let text = String::from_utf8_lossy(payload).into_owned();
                self.handle_client(ctx, from, &text);
                Ok(())
            }
            Endpoint::Node(n) => {
                let frame = match Frame::decode(payload) {
                    Ok(f) => f,
                    Err(e) => {
                        ctx.warn(format!("unparseable frame from dn-{n}: {e}"));
                        return Ok(());
                    }
                };
                match frame.kind.as_str() {
                    "heartbeat" => self.handle_heartbeat(ctx, n, &frame),
                    "restart_notice" => {
                        if let Some(info) = self.dn.get_mut(&n) {
                            if !info.permanently_bad {
                                info.restarting_since = Some(ctx.now());
                                ctx.info(format!("DataNode dn-{n} announced a restart"));
                            }
                        }
                        Ok(())
                    }
                    "block_ack" => {
                        if frame.body.len() >= 8 {
                            let block = u64::from_be_bytes(
                                frame.body[..8].try_into().expect("len checked"),
                            );
                            self.block_locations.entry(block).or_default().insert(n);
                            self.copy_inflight.remove(&block);
                            if let Some(p) = self.pending_writes.get_mut(&block) {
                                p.acks.insert(n);
                                if p.acks.len() >= p.expected.len() {
                                    let p = self.pending_writes.remove(&block).expect("present");
                                    ctx.send(p.client, b"OK".to_vec().into());
                                }
                            }
                        }
                        Ok(())
                    }
                    "block_data" => {
                        if frame.body.len() >= 8 {
                            let block = u64::from_be_bytes(
                                frame.body[..8].try_into().expect("len checked"),
                            );
                            let data = frame.body[8..].to_vec();
                            if let Some(client) = self.pending_reads.remove(&block) {
                                let mut reply = b"OK ".to_vec();
                                reply.extend_from_slice(&data);
                                ctx.send(client, reply.into());
                            }
                        }
                        Ok(())
                    }
                    "block_missing" => {
                        if frame.body.len() >= 8 {
                            let block = u64::from_be_bytes(
                                frame.body[..8].try_into().expect("len checked"),
                            );
                            if let Some(set) = self.block_locations.get_mut(&block) {
                                set.remove(&n);
                            }
                            if let Some(client) = self.pending_reads.remove(&block) {
                                ctx.send(client, b"ERR replica lost".to_vec().into());
                            }
                        }
                        Ok(())
                    }
                    other => {
                        ctx.warn(format!("unknown message kind '{other}' from dn-{n}"));
                        Ok(())
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> StepResult {
        if token == TOKEN_DEAD_CHECK {
            let now = ctx.now();
            let mut newly_dead = Vec::new();
            for (&id, info) in &mut self.dn {
                if info.dead || info.permanently_bad {
                    continue;
                }
                let last = info.last_heartbeat.unwrap_or(self.started_at);
                if now.since(last) > DEAD_TIMEOUT {
                    info.dead = true;
                    newly_dead.push(id);
                }
            }
            for id in newly_dead {
                ctx.error(format!(
                    "DataNode dn-{id} marked dead: no heartbeat for {DEAD_TIMEOUT}"
                ));
            }
            self.rereplicate(ctx);
            ctx.set_timer(SimDuration::from_secs(1), TOKEN_DEAD_CHECK);
            return Ok(());
        }
        if token >= TOKEN_WRITE_BASE {
            let block = token - TOKEN_WRITE_BASE;
            if let Some(p) = self.pending_writes.remove(&block) {
                if p.acks.is_empty() {
                    ctx.error(format!(
                        "write of {} failed: no DataNode acked block {block}",
                        p.path
                    ));
                    ctx.send(p.client, b"ERR write failed".to_vec().into());
                } else {
                    ctx.warn(format!(
                        "block {block} for {} acked by {}/{} DataNodes",
                        p.path,
                        p.acks.len(),
                        p.expected.len()
                    ));
                    ctx.send(p.client, b"OK".to_vec().into());
                }
            }
        }
        Ok(())
    }

    fn on_shutdown(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        self.checkpoint(ctx)?;
        ctx.info("NameNode checkpointed and shut down");
        Ok(())
    }
}

/// A worker: stores blocks, heartbeats, serves reads and replication copies.
#[derive(Clone)]
pub struct DataNode {
    version: VersionId,
    setup: NodeSetup,
    busy_until: SimTime,
    heartbeats_sent: u64,
}

impl DataNode {
    /// Creates the DataNode process for `version`.
    pub fn new(version: VersionId, setup: NodeSetup) -> Self {
        DataNode {
            version,
            setup,
            busy_until: SimTime::ZERO,
            heartbeats_sent: 0,
        }
    }

    fn namenode(&self) -> Endpoint {
        Endpoint::Node(0)
    }

    fn send_heartbeat(&mut self, ctx: &mut Ctx<'_>) {
        self.heartbeats_sent += 1;
        let schema = heartbeat_schema(self.version);
        let mut hb = MessageValue::new("Heartbeat").set("node", Value::U32(self.setup.index));
        for path in ctx.storage_ref().list("blocks/") {
            if let Some(id) = path
                .strip_prefix("blocks/")
                .and_then(|s| s.parse::<u64>().ok())
            {
                hb.push_mut("blocks", Value::U64(id));
            }
        }
        if self.version.major >= 3 {
            hb.push_mut("storages", Value::Enum(0)); // DISK
            hb.push_mut("storages", Value::Enum(archive_number(self.version)));
        }
        if self.version >= VersionId::new(3, 2, 0) {
            hb.put("committedTxnId", Value::U64(self.heartbeats_sent));
        }
        let body = proto::encode(&schema, &hb).expect("own heartbeat always encodes");
        ctx.send(
            self.namenode(),
            Frame::new(layout_version(self.version), "heartbeat", body).encode(),
        );
    }
}

impl Process for DataNode {
    fn fork(&self) -> Option<Box<dyn Process>> {
        Some(Box::new(self.clone()))
    }

    fn restore_from(&mut self, src: &dyn Process) -> bool {
        let any: &dyn std::any::Any = src;
        match any.downcast_ref::<Self>() {
            Some(other) => {
                self.clone_from(other);
                true
            }
            None => false,
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        let marker = ctx
            .storage_ref()
            .read("dn_version")
            .map(|b| String::from_utf8_lossy(b).into_owned());
        let own = self.version.to_string();
        let upgraded = marker.as_deref().is_some_and(|m| m != own);
        let trash = ctx.storage_ref().list("trash/");
        let mut first_heartbeat = SimDuration::from_millis(50);
        if upgraded && !trash.is_empty() {
            if purges_trash_synchronously(self.version) {
                // HDFS-8676: the finalize step deletes the trash directory
                // synchronously; heartbeats stall for the whole purge.
                let purge = TRASH_PURGE_PER_BLOCK.saturating_mul(trash.len() as u64);
                ctx.info(format!(
                    "upgrade finalized: deleting {} trashed blocks synchronously ({purge})",
                    trash.len()
                ));
                self.busy_until = ctx.now() + purge;
                first_heartbeat = purge;
            } else {
                ctx.info(format!(
                    "upgrade finalized: deleting {} trashed blocks in the background",
                    trash.len()
                ));
            }
            let n = ctx.storage().delete_prefix("trash/");
            debug_assert_eq!(n, trash.len());
        }
        ctx.storage().write("dn_version", own.into_bytes());
        ctx.flush("dn_version");
        ctx.info(format!(
            "DataNode {} (dn-{}) started",
            self.version, self.setup.index
        ));
        ctx.set_timer(first_heartbeat, TOKEN_HEARTBEAT);
        Ok(())
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, payload: &[u8]) -> StepResult {
        if ctx.now() < self.busy_until {
            // Blocked in the synchronous trash purge: requests are dropped,
            // exactly like a thread stuck in a long filesystem call.
            return Ok(());
        }
        if let Endpoint::Client(_) = from {
            let text = String::from_utf8_lossy(payload);
            let reply = if text.trim() == "HEALTH" {
                "OK healthy".to_string()
            } else {
                "ERR not the NameNode".to_string()
            };
            ctx.send(from, reply.into_bytes().into());
            return Ok(());
        }
        let frame = match Frame::decode(payload) {
            Ok(f) => f,
            Err(e) => {
                ctx.warn(format!("unparseable frame: {e}"));
                return Ok(());
            }
        };
        let lv = layout_version(self.version);
        match frame.kind.as_str() {
            "block_write" if frame.body.len() >= 8 => {
                let block = u64::from_be_bytes(frame.body[..8].try_into().expect("len checked"));
                let data = &frame.body[8..];
                ctx.storage()
                    .write(&format!("blocks/{block}"), data.to_vec());
                // Flush before acking: an acked replica the NameNode counts
                // on must survive a crash, or replica accounting would blame
                // the upgrade for an injected-crash artifact.
                ctx.flush(&format!("blocks/{block}"));
                ctx.send(
                    self.namenode(),
                    Frame::new(lv, "block_ack", block.to_be_bytes().to_vec()).encode(),
                );
            }
            "block_read" if frame.body.len() >= 8 => {
                let block = u64::from_be_bytes(frame.body[..8].try_into().expect("len checked"));
                match ctx
                    .storage_ref()
                    .read(&format!("blocks/{block}"))
                    .map(<[u8]>::to_vec)
                {
                    Some(data) => {
                        let mut body = block.to_be_bytes().to_vec();
                        body.extend_from_slice(&data);
                        ctx.send(self.namenode(), Frame::new(lv, "block_data", body).encode());
                    }
                    None => {
                        ctx.send(
                            self.namenode(),
                            Frame::new(lv, "block_missing", block.to_be_bytes().to_vec()).encode(),
                        );
                    }
                }
            }
            "block_trash" if frame.body.len() >= 8 => {
                let block = u64::from_be_bytes(frame.body[..8].try_into().expect("len checked"));
                if let Some(data) = ctx
                    .storage_ref()
                    .read(&format!("blocks/{block}"))
                    .map(<[u8]>::to_vec)
                {
                    ctx.storage().write(&format!("trash/{block}"), data);
                    // Trash must be durable before the live replica goes
                    // away, or a crash in between loses the block entirely.
                    ctx.flush(&format!("trash/{block}"));
                    ctx.storage().delete(&format!("blocks/{block}"));
                }
            }
            "block_copy" if frame.body.len() >= 12 => {
                let block = u64::from_be_bytes(frame.body[..8].try_into().expect("len checked"));
                let dest = u32::from_be_bytes(frame.body[8..12].try_into().expect("len checked"));
                if let Some(data) = ctx
                    .storage_ref()
                    .read(&format!("blocks/{block}"))
                    .map(<[u8]>::to_vec)
                {
                    let mut body = block.to_be_bytes().to_vec();
                    body.extend_from_slice(&data);
                    ctx.send(
                        Endpoint::Node(dest),
                        Frame::new(lv, "block_write", body).encode(),
                    );
                }
            }
            other => {
                ctx.warn(format!("unknown message kind '{other}'"));
            }
        }
        Ok(())
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> StepResult {
        if token == TOKEN_HEARTBEAT {
            self.send_heartbeat(ctx);
            ctx.set_timer(HEARTBEAT_INTERVAL, TOKEN_HEARTBEAT);
        }
        Ok(())
    }

    fn on_shutdown(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        if has_restart_notice(self.version) {
            ctx.send(
                self.namenode(),
                Frame::new(layout_version(self.version), "restart_notice", Vec::new()).encode(),
            );
        }
        ctx.info("DataNode shut down");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_simnet::Sim;

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn boot(sim: &mut Sim, version: VersionId, n: u32) -> Vec<u32> {
        let mut ids = Vec::new();
        for i in 0..n {
            let setup = NodeSetup::new(i, n);
            let proc: Box<dyn Process> = if i == 0 {
                Box::new(NameNode::new(version, setup))
            } else {
                Box::new(DataNode::new(version, setup))
            };
            let id = sim.add_node(&format!("dfs-host-{i}"), &version.to_string(), proc);
            sim.start_node(id).unwrap();
            ids.push(id);
        }
        sim.run_for(SimDuration::from_secs(1));
        ids
    }

    fn cmd(sim: &mut Sim, node: u32, text: &str) -> String {
        sim.rpc(
            node,
            text.as_bytes().to_vec().into(),
            SimDuration::from_secs(5),
        )
        .map(|b| String::from_utf8_lossy(&b).into_owned())
        .unwrap_or_else(|| "TIMEOUT".to_string())
    }

    fn upgrade(sim: &mut Sim, node_idx: u32, to: VersionId, n: u32) {
        sim.stop_node(node_idx).unwrap();
        let setup = NodeSetup::new(node_idx, n);
        let proc: Box<dyn Process> = if node_idx == 0 {
            Box::new(NameNode::new(to, setup))
        } else {
            Box::new(DataNode::new(to, setup))
        };
        sim.install(node_idx, &to.to_string(), proc).unwrap();
        sim.start_node(node_idx).unwrap();
    }

    #[test]
    fn write_read_delete_roundtrip() {
        let mut sim = Sim::new(1);
        let ids = boot(&mut sim, v("3.3.0"), 3);
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /a hello"), "OK");
        assert_eq!(cmd(&mut sim, ids[0], "READ /a"), "OK hello");
        assert_eq!(cmd(&mut sim, ids[0], "CHECK /a"), "OK replication=2");
        assert_eq!(cmd(&mut sim, ids[0], "DELETE /a"), "OK");
        assert_eq!(cmd(&mut sim, ids[0], "READ /a"), "ERR not found");
        assert_eq!(cmd(&mut sim, ids[0], "LS"), "OK ");
    }

    #[test]
    fn namespace_survives_clean_upgrade() {
        let mut sim = Sim::new(2);
        let ids = boot(&mut sim, v("2.6.0"), 3);
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /f data1"), "OK");
        for &id in ids.iter().rev() {
            sim.stop_node(id).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            upgrade(&mut sim, id, v("2.7.0"), 3);
            let _ = i;
        }
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(cmd(&mut sim, ids[0], "READ /f"), "OK data1");
        assert!(sim.crashed_nodes().is_empty());
    }

    #[test]
    fn hdfs_5988_upgrade_to_2_0_loses_the_filesystem() {
        let mut sim = Sim::new(3);
        let ids = boot(&mut sim, v("1.0.0"), 2);
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /precious data"), "OK");
        sim.stop_node(ids[0]).unwrap();
        upgrade(&mut sim, ids[0], v("2.0.0"), 2);
        sim.run_for(SimDuration::from_secs(1));
        let reason = sim.crash_reason(ids[0]).unwrap();
        assert!(
            reason.contains("no inode found for file /precious"),
            "got: {reason}"
        );
    }

    #[test]
    fn hdfs_1936_layout_bump_without_compression() {
        let mut sim = Sim::new(4);
        let ids = boot(&mut sim, v("0.20.0"), 2);
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /f x"), "OK");
        sim.stop_node(ids[0]).unwrap();
        upgrade(&mut sim, ids[0], v("1.0.0"), 2);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim
            .crash_reason(ids[0])
            .unwrap()
            .contains("must be compressed"));
    }

    #[test]
    fn hdfs_14726_old_heartbeat_crashes_3_2_namenode() {
        let mut sim = Sim::new(5);
        let ids = boot(&mut sim, v("3.1.0"), 3);
        // Rolling upgrade: NameNode first.
        upgrade(&mut sim, ids[0], v("3.2.0"), 3);
        sim.run_for(SimDuration::from_secs(2));
        let reason = sim.crash_reason(ids[0]).unwrap();
        assert!(
            reason.contains("InvalidProtocolBufferException"),
            "got: {reason}"
        );
        assert!(reason.contains("committedTxnId"));
    }

    #[test]
    fn hdfs_15624_archive_reads_as_nvdimm_on_3_3() {
        let mut sim = Sim::new(6);
        let ids = boot(&mut sim, v("3.2.0"), 3);
        upgrade(&mut sim, ids[0], v("3.3.0"), 3);
        sim.run_for(SimDuration::from_secs(2));
        // Both old DataNodes are excluded: writes have nowhere to go.
        assert_eq!(
            cmd(&mut sim, ids[0], "WRITE /new data"),
            "ERR no usable DataNodes"
        );
        assert!(sim.logs().matching("storage type NVDIMM").count() >= 2);
        // Finishing the rolling upgrade heals the cluster.
        upgrade(&mut sim, ids[1], v("3.3.0"), 3);
        upgrade(&mut sim, ids[2], v("3.3.0"), 3);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /new data"), "OK");
    }

    #[test]
    fn hdfs_8676_trash_purge_stalls_heartbeats_until_dead() {
        let mut sim = Sim::new(7);
        let ids = boot(&mut sim, v("2.6.0"), 3);
        // Create and delete files so DataNode trash fills up.
        for i in 0..6 {
            assert_eq!(cmd(&mut sim, ids[0], &format!("WRITE /t{i} d{i}")), "OK");
        }
        for i in 0..6 {
            assert_eq!(cmd(&mut sim, ids[0], &format!("DELETE /t{i}")), "OK");
        }
        sim.run_for(SimDuration::from_secs(1));
        // Full-stop upgrade to 2.7.
        for &id in ids.iter().rev() {
            sim.stop_node(id).unwrap();
        }
        for &id in &ids {
            upgrade(&mut sim, id, v("2.7.0"), 3);
        }
        // Each DataNode trashed ~6 blocks → purge ≈ 90 s > 60 s dead timeout.
        sim.run_for(SimDuration::from_secs(70));
        assert!(
            sim.logs().matching("marked dead").count() >= 1,
            "no dead-marking observed"
        );
        // After the purge completes the DataNodes come back.
        sim.run_for(SimDuration::from_secs(60));
        assert!(sim.logs().matching("re-registered").count() >= 1);
    }

    #[test]
    fn hdfs_11856_restarting_datanode_marked_bad_permanently() {
        let mut sim = Sim::new(8);
        let ids = boot(&mut sim, v("2.7.0"), 3);
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /base d"), "OK");
        // Rolling upgrade 2.7 → 2.8: NameNode first (quick), then dn-1.
        upgrade(&mut sim, ids[0], v("2.8.0"), 3);
        sim.run_for(SimDuration::from_secs(1));
        // dn-1 announces its restart and stays down past the tolerance.
        sim.stop_node(ids[1]).unwrap();
        sim.run_for(SimDuration::from_millis(3500));
        // A write arrives while dn-1 has been restarting > 3 s.
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /during d2"), "OK");
        assert!(sim.logs().matching("bad permanently").count() >= 1);
        // dn-1 finishes its upgrade and heartbeats again — but is ignored.
        upgrade(&mut sim, ids[1], v("2.8.0"), 3);
        sim.run_for(SimDuration::from_secs(8));
        let resp = cmd(&mut sim, ids[0], "CHECK /during");
        assert!(resp.starts_with("ERR under-replicated"), "got {resp}");
    }

    #[test]
    fn restart_tolerance_is_forgiven_after_the_fix() {
        let mut sim = Sim::new(9);
        let ids = boot(&mut sim, v("3.1.0"), 3);
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /base d"), "OK");
        sim.stop_node(ids[1]).unwrap();
        sim.run_for(SimDuration::from_millis(3500));
        assert_eq!(cmd(&mut sim, ids[0], "WRITE /during d2"), "OK");
        upgrade(&mut sim, ids[1], v("3.1.0"), 3);
        sim.run_for(SimDuration::from_secs(8));
        assert_eq!(sim.logs().matching("bad permanently").count(), 0);
        let resp = cmd(&mut sim, ids[0], "CHECK /during");
        assert!(resp.starts_with("OK"), "got {resp}");
    }
}
