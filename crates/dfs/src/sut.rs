//! The [`SystemUnderTest`] implementation for the mini HDFS.

use crate::node::{DataNode, NameNode};
use dup_core::{
    ClientOp, NodeSetup, SystemUnderTest, TranslationTable, UnitStatement, UnitTest, VersionId,
    WorkloadPhase,
};
use dup_simnet::Process;

/// The mini HDFS as a DUPTester subject (node 0 = NameNode).
#[derive(Debug, Default, Clone, Copy)]
pub struct DfsSystem;

impl DfsSystem {
    /// The release history, oldest first.
    pub fn release_history() -> Vec<VersionId> {
        [
            "0.20.0", "1.0.0", "2.0.0", "2.6.0", "2.7.0", "2.8.0", "3.1.0", "3.2.0", "3.3.0",
        ]
        .iter()
        .map(|s| s.parse().expect("static version strings parse"))
        .collect()
    }
}

impl SystemUnderTest for DfsSystem {
    fn name(&self) -> &'static str {
        "hdfs-mini"
    }

    fn versions(&self) -> Vec<VersionId> {
        Self::release_history()
    }

    fn cluster_size(&self) -> u32 {
        3
    }

    fn spawn(&self, version: VersionId, setup: &NodeSetup) -> Box<dyn Process> {
        if setup.index == 0 {
            Box::new(NameNode::new(version, setup.clone()))
        } else {
            Box::new(DataNode::new(version, setup.clone()))
        }
    }

    fn stress_ops(
        &self,
        _seed: u64,
        phase: WorkloadPhase,
        _client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    ) {
        match phase {
            WorkloadPhase::BeforeUpgrade => {
                for i in 0..8 {
                    emit(ClientOp::new(0, format!("WRITE /data/f{i} payload{i}")));
                }
                // Deletes fill the DataNode trash — the HDFS-8676 trigger.
                for i in 0..6 {
                    emit(ClientOp::new(0, format!("WRITE /tmp/t{i} temp{i}")));
                }
                for i in 0..6 {
                    emit(ClientOp::new(0, format!("DELETE /tmp/t{i}")));
                }
            }
            WorkloadPhase::DuringUpgrade => {
                for i in 0..6 {
                    emit(ClientOp::new(0, format!("WRITE /mid/m{i} mid{i}")));
                    emit(ClientOp::new(0, format!("READ /data/f{}", i % 8)));
                }
            }
            WorkloadPhase::AfterUpgrade => {
                for i in 0..8 {
                    emit(ClientOp::new(0, format!("READ /data/f{i}")));
                }
                for i in 0..6 {
                    emit(ClientOp::new(0, format!("CHECK /mid/m{i}")));
                }
                emit(ClientOp::new(0, "HEALTH"));
            }
        }
    }

    fn open_loop_op(
        &self,
        key: u64,
        client: u64,
        read: bool,
        _client_version: VersionId,
    ) -> ClientOp {
        // All client traffic goes through the NameNode; reads of paths never
        // written return the benign "ERR not found".
        if read {
            ClientOp::new(0, format!("READ /ol/k{key}"))
        } else {
            ClientOp::new(0, format!("WRITE /ol/k{key} c{client}"))
        }
    }

    fn unit_tests(&self) -> Vec<UnitTest> {
        vec![
            UnitTest::new(
                "testFileSystemOps",
                vec![
                    UnitStatement::bind("f", "writeFile", &["/unit/u1", "alpha"]),
                    UnitStatement::call("readFile", &["$f"]),
                    UnitStatement::call("deleteFile", &["$f"]),
                ],
            ),
            UnitTest::new(
                "testEditLogInternal",
                vec![
                    UnitStatement::bind("log", "openEditLog", &["/edits"]),
                    UnitStatement::call("appendEdit", &["$log", "op1"]),
                ],
            ),
        ]
    }

    fn translation(&self) -> TranslationTable {
        TranslationTable::new()
            .rule("writeFile", "WRITE {0} {1}")
            .rule("readFile", "READ {0}")
            .rule("deleteFile", "DELETE {0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-only compat shim over the streaming op API.
    fn stress_workload(
        s: &dyn SystemUnderTest,
        seed: u64,
        phase: WorkloadPhase,
        v: VersionId,
    ) -> Vec<ClientOp> {
        let mut ops = Vec::new();
        s.stress_ops(seed, phase, v, &mut |op| ops.push(op));
        ops
    }

    #[test]
    fn history_is_sorted() {
        let vs = DfsSystem::release_history();
        let mut sorted = vs.clone();
        sorted.sort();
        assert_eq!(vs, sorted);
        assert_eq!(vs.len(), 9);
    }

    #[test]
    fn stress_targets_the_namenode_only() {
        let s = DfsSystem;
        for phase in [
            WorkloadPhase::BeforeUpgrade,
            WorkloadPhase::DuringUpgrade,
            WorkloadPhase::AfterUpgrade,
        ] {
            for op in stress_workload(&s, 1, phase, VersionId::new(3, 3, 0)) {
                assert_eq!(op.node, 0);
            }
        }
    }

    #[test]
    fn before_phase_fills_the_trash() {
        let s = DfsSystem;
        let before = stress_workload(&s, 1, WorkloadPhase::BeforeUpgrade, VersionId::new(2, 6, 0));
        assert!(
            before
                .iter()
                .filter(|op| op.command.starts_with("DELETE"))
                .count()
                >= 6
        );
    }

    #[test]
    fn edit_log_test_is_untranslatable() {
        let s = DfsSystem;
        let table = s.translation();
        assert!(table.template("openEditLog").is_none());
        assert!(table.template("writeFile").is_some());
    }
}
