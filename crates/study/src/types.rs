//! Record types for the upgrade-failure study (paper §2–§5).

use dup_core::{IncompatCategory, RootCause, Symptom, UpgradeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight studied systems (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StudySystem {
    /// Apache Cassandra.
    Cassandra,
    /// Apache HBase.
    HBase,
    /// HDFS.
    Hdfs,
    /// Apache Kafka.
    Kafka,
    /// Hadoop MapReduce.
    MapReduce,
    /// Apache Mesos.
    Mesos,
    /// Hadoop YARN.
    Yarn,
    /// Apache ZooKeeper.
    ZooKeeper,
}

impl StudySystem {
    /// All systems in Table 1 order.
    pub const ALL: [StudySystem; 8] = [
        StudySystem::Cassandra,
        StudySystem::HBase,
        StudySystem::Hdfs,
        StudySystem::Kafka,
        StudySystem::MapReduce,
        StudySystem::Mesos,
        StudySystem::Yarn,
        StudySystem::ZooKeeper,
    ];

    /// Ticket prefix used in issue ids.
    pub fn prefix(self) -> &'static str {
        match self {
            StudySystem::Cassandra => "CASSANDRA",
            StudySystem::HBase => "HBASE",
            StudySystem::Hdfs => "HDFS",
            StudySystem::Kafka => "KAFKA",
            StudySystem::MapReduce => "MAPREDUCE",
            StudySystem::Mesos => "MESOS",
            StudySystem::Yarn => "YARN",
            StudySystem::ZooKeeper => "ZOOKEEPER",
        }
    }
}

impl fmt::Display for StudySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StudySystem::Cassandra => "Cassandra",
            StudySystem::HBase => "HBase",
            StudySystem::Hdfs => "HDFS",
            StudySystem::Kafka => "Kafka",
            StudySystem::MapReduce => "MapReduce",
            StudySystem::Mesos => "Mesos",
            StudySystem::Yarn => "Yarn",
            StudySystem::ZooKeeper => "ZooKeeper",
        };
        f.write_str(s)
    }
}

/// Priority of a report, covering both tracker schemes (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StudyPriority {
    /// Five-level scheme (all systems except Cassandra).
    Jira(dup_core::Priority),
    /// Cassandra's three-level scheme.
    Cassandra(dup_core::CassandraPriority),
}

/// When the bug was caught relative to the affected release (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaughtWhen {
    /// Report filed before the new version's release date.
    BeforeRelease,
    /// Report filed after (escaped into production code).
    AfterRelease,
    /// The report lacks version information (11 cases).
    Unknown,
}

/// Version gap needed to trigger, in Table 4's buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GapClass {
    /// Major gap of 2.
    Major2,
    /// Major gap of 1 (consecutive majors).
    Major1,
    /// Minor gap greater than 2.
    MinorGt2,
    /// Minor gap of exactly 2.
    Minor2,
    /// Minor gap of 1 (consecutive minors).
    Minor1,
    /// Bug-fix versions within the same minor ("<1").
    BugFixOnly,
    /// Any old version to one particular new version.
    AnyToParticular,
    /// Not reported.
    Unknown,
}

impl GapClass {
    /// `true` if consecutive major/minor testing (Finding 9) exposes it.
    pub fn consecutive_exposes(self) -> bool {
        matches!(
            self,
            GapClass::Major1 | GapClass::Minor1 | GapClass::BugFixOnly | GapClass::AnyToParticular
        )
    }
}

/// How the failure-triggering workload relates to existing assets (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trigger {
    /// Stress-testing operations with default configuration (Finding 12).
    StressDefault,
    /// Needs a non-default configuration.
    Config {
        /// Whether an existing unit test covers that configuration.
        covered_by_unit_test: bool,
    },
    /// Needs special operations.
    SpecialOps {
        /// Whether existing unit tests cover those operations.
        covered_by_unit_test: bool,
    },
    /// Needs both a non-default configuration and special operations.
    Both {
        /// Whether existing unit tests cover the combination.
        covered_by_unit_test: bool,
    },
}

/// One studied upgrade failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyFailure {
    /// Ticket id. Real ids where the paper names them; reconstructed
    /// (`<SYS>-R<n>`) otherwise.
    pub id: String,
    /// `true` unless the paper names this ticket explicitly.
    pub reconstructed: bool,
    /// Which system.
    pub system: StudySystem,
    /// Tracker priority.
    pub priority: StudyPriority,
    /// End-user symptom (Table 2 row).
    pub symptom: Symptom,
    /// Affects all or a majority of users (the [80] definition).
    pub catastrophic: bool,
    /// Catastrophic *and* caught after release (Table 2, last column).
    pub catastrophic_in_production: bool,
    /// Crashes / fatal exceptions rather than subtle symptoms (Finding 3).
    pub easy_to_observe: bool,
    /// When it was caught (§3.3).
    pub caught: CaughtWhen,
    /// Root cause (§4).
    pub root_cause: RootCause,
    /// Version gap needed (Table 4).
    pub gap: GapClass,
    /// Nodes needed to trigger (Finding 10: always ≤ 3).
    pub nodes_required: u8,
    /// Whether the trigger is timing-independent (Finding 11).
    pub deterministic: bool,
    /// Workload relation to existing test assets (Findings 12–13).
    pub trigger: Trigger,
    /// Full-stop or rolling (§1: 57% / 43%).
    pub upgrade_kind: UpgradeKind,
}

impl StudyFailure {
    /// `true` if the root cause is an incompatible cross-version interaction.
    pub fn is_incompatibility(&self) -> bool {
        matches!(self.root_cause, RootCause::IncompatibleInteraction { .. })
    }

    /// The incompatibility category, if applicable.
    pub fn incompat_category(&self) -> Option<IncompatCategory> {
        match self.root_cause {
            RootCause::IncompatibleInteraction { category, .. } => Some(category),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_prefixes() {
        assert_eq!(StudySystem::Cassandra.prefix(), "CASSANDRA");
        assert_eq!(StudySystem::ALL.len(), 8);
        assert_eq!(StudySystem::Hdfs.to_string(), "HDFS");
    }

    #[test]
    fn gap_consecutive_exposure_matches_finding_9() {
        assert!(GapClass::Major1.consecutive_exposes());
        assert!(GapClass::Minor1.consecutive_exposes());
        assert!(GapClass::BugFixOnly.consecutive_exposes());
        assert!(GapClass::AnyToParticular.consecutive_exposes());
        assert!(!GapClass::Major2.consecutive_exposes());
        assert!(!GapClass::Minor2.consecutive_exposes());
        assert!(!GapClass::MinorGt2.consecutive_exposes());
    }
}
