//! Analysis reproducing Tables 1–4 and Findings 1–13 from the dataset.

use crate::baseline;
use crate::types::{CaughtWhen, GapClass, StudyFailure, StudyPriority, StudySystem, Trigger};
use dup_core::{CassandraPriority, DataMedium, IncompatCategory, Priority, RootCause, Symptom};
use std::fmt::Write as _;

/// Table 1: failures per system.
pub fn table1(ds: &[StudyFailure]) -> Vec<(StudySystem, usize)> {
    StudySystem::ALL
        .iter()
        .map(|&s| (s, ds.iter().filter(|r| r.system == s).count()))
        .collect()
}

/// Renders Table 1.
pub fn render_table1(ds: &[StudyFailure]) -> String {
    let mut out = String::from("Table 1. Numbers of upgrade failures analyzed.\n");
    for (system, count) in table1(ds) {
        let _ = writeln!(out, "  {system:<10} {count:>3}");
    }
    out
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymptomRow {
    /// The symptom.
    pub symptom: Symptom,
    /// All failures with it.
    pub all: usize,
    /// Catastrophic ones.
    pub catastrophic: usize,
    /// Catastrophic ones caught after release.
    pub catastrophic_in_production: usize,
}

/// Table 2: symptoms × severity tiers.
pub fn table2(ds: &[StudyFailure]) -> Vec<SymptomRow> {
    [
        Symptom::WholeClusterDown,
        Symptom::RollingUpgradeDegradation,
        Symptom::DataLossOrCorruption,
        Symptom::PerformanceDegradation,
        Symptom::PartOfClusterDown,
        Symptom::IncorrectResult,
        Symptom::Unknown,
    ]
    .iter()
    .map(|&symptom| SymptomRow {
        symptom,
        all: ds.iter().filter(|r| r.symptom == symptom).count(),
        catastrophic: ds
            .iter()
            .filter(|r| r.symptom == symptom && r.catastrophic)
            .count(),
        catastrophic_in_production: ds
            .iter()
            .filter(|r| r.symptom == symptom && r.catastrophic_in_production)
            .count(),
    })
    .collect()
}

/// Renders Table 2.
pub fn render_table2(ds: &[StudyFailure]) -> String {
    let mut out = String::from(
        "Table 2. Symptoms of failures observed by end-users or operators.\n\
         (All / Catastrophic / Catastrophic in Production)\n",
    );
    let rows = table2(ds);
    for row in &rows {
        let _ = writeln!(
            out,
            "  {:<58} {:>3} {:>3} {:>4}",
            row.symptom.label(),
            row.all,
            row.catastrophic,
            row.catastrophic_in_production
        );
    }
    let _ = writeln!(
        out,
        "  {:<58} {:>3} {:>3} {:>4}",
        "Total",
        rows.iter().map(|r| r.all).sum::<usize>(),
        rows.iter().map(|r| r.catastrophic).sum::<usize>(),
        rows.iter()
            .map(|r| r.catastrophic_in_production)
            .sum::<usize>()
    );
    out
}

/// Table 3: incompatibility categories.
pub fn table3(ds: &[StudyFailure]) -> Vec<(IncompatCategory, usize)> {
    [
        IncompatCategory::SyntaxSerializationLib,
        IncompatCategory::SyntaxEnum,
        IncompatCategory::SyntaxSystemSpecific,
        IncompatCategory::SemanticsSerializationLibMishandling,
        IncompatCategory::SemanticsIncompleteVersionHandling,
        IncompatCategory::SemanticsOther,
    ]
    .iter()
    .map(|&cat| {
        (
            cat,
            ds.iter()
                .filter(|r| r.incompat_category() == Some(cat))
                .count(),
        )
    })
    .collect()
}

/// Renders Table 3.
pub fn render_table3(ds: &[StudyFailure]) -> String {
    let mut out = String::from("Table 3. Incompatible cross-version interaction categories.\n");
    let rows = table3(ds);
    for (cat, count) in &rows {
        let kind = if cat.is_syntax() {
            "Syntax   "
        } else {
            "Semantics"
        };
        let _ = writeln!(out, "  {kind} {:<40} {count:>3}", cat.label());
    }
    let _ = writeln!(
        out,
        "  total {:>47}",
        rows.iter().map(|(_, c)| c).sum::<usize>()
    );
    out
}

/// Table 4: version gaps.
pub fn table4(ds: &[StudyFailure]) -> Vec<(GapClass, usize)> {
    [
        GapClass::Major2,
        GapClass::Major1,
        GapClass::MinorGt2,
        GapClass::Minor2,
        GapClass::Minor1,
        GapClass::BugFixOnly,
        GapClass::AnyToParticular,
        GapClass::Unknown,
    ]
    .iter()
    .map(|&g| (g, ds.iter().filter(|r| r.gap == g).count()))
    .collect()
}

/// Renders Table 4.
pub fn render_table4(ds: &[StudyFailure]) -> String {
    let labels = [
        "major gap 2",
        "major gap 1",
        "minor gap >2",
        "minor gap 2",
        "minor gap 1",
        "bug-fix only (<1)",
        "any -> particular new version",
        "version not reported",
    ];
    let mut out = String::from("Table 4. Gaps between software versions required to expose.\n");
    for ((_, count), label) in table4(ds).iter().zip(labels) {
        let _ = writeln!(out, "  {label:<32} {count:>3}");
    }
    out
}

/// The computed findings, each with the paper's claimed value reproduced.
#[derive(Debug, Clone, PartialEq)]
pub struct Findings {
    /// F1: % Blocker among upgrade failures (JIRA-scheme systems).
    pub blocker_pct: f64,
    /// F1: % high-priority (Blocker+Critical).
    pub high_priority_pct: f64,
    /// F1 (Cassandra): % Urgent / % Low.
    pub cassandra_urgent_pct: f64,
    /// F1 (Cassandra): % Low.
    pub cassandra_low_pct: f64,
    /// F2: % catastrophic.
    pub catastrophic_pct: f64,
    /// F3: % with easy-to-observe symptoms.
    pub easy_to_observe_pct: f64,
    /// F4: caught after release, among those with version info.
    pub caught_after_release: usize,
    /// F4: with version info.
    pub with_release_info: usize,
    /// F5: % caused by incompatible cross-version interaction.
    pub incompatibility_pct: f64,
    /// §4.1: % of incompatibilities on persistent storage.
    pub persistent_medium_pct: f64,
    /// §4.1: % of incompatibilities that are syntax (vs semantics).
    pub syntax_pct: f64,
    /// F9: % exposable by consecutive major/minor versions.
    pub consecutive_pct: f64,
    /// F10: max nodes required.
    pub max_nodes: u8,
    /// F10: % needing a single node.
    pub single_node_pct: f64,
    /// F11: % deterministic.
    pub deterministic_pct: f64,
    /// F12: % triggered by stress ops + default config.
    pub stress_default_pct: f64,
    /// F13: % needing non-default configuration (alone).
    pub config_pct: f64,
    /// F13: of those, % covered by unit tests.
    pub config_covered_pct: f64,
    /// §5.2: % needing special operations (alone).
    pub special_ops_pct: f64,
    /// §5.2: of those, % covered by unit tests.
    pub ops_covered_pct: f64,
}

fn pct(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

/// Computes every finding from the dataset.
pub fn findings(ds: &[StudyFailure]) -> Findings {
    let jira: Vec<&StudyFailure> = ds
        .iter()
        .filter(|r| matches!(r.priority, StudyPriority::Jira(_)))
        .collect();
    let cass: Vec<&StudyFailure> = ds
        .iter()
        .filter(|r| matches!(r.priority, StudyPriority::Cassandra(_)))
        .collect();
    let blocker = jira
        .iter()
        .filter(|r| matches!(r.priority, StudyPriority::Jira(Priority::Blocker)))
        .count();
    let high = jira
        .iter()
        .filter(|r| matches!(r.priority, StudyPriority::Jira(p) if p.is_high()))
        .count();
    let urgent = cass
        .iter()
        .filter(|r| {
            matches!(
                r.priority,
                StudyPriority::Cassandra(CassandraPriority::Urgent)
            )
        })
        .count();
    let low = cass
        .iter()
        .filter(|r| matches!(r.priority, StudyPriority::Cassandra(CassandraPriority::Low)))
        .count();

    let with_info = ds
        .iter()
        .filter(|r| r.caught != CaughtWhen::Unknown)
        .count();
    let after = ds
        .iter()
        .filter(|r| r.caught == CaughtWhen::AfterRelease)
        .count();

    let incompat: Vec<&StudyFailure> = ds.iter().filter(|r| r.is_incompatibility()).collect();
    let persistent = incompat
        .iter()
        .filter(|r| {
            matches!(
                r.root_cause,
                RootCause::IncompatibleInteraction {
                    medium: DataMedium::PersistentStorage,
                    ..
                }
            )
        })
        .count();
    let syntax = incompat
        .iter()
        .filter(|r| r.incompat_category().is_some_and(|c| c.is_syntax()))
        .count();

    let known_gap = ds.iter().filter(|r| r.gap != GapClass::Unknown).count();
    let consecutive = ds.iter().filter(|r| r.gap.consecutive_exposes()).count();

    let config_only = ds
        .iter()
        .filter(|r| matches!(r.trigger, Trigger::Config { .. }))
        .count();
    let config_covered = ds
        .iter()
        .filter(|r| {
            matches!(
                r.trigger,
                Trigger::Config {
                    covered_by_unit_test: true
                }
            )
        })
        .count();
    let ops_only = ds
        .iter()
        .filter(|r| matches!(r.trigger, Trigger::SpecialOps { .. }))
        .count();
    let ops_covered = ds
        .iter()
        .filter(|r| {
            matches!(
                r.trigger,
                Trigger::SpecialOps {
                    covered_by_unit_test: true
                }
            )
        })
        .count();

    Findings {
        blocker_pct: pct(blocker, jira.len()),
        high_priority_pct: pct(high, jira.len()),
        cassandra_urgent_pct: pct(urgent, cass.len()),
        cassandra_low_pct: pct(low, cass.len()),
        catastrophic_pct: pct(ds.iter().filter(|r| r.catastrophic).count(), ds.len()),
        easy_to_observe_pct: pct(ds.iter().filter(|r| r.easy_to_observe).count(), ds.len()),
        caught_after_release: after,
        with_release_info: with_info,
        incompatibility_pct: pct(incompat.len(), ds.len()),
        persistent_medium_pct: pct(persistent, incompat.len()),
        syntax_pct: pct(syntax, incompat.len()),
        consecutive_pct: pct(consecutive, known_gap),
        max_nodes: ds.iter().map(|r| r.nodes_required).max().unwrap_or(0),
        single_node_pct: pct(
            ds.iter().filter(|r| r.nodes_required == 1).count(),
            ds.len(),
        ),
        deterministic_pct: pct(ds.iter().filter(|r| r.deterministic).count(), ds.len()),
        stress_default_pct: pct(
            ds.iter()
                .filter(|r| r.trigger == Trigger::StressDefault)
                .count(),
            ds.len(),
        ),
        config_pct: pct(config_only, ds.len()),
        config_covered_pct: pct(config_covered, config_only),
        special_ops_pct: pct(ops_only, ds.len()),
        ops_covered_pct: pct(ops_covered, ops_only),
    }
}

/// Renders the findings with the paper's claims alongside.
pub fn render_findings(ds: &[StudyFailure]) -> String {
    let f = findings(ds);
    let b = baseline::NON_UPGRADE;
    let mut out = String::from("Findings (measured vs paper claim):\n");
    let mut line = |text: String| {
        let _ = writeln!(out, "  {text}");
    };
    line(format!(
        "F1  Blocker {:.0}% vs non-upgrade {:.0}% (paper: 38% vs 10%); high {:.0}% vs {:.0}% (53% vs 20%)",
        f.blocker_pct, b.blocker_pct, f.high_priority_pct, b.high_priority_pct
    ));
    line(format!(
        "F1c Cassandra Urgent {:.0}% / Low {:.0}% vs non-upgrade {:.0}% / {:.0}% (18%/7% vs 6%/41%)",
        f.cassandra_urgent_pct, f.cassandra_low_pct, b.cassandra_urgent_pct, b.cassandra_low_pct
    ));
    line(format!(
        "F2  catastrophic {:.0}% vs {:.0}% among all bugs [80] (paper: 67% vs 24%)",
        f.catastrophic_pct, b.catastrophic_pct
    ));
    line(format!(
        "F3  easy-to-observe symptoms {:.0}% (paper: 70%)",
        f.easy_to_observe_pct
    ));
    line(format!(
        "F4  caught after release {}/{} = {:.0}% (paper: 70/112 = 63%)",
        f.caught_after_release,
        f.with_release_info,
        pct(f.caught_after_release, f.with_release_info)
    ));
    line(format!(
        "F5  incompatible interaction {:.0}% (paper: ~63%)",
        f.incompatibility_pct
    ));
    line(format!(
        "§4.1 persistent medium {:.0}% / syntax {:.0}% of incompatibilities (paper: 60% / ~65%)",
        f.persistent_medium_pct, f.syntax_pct
    ));
    line(format!(
        "F9  consecutive versions expose {:.0}% of known-gap failures (paper: >80%)",
        f.consecutive_pct
    ));
    line(format!(
        "F10 max nodes {} ; single node {:.0}% (paper: 3 ; 57%)",
        f.max_nodes, f.single_node_pct
    ));
    line(format!(
        "F11 deterministic {:.0}% (paper: ~89%)",
        f.deterministic_pct
    ));
    line(format!(
        "F12 stress+default triggers {:.0}% (paper: 50%)",
        f.stress_default_pct
    ));
    line(format!(
        "F13 non-default config {:.0}% of failures, {:.0}% of those unit-test covered (paper: 7% / 78%)",
        f.config_pct, f.config_covered_pct
    ));
    line(format!(
        "§5.2 special ops {:.0}% of failures, {:.0}% of those unit-test covered (paper: ~1/3 / ~60%)",
        f.special_ops_pct, f.ops_covered_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::dataset;

    #[test]
    fn table1_matches_the_paper() {
        let ds = dataset();
        let t = table1(&ds);
        let counts: Vec<usize> = t.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![44, 13, 38, 7, 1, 8, 8, 4]);
        assert_eq!(counts.iter().sum::<usize>(), 123);
    }

    #[test]
    fn table2_matches_the_paper() {
        let ds = dataset();
        let rows = table2(&ds);
        let triples: Vec<(usize, usize, usize)> = rows
            .iter()
            .map(|r| (r.all, r.catastrophic, r.catastrophic_in_production))
            .collect();
        assert_eq!(
            triples,
            vec![
                (34, 34, 18),
                (16, 16, 10),
                (20, 15, 12),
                (10, 4, 4),
                (12, 7, 3),
                (24, 6, 4),
                (7, 0, 0),
            ]
        );
        assert_eq!(rows.iter().map(|r| r.catastrophic).sum::<usize>(), 82);
        assert_eq!(
            rows.iter()
                .map(|r| r.catastrophic_in_production)
                .sum::<usize>(),
            51
        );
    }

    #[test]
    fn table3_matches_the_paper() {
        let ds = dataset();
        let counts: Vec<usize> = table3(&ds).iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![7, 2, 41, 6, 16, 5]);
        assert_eq!(counts.iter().sum::<usize>(), 77);
    }

    #[test]
    fn table4_matches_the_paper() {
        let ds = dataset();
        let counts: Vec<usize> = table4(&ds).iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![3, 37, 3, 8, 31, 6, 32, 3]);
    }

    #[test]
    fn findings_match_the_paper() {
        let ds = dataset();
        let f = findings(&ds);
        assert!(
            (f.blocker_pct - 38.0).abs() < 1.0,
            "blocker {}",
            f.blocker_pct
        );
        assert!((f.high_priority_pct - 53.0).abs() < 1.0);
        assert!((f.cassandra_urgent_pct - 18.0).abs() < 1.0);
        assert!((f.cassandra_low_pct - 7.0).abs() < 1.0);
        assert!((f.catastrophic_pct - 66.7).abs() < 1.0); // "67%"
        assert!((f.easy_to_observe_pct - 70.0).abs() < 1.0);
        assert_eq!(f.caught_after_release, 70);
        assert_eq!(f.with_release_info, 112);
        assert!((f.incompatibility_pct - 62.6).abs() < 1.0); // "about two thirds"
        assert!((f.persistent_medium_pct - 59.7).abs() < 1.0); // "60%"
        assert!((f.syntax_pct - 64.9).abs() < 1.0); // "close to two thirds"
        assert!(f.consecutive_pct > 80.0); // Finding 9.
        assert_eq!(f.max_nodes, 3);
        assert!((f.single_node_pct - 56.9).abs() < 1.0); // "57%"
        assert!((f.deterministic_pct - 88.6).abs() < 1.0); // "close to 90%"
        assert!((f.stress_default_pct - 50.4).abs() < 1.0); // "half"
        assert!((f.config_pct - 7.3).abs() < 1.0); // "7%"
        assert!((f.config_covered_pct - 77.8).abs() < 1.0); // "78%"
        assert!((f.special_ops_pct - 33.3).abs() < 1.0); // "about one third"
        assert!((f.ops_covered_pct - 61.0).abs() < 1.5); // "about 60%"
    }

    #[test]
    fn renders_are_complete() {
        let ds = dataset();
        assert!(render_table1(&ds).contains("Cassandra"));
        assert!(render_table2(&ds).contains("Whole cluster down"));
        assert!(render_table3(&ds).contains("serialization lib"));
        assert!(render_table4(&ds).contains("minor gap 1"));
        let f = render_findings(&ds);
        assert!(f.contains("F11"));
        assert!(f.contains("F13"));
    }
}
