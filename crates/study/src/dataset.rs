//! The 123-failure dataset.
//!
//! The paper publishes *aggregate* statistics (Tables 1–4, Findings 1–13)
//! plus a couple dozen named tickets. This module reconstructs a
//! per-failure dataset whose aggregates reproduce every published number
//! exactly; records the paper names carry their real ticket ids, all others
//! are marked `reconstructed`. Intra-record consistency constraints are
//! honoured (a network-message incompatibility implies a rolling upgrade
//! and ≥ 2 nodes; catastrophic-in-production implies caught-after-release;
//! the single 3-node case is ZOOKEEPER-1805; …).

use crate::types::{CaughtWhen, GapClass, StudyFailure, StudyPriority, StudySystem, Trigger};
use dup_core::{
    CassandraPriority, DataMedium, IncompatCategory, Priority, RootCause, Symptom, UpgradeKind,
};

/// Number of failures in the study.
pub const TOTAL: usize = 123;

/// Fills a length-123 vector according to `quotas`, visiting positions in a
/// stride-`step` permutation so different attributes decorrelate.
fn quota_fill<T: Clone>(quotas: &[(T, usize)], step: usize) -> Vec<T> {
    let total: usize = quotas.iter().map(|(_, n)| n).sum();
    assert_eq!(total, TOTAL, "quotas must cover all {TOTAL} records");
    assert_eq!(gcd(step, TOTAL), 1, "step must be coprime with {TOTAL}");
    let mut flat = Vec::with_capacity(TOTAL);
    for (value, count) in quotas {
        for _ in 0..*count {
            flat.push(value.clone());
        }
    }
    let mut out: Vec<Option<T>> = vec![None; TOTAL];
    for (i, value) in flat.into_iter().enumerate() {
        let pos = (i * step) % TOTAL;
        assert!(out[pos].is_none());
        out[pos] = Some(value);
    }
    out.into_iter()
        .map(|v| v.expect("permutation covers all slots"))
        .collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Builds the dataset. Deterministic: every call returns identical records.
pub fn dataset() -> Vec<StudyFailure> {
    // ---- Table 1: failures per system --------------------------------
    let systems = quota_fill(
        &[
            (StudySystem::Cassandra, 44),
            (StudySystem::HBase, 13),
            (StudySystem::Hdfs, 38),
            (StudySystem::Kafka, 7),
            (StudySystem::MapReduce, 1),
            (StudySystem::Mesos, 8),
            (StudySystem::Yarn, 8),
            (StudySystem::ZooKeeper, 4),
        ],
        1,
    );

    // ---- Table 2: symptoms, with catastrophic / in-production tiers ---
    // (symptom, catastrophic, in_production, easy_to_observe)
    let mut symptom_block: Vec<(Symptom, bool, bool, bool)> = Vec::with_capacity(TOTAL);
    let spec: [(Symptom, usize, usize, usize, usize); 7] = [
        // (symptom, total, catastrophic, in production, easy to observe)
        (Symptom::WholeClusterDown, 34, 34, 18, 34),
        (Symptom::RollingUpgradeDegradation, 16, 16, 10, 16),
        (Symptom::DataLossOrCorruption, 20, 15, 12, 15),
        (Symptom::PerformanceDegradation, 10, 4, 4, 2),
        (Symptom::PartOfClusterDown, 12, 7, 3, 12),
        (Symptom::IncorrectResult, 24, 6, 4, 7),
        (Symptom::Unknown, 7, 0, 0, 0),
    ];
    for (symptom, total, cat, prod, easy) in spec {
        for i in 0..total {
            symptom_block.push((symptom, i < cat, i < prod, i < easy));
        }
    }
    let symptoms = {
        // Permute the whole consistent tuple with one stride.
        let quotas: Vec<((Symptom, bool, bool, bool), usize)> =
            symptom_block.into_iter().map(|t| (t, 1)).collect();
        quota_fill(&quotas, 7)
    };

    // ---- §3.3: caught before/after release ----------------------------
    // In-production catastrophic (51) ⇒ AfterRelease. The remaining quota:
    // before 42, after 70, unknown 11.
    let mut caught: Vec<Option<CaughtWhen>> = symptoms
        .iter()
        .map(|(_, _, prod, _)| prod.then_some(CaughtWhen::AfterRelease))
        .collect();
    let mut before_left = 42usize;
    let mut after_left = 70 - 51usize;
    let mut unknown_left = 11usize;
    for (i, slot) in caught.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        // Catastrophic-but-not-production failures were caught in time.
        let catastrophic = symptoms[i].1;
        let value = if catastrophic && before_left > 0 {
            before_left -= 1;
            CaughtWhen::BeforeRelease
        } else if after_left > 0 {
            after_left -= 1;
            CaughtWhen::AfterRelease
        } else if unknown_left > 0 {
            unknown_left -= 1;
            CaughtWhen::Unknown
        } else {
            before_left -= 1;
            CaughtWhen::BeforeRelease
        };
        *slot = Some(value);
    }
    let caught: Vec<CaughtWhen> = caught.into_iter().map(|c| c.expect("filled")).collect();

    // ---- §4 root causes (Table 3) -------------------------------------
    #[derive(Clone)]
    enum Rc {
        Incompat(IncompatCategory),
        UpgradeOp,
        Misconfig,
        Dep,
    }
    let rc = quota_fill(
        &[
            (Rc::Incompat(IncompatCategory::SyntaxSerializationLib), 7),
            (Rc::Incompat(IncompatCategory::SyntaxEnum), 2),
            (Rc::Incompat(IncompatCategory::SyntaxSystemSpecific), 41),
            (
                Rc::Incompat(IncompatCategory::SemanticsSerializationLibMishandling),
                6,
            ),
            (
                Rc::Incompat(IncompatCategory::SemanticsIncompleteVersionHandling),
                16,
            ),
            (Rc::Incompat(IncompatCategory::SemanticsOther), 5),
            (Rc::UpgradeOp, 40),
            (Rc::Misconfig, 4),
            (Rc::Dep, 2),
        ],
        11,
    );
    // Medium split for the 77 incompatibilities: 46 persistent / 31 network.
    let mut network_left = 31usize;
    let root_causes: Vec<RootCause> = rc
        .into_iter()
        .map(|r| match r {
            Rc::Incompat(category) => {
                let medium = if network_left > 0 {
                    network_left -= 1;
                    DataMedium::NetworkMessage
                } else {
                    DataMedium::PersistentStorage
                };
                RootCause::IncompatibleInteraction { medium, category }
            }
            Rc::UpgradeOp => RootCause::BrokenUpgradeOperation,
            Rc::Misconfig => RootCause::Misconfiguration,
            Rc::Dep => RootCause::BrokenDependency,
        })
        .collect();

    // ---- Table 4 gaps ---------------------------------------------------
    let gaps = quota_fill(
        &[
            (GapClass::Major2, 3),
            (GapClass::Major1, 37),
            (GapClass::MinorGt2, 3),
            (GapClass::Minor2, 8),
            (GapClass::Minor1, 31),
            (GapClass::BugFixOnly, 6),
            (GapClass::AnyToParticular, 32),
            (GapClass::Unknown, 3),
        ],
        13,
    );

    // ---- Findings 12–13 triggers ---------------------------------------
    let triggers = quota_fill(
        &[
            (Trigger::StressDefault, 62),
            (
                Trigger::Config {
                    covered_by_unit_test: true,
                },
                7,
            ),
            (
                Trigger::Config {
                    covered_by_unit_test: false,
                },
                2,
            ),
            (
                Trigger::SpecialOps {
                    covered_by_unit_test: true,
                },
                25,
            ),
            (
                Trigger::SpecialOps {
                    covered_by_unit_test: false,
                },
                16,
            ),
            (
                Trigger::Both {
                    covered_by_unit_test: true,
                },
                6,
            ),
            (
                Trigger::Both {
                    covered_by_unit_test: false,
                },
                5,
            ),
        ],
        17,
    );

    // ---- Finding 11: determinism ----------------------------------------
    let determinism = quota_fill(&[(true, 109), (false, 14)], 19);

    // ---- Priorities (Finding 1) ------------------------------------------
    // Cassandra: 8 Urgent / 33 Normal / 3 Low of 44.
    // Others: 30 Blocker / 12 Critical / 27 Major / 8 Minor / 2 Trivial of 79.
    let mut cass_quota = vec![StudyPriority::Cassandra(CassandraPriority::Urgent); 8];
    cass_quota.extend(vec![
        StudyPriority::Cassandra(CassandraPriority::Normal);
        33
    ]);
    cass_quota.extend(vec![StudyPriority::Cassandra(CassandraPriority::Low); 3]);
    let mut jira_quota = vec![StudyPriority::Jira(Priority::Blocker); 30];
    jira_quota.extend(vec![StudyPriority::Jira(Priority::Critical); 12]);
    jira_quota.extend(vec![StudyPriority::Jira(Priority::Major); 27]);
    jira_quota.extend(vec![StudyPriority::Jira(Priority::Minor); 8]);
    jira_quota.extend(vec![StudyPriority::Jira(Priority::Trivial); 2]);

    // ---- assemble, then apply coupled fix-ups ---------------------------
    let mut records: Vec<StudyFailure> = Vec::with_capacity(TOTAL);
    let mut per_system_counter = std::collections::BTreeMap::<StudySystem, u32>::new();
    let (mut cass_i, mut jira_i) = (0usize, 0usize);
    for i in 0..TOTAL {
        let system = systems[i];
        let n = per_system_counter.entry(system).or_insert(0);
        *n += 1;
        let priority = if system == StudySystem::Cassandra {
            let p = cass_quota[cass_i];
            cass_i += 1;
            p
        } else {
            let p = jira_quota[jira_i];
            jira_i += 1;
            p
        };
        let (symptom, catastrophic, in_prod, easy) = symptoms[i];
        records.push(StudyFailure {
            id: format!("{}-R{:03}", system.prefix(), n),
            reconstructed: true,
            system,
            priority,
            symptom,
            catastrophic,
            catastrophic_in_production: in_prod,
            easy_to_observe: easy,
            caught: caught[i],
            root_cause: root_causes[i],
            gap: gaps[i],
            nodes_required: 1,
            deterministic: determinism[i],
            trigger: triggers[i],
            upgrade_kind: UpgradeKind::FullStop,
        });
    }

    // Upgrade kind: network incompatibilities and rolling-window symptoms
    // are rolling by definition; pad to the paper's 53.
    let mut rolling = 0usize;
    for r in &mut records {
        let network = matches!(
            r.root_cause,
            RootCause::IncompatibleInteraction {
                medium: DataMedium::NetworkMessage,
                ..
            }
        );
        if network || r.symptom == Symptom::RollingUpgradeDegradation {
            r.upgrade_kind = UpgradeKind::Rolling;
            rolling += 1;
        }
    }
    for r in &mut records {
        if rolling >= 53 {
            break;
        }
        if r.upgrade_kind == UpgradeKind::FullStop {
            r.upgrade_kind = UpgradeKind::Rolling;
            rolling += 1;
        }
    }

    // Nodes: network ⇒ 2; pad 2-node count to 52; the single 3-node case is
    // a ZooKeeper failure (ZOOKEEPER-1805).
    let mut twos = 0usize;
    for r in &mut records {
        if matches!(
            r.root_cause,
            RootCause::IncompatibleInteraction {
                medium: DataMedium::NetworkMessage,
                ..
            }
        ) {
            r.nodes_required = 2;
            twos += 1;
        }
    }
    for r in &mut records {
        if twos >= 52 {
            break;
        }
        if r.nodes_required == 1 {
            r.nodes_required = 2;
            twos += 1;
        }
    }
    let zk3 = records
        .iter()
        .position(|r| r.system == StudySystem::ZooKeeper && r.nodes_required == 1)
        .or_else(|| {
            records
                .iter()
                .position(|r| r.system == StudySystem::ZooKeeper)
        })
        .expect("ZooKeeper records exist");
    if records[zk3].nodes_required == 2 {
        // Keep the 2-node total at 52 by promoting a different record.
        if let Some(other) = records.iter().position(|r| r.nodes_required == 1) {
            records[other].nodes_required = 2;
        }
    }
    records[zk3].nodes_required = 3;
    records[zk3].id = "ZOOKEEPER-1805".to_string();
    records[zk3].reconstructed = false;
    // ZOOKEEPER-1805 interferes with timing: make it non-deterministic,
    // preserving the 14-record quota.
    if records[zk3].deterministic {
        records[zk3].deterministic = false;
        let donor = records
            .iter()
            .position(|r| !r.deterministic && r.id != "ZOOKEEPER-1805")
            .expect("14 nondeterministic records exist");
        records[donor].deterministic = true;
    }

    // Attach the remaining real ticket ids the paper names, matching by
    // system (ids do not affect any aggregate).
    let named: [(&str, StudySystem); 13] = [
        ("MESOS-3834", StudySystem::Mesos),
        ("HDFS-5988", StudySystem::Hdfs),
        ("CASSANDRA-4195", StudySystem::Cassandra),
        ("CASSANDRA-13441", StudySystem::Cassandra),
        ("HDFS-8676", StudySystem::Hdfs),
        ("HDFS-11856", StudySystem::Hdfs),
        ("HDFS-14726", StudySystem::Hdfs),
        ("HDFS-15624", StudySystem::Hdfs),
        ("KAFKA-7403", StudySystem::Kafka),
        ("KAFKA-10173", StudySystem::Kafka),
        ("CASSANDRA-5102", StudySystem::Cassandra),
        ("CASSANDRA-6678", StudySystem::Cassandra),
        ("HDFS-1936", StudySystem::Hdfs),
    ];
    for (ticket, system) in named {
        if let Some(r) = records
            .iter_mut()
            .find(|r| r.system == system && r.reconstructed)
        {
            r.id = ticket.to_string();
            r.reconstructed = false;
        }
    }

    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_sized() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.len(), TOTAL);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_are_unique() {
        let ds = dataset();
        let mut ids: Vec<&str> = ds.iter().map(|r| r.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), TOTAL);
    }

    #[test]
    fn named_tickets_are_present_and_flagged() {
        let ds = dataset();
        for ticket in [
            "ZOOKEEPER-1805",
            "MESOS-3834",
            "HDFS-5988",
            "CASSANDRA-4195",
        ] {
            let r = ds
                .iter()
                .find(|r| r.id == ticket)
                .unwrap_or_else(|| panic!("{ticket}"));
            assert!(!r.reconstructed);
        }
        // ZOOKEEPER-1805 is the single 3-node, timing-dependent case.
        let zk = ds.iter().find(|r| r.id == "ZOOKEEPER-1805").unwrap();
        assert_eq!(zk.nodes_required, 3);
        assert!(!zk.deterministic);
    }

    #[test]
    fn intra_record_constraints_hold() {
        for r in dataset() {
            // Network incompatibilities only manifest in rolling upgrades
            // and need at least two nodes.
            if matches!(
                r.root_cause,
                dup_core::RootCause::IncompatibleInteraction {
                    medium: dup_core::DataMedium::NetworkMessage,
                    ..
                }
            ) {
                assert_eq!(r.upgrade_kind, dup_core::UpgradeKind::Rolling, "{}", r.id);
                assert!(r.nodes_required >= 2, "{}", r.id);
            }
            // Catastrophic-in-production implies both flags.
            if r.catastrophic_in_production {
                assert!(r.catastrophic, "{}", r.id);
                assert_eq!(r.caught, crate::types::CaughtWhen::AfterRelease, "{}", r.id);
            }
            // Rolling-window degradation is by definition a rolling upgrade.
            if r.symptom == dup_core::Symptom::RollingUpgradeDegradation {
                assert_eq!(r.upgrade_kind, dup_core::UpgradeKind::Rolling, "{}", r.id);
            }
            assert!(r.nodes_required >= 1 && r.nodes_required <= 3);
        }
    }

    #[test]
    fn quota_fill_rejects_bad_inputs() {
        let r = std::panic::catch_unwind(|| quota_fill(&[(1u8, 100)], 7));
        assert!(r.is_err(), "short quota must panic");
        let r = std::panic::catch_unwind(|| quota_fill(&[(1u8, TOTAL)], 3));
        assert!(r.is_err(), "non-coprime stride must panic");
    }
}
