//! # dup-study — the 123-failure upgrade-failure study (paper §2–§5)
//!
//! A structured dataset of the 123 real-world upgrade failures the paper
//! analyzed across 8 distributed systems, plus analysis code that
//! regenerates every table and finding:
//!
//! - [`dataset`] — the records. Aggregates reproduce the paper exactly;
//!   records the paper names carry real ticket ids, the rest are flagged
//!   `reconstructed` (the paper publishes only aggregate statistics).
//! - [`table1`]–[`table4`] and [`findings`] — Tables 1–4 and Findings 1–13,
//!   with render functions for the report harness.
//! - [`baseline::NON_UPGRADE`] — the published non-upgrade comparison stats.
//!
//! # Examples
//!
//! ```
//! let ds = dup_study::dataset();
//! assert_eq!(ds.len(), 123);
//! let f = dup_study::findings(&ds);
//! assert_eq!(f.max_nodes, 3); // Finding 10
//! assert_eq!(f.caught_after_release, 70); // Finding 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod baseline;
mod dataset;
mod types;

pub use crate::analysis::{
    findings, render_findings, render_table1, render_table2, render_table3, render_table4, table1,
    table2, table3, table4, Findings, SymptomRow,
};
pub use crate::dataset::{dataset, TOTAL};
pub use crate::types::{CaughtWhen, GapClass, StudyFailure, StudyPriority, StudySystem, Trigger};
