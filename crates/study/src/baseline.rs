//! Published baseline statistics for *non-upgrade* failures, used in the
//! paper's comparisons (Finding 1 and Finding 2).

/// Aggregate statistics about non-upgrade failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineStats {
    /// % Blocker among non-upgrade bugs (JIRA-scheme systems).
    pub blocker_pct: f64,
    /// % Blocker+Critical among non-upgrade bugs.
    pub high_priority_pct: f64,
    /// % Urgent among Cassandra non-upgrade bugs.
    pub cassandra_urgent_pct: f64,
    /// % Low among Cassandra non-upgrade bugs.
    pub cassandra_low_pct: f64,
    /// % catastrophic among all failures, from Yuan et al. (OSDI '14) [80].
    pub catastrophic_pct: f64,
}

/// The paper's published baseline (§3.1, §3.2).
pub const NON_UPGRADE: BaselineStats = BaselineStats {
    blocker_pct: 10.0,
    high_priority_pct: 20.0,
    cassandra_urgent_pct: 6.0,
    cassandra_low_pct: 41.0,
    catastrophic_pct: 24.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_papers_comparisons() {
        // "The percentage of Blocker bugs ... is 3.8X in upgrade failures."
        assert!((38.0 / NON_UPGRADE.blocker_pct - 3.8).abs() < 0.01);
        // "67% ... much higher than that (24%) among all bugs."
        let catastrophic_pct = NON_UPGRADE.catastrophic_pct;
        assert!(catastrophic_pct < 67.0);
    }
}
