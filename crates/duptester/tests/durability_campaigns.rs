//! The crash-durability axis and the self-protecting executor, end to end.
//!
//! Four contracts ride on this file:
//!
//! 1. **Determinism replay** — a campaign sweeping durability modes renders
//!    a byte-identical report on 1 thread and on 4, and twice in a row; the
//!    crash-materialized storage images a torn-durability run leaves behind
//!    are byte-identical across replays of the same seed and plan.
//! 2. **False-positive guard** — a *same-version* "upgrade" under heavy
//!    faults and torn durability must report zero upgrade failures in every
//!    scenario: injected crashes and torn tails are the tester's own chaos,
//!    not the system's bugs.
//! 3. **Panic isolation** — a case whose harness execution panics costs that
//!    one case (reported `Panicked`, with a repro string); sibling cases
//!    complete normally.
//! 4. **Watchdog** — a case that never terminates is cut off at the event
//!    budget and reported `Hung` instead of wedging a worker thread.

use dup_core::{ClientOp, NodeSetup, SystemUnderTest, VersionId, WorkloadPhase};
use dup_simnet::{Ctx, Endpoint, Process, Sim, SimDuration, SimTime, StepResult};
use dup_tester::{
    fault_plan_for, Campaign, CaseStatus, Durability, FaultIntensity, Scenario, TestCase,
    WorkloadSpec,
};

fn v(s: &str) -> VersionId {
    s.parse().unwrap()
}

fn durability_campaign(threads: usize) -> dup_tester::CampaignReport {
    Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1])
        .scenarios([Scenario::Rolling])
        .unit_tests(false)
        .faults([FaultIntensity::Heavy])
        .durabilities([Durability::Strict, Durability::Buffered, Durability::Torn])
        .threads(threads)
        .run()
}

#[test]
fn snapshot_campaigns_match_no_snapshot_campaigns_byte_for_byte() {
    // The snapshot-and-fork contract: prefix reuse is a pure performance
    // choice. Sweep faults × durabilities × seeds, then compare the
    // snapshotting campaign against the no-snapshot reference at 1 and 4
    // threads, twice each — every rendered byte and every digest sum must
    // agree.
    let run = |threads: usize, snapshot: bool| {
        Campaign::builder(&dup_kvstore::KvStoreSystem)
            .seeds([1, 2, 3])
            .scenarios([Scenario::Rolling])
            .unit_tests(false)
            .faults([FaultIntensity::Off, FaultIntensity::Heavy])
            .durabilities([Durability::Strict, Durability::Torn])
            .threads(threads)
            .snapshot(snapshot)
            .run()
    };
    let reference = run(1, false);
    assert!(reference.cases_run >= 12, "sweep too small");
    for threads in [1, 4] {
        for repeat in 0..2 {
            let on = run(threads, true);
            assert_eq!(
                reference.render_table(),
                on.render_table(),
                "snapshot-on diverged (threads={threads}, repeat={repeat})"
            );
            assert_eq!(reference.failures, on.failures);
            assert_eq!(reference.sim_events_processed, on.sim_events_processed);
            assert_eq!(reference.sim_messages_delivered, on.sim_messages_delivered);
            assert_eq!(reference.sim_faults_injected, on.sim_faults_injected);
            let off = run(threads, false);
            assert_eq!(
                reference.render_table(),
                off.render_table(),
                "snapshot-off diverged (threads={threads}, repeat={repeat})"
            );
        }
    }
}

#[test]
fn durability_campaign_report_is_thread_count_and_rerun_invariant() {
    let seq = durability_campaign(1);
    let par = durability_campaign(4);
    let again = durability_campaign(1);

    assert!(seq.cases_run >= 3, "durability axis did not multiply cases");
    assert_eq!(seq.sim_events_processed, par.sim_events_processed);
    assert_eq!(seq.sim_messages_delivered, par.sim_messages_delivered);
    assert_eq!(seq.sim_faults_injected, par.sim_faults_injected);
    assert_eq!(seq.failures, par.failures);
    assert_eq!(seq.render_table(), par.render_table());
    assert_eq!(seq.render_table(), again.render_table());
    // Every reported failure pins its durability mode in the repro string.
    for f in &seq.failures {
        assert!(
            f.repro().contains("durability="),
            "repro lacks the durability axis: {}",
            f.repro()
        );
    }
}

/// The warm-runner campaign contract with everything on at once: faults,
/// buffered and torn durability, and tracing. Each worker's warm runner
/// sweeps many seed groups back to back, so two runs at 1 thread and two at
/// 4 exercise warm reuse in every dispatch shape — all four reports must be
/// byte-identical.
#[test]
fn traced_torn_campaign_is_identical_across_threads_and_warm_reruns() {
    let run = |threads: usize| {
        Campaign::builder(&dup_kvstore::KvStoreSystem)
            .seeds([1, 2])
            .scenarios([Scenario::Rolling])
            .unit_tests(false)
            .faults([FaultIntensity::Light, FaultIntensity::Heavy])
            .durabilities([Durability::Buffered, Durability::Torn])
            .threads(threads)
            .trace(dup_tester::TraceConfig::default())
            .run()
    };
    let runs = [run(1), run(1), run(4), run(4)];
    assert!(runs[0].cases_run >= 8, "axes did not multiply the matrix");
    for other in &runs[1..] {
        assert_eq!(runs[0].failures, other.failures);
        assert_eq!(runs[0].render_table(), other.render_table());
        assert_eq!(runs[0].sim_events_processed, other.sim_events_processed);
        assert_eq!(runs[0].sim_faults_injected, other.sim_faults_injected);
        assert_eq!(
            runs[0].metrics.trace_events_recorded,
            other.metrics.trace_events_recorded
        );
    }
}

/// One host's crash-materialized storage image: (host, file paths + bytes).
type HostImage = (String, Vec<(String, Vec<u8>)>);

/// Boots a same-version kvstore cluster under a torn-durability heavy fault
/// plan, lets the plan crash nodes, and returns every host's
/// crash-materialized storage image.
fn torn_storage_images(seed: u64) -> Vec<HostImage> {
    let sut = &dup_kvstore::KvStoreSystem;
    let n = sut.cluster_size();
    let mut sim = Sim::new(seed);
    for i in 0..n {
        let mut setup = NodeSetup::new(i, n);
        setup.config = sut.default_config();
        let id = sim.add_node(&format!("host-{i}"), "2.1.0", sut.spawn(v("2.1.0"), &setup));
        sim.start_node(id).expect("node starts");
    }
    let plan = fault_plan_for(
        FaultIntensity::Heavy,
        Durability::Torn,
        seed,
        n,
        SimTime::ZERO,
    )
    .expect("heavy+torn always yields a plan");
    sim.install_fault_plan(plan);
    sim.run_for(SimDuration::from_secs(30));
    assert!(sim.faults_injected() > 0, "plan injected nothing");
    (0..n)
        .map(|i| {
            let host = format!("host-{i}");
            let host_id = sim.host_id(&host);
            let files = match sim.host_storage_by_id_ref(host_id) {
                Some(storage) => storage
                    .list("")
                    .into_iter()
                    .map(|path| {
                        let bytes = storage.read(&path).expect("listed file reads").to_vec();
                        (path, bytes)
                    })
                    .collect(),
                None => Vec::new(),
            };
            (host, files)
        })
        .collect()
}

#[test]
fn crash_materialized_storage_images_replay_byte_identically() {
    for seed in [1, 7] {
        let one = torn_storage_images(seed);
        let two = torn_storage_images(seed);
        assert!(
            one.iter().any(|(_, files)| !files.is_empty()),
            "seed {seed}: no host wrote any files"
        );
        assert_eq!(one, two, "seed {seed}: recovery images diverged");
    }
}

#[test]
fn heavy_torn_crashes_on_same_version_pair_report_zero_upgrade_failures() {
    // A system "upgraded" to its own version has no upgrade bugs by
    // construction; anything the oracle reports under heavy faults *plus*
    // mid-upgrade crash points and torn tails is injected chaos bleeding
    // through — exactly what the flush points at commit boundaries and the
    // crash-exempt oracle rules must prevent. Extended scenarios included:
    // same-version downgrades, hops, and churn are equally bug-free.
    for scenario in Scenario::extended() {
        for seed in [1, 2, 3] {
            let case = TestCase {
                from: v("2.1.0"),
                to: v("2.1.0"),
                scenario,
                workload: WorkloadSpec::Stress,
                seed,
                faults: FaultIntensity::Heavy,
                durability: Durability::Torn,
            };
            let outcome = case.run(&dup_kvstore::KvStoreSystem);
            assert!(
                !outcome.is_failure(),
                "injected crash misread as an upgrade failure \
                 (scenario {scenario}, seed {seed}): {outcome:?}"
            );
        }
    }
}

// ---- toy systems for the self-protection contracts ------------------------

/// Replies `OK` to every client command; otherwise inert.
struct Echo;

impl Process for Echo {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) -> StepResult {
        Ok(())
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _payload: &[u8]) -> StepResult {
        ctx.send(from, bytes::Bytes::from_static(b"OK"));
        Ok(())
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _id: u64) -> StepResult {
        Ok(())
    }
}

/// A buggy SUT adapter: workload generation panics for one specific seed.
struct PanickySut;

impl SystemUnderTest for PanickySut {
    fn name(&self) -> &'static str {
        "panicky-toy"
    }
    fn versions(&self) -> Vec<VersionId> {
        vec![v("1.0.0"), v("2.0.0")]
    }
    fn cluster_size(&self) -> u32 {
        1
    }
    fn spawn(&self, _version: VersionId, _setup: &NodeSetup) -> Box<dyn Process> {
        Box::new(Echo)
    }
    fn stress_ops(
        &self,
        seed: u64,
        phase: WorkloadPhase,
        _client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    ) {
        // Keyed on the during-upgrade phase: that is the seed-dependent
        // suffix, so exactly one seed's case panics (the before-upgrade
        // phase draws from the shared, seed-independent prefix seed).
        if seed == 2 && phase == WorkloadPhase::DuringUpgrade {
            panic!("deliberate toy panic for seed 2");
        }
        emit(ClientOp::new(0, "HEALTH"));
    }
}

#[test]
fn panicking_case_is_isolated_and_siblings_complete() {
    let run = |threads: usize| {
        Campaign::builder(&PanickySut)
            .seeds([1, 2, 3])
            .scenarios([Scenario::FullStop])
            .unit_tests(false)
            .threads(threads)
            .run()
    };
    let report = run(1);
    assert_eq!(report.cases_run, 3, "all cases must execute");
    assert_eq!(report.cases_passed, 2, "sibling cases must pass");
    let panicked: Vec<_> = report
        .metrics
        .case_status
        .iter()
        .filter(|s| **s == CaseStatus::Panicked)
        .collect();
    assert_eq!(panicked.len(), 1, "{:?}", report.metrics.case_status);
    let failure = report
        .failures
        .iter()
        .find(|f| f.cause == "Harness Panic")
        .expect("the panic surfaces as a failure report");
    assert_eq!(failure.seed, 2);
    assert!(failure.signature.contains("panic"), "{}", failure.signature);
    assert!(failure.repro().contains("seed=2"), "{}", failure.repro());
    assert!(
        report.render_table().contains(&failure.repro()),
        "table lacks the panic repro"
    );
    // Panics are deterministic: the parallel report is byte-identical.
    assert_eq!(report.render_table(), run(4).render_table());
}

/// A runaway SUT: every node spins a zero-delay timer forever, so no phase
/// of the harness timeline can ever drain the event queue.
struct Spinner;

impl Process for Spinner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        ctx.set_timer(SimDuration::from_millis(0), 1);
        Ok(())
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _payload: &[u8]) -> StepResult {
        ctx.send(from, bytes::Bytes::from_static(b"OK"));
        Ok(())
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: u64) -> StepResult {
        ctx.set_timer(SimDuration::from_millis(0), 1);
        Ok(())
    }
}

/// A SUT whose nodes never quiesce.
struct RunawaySut;

impl SystemUnderTest for RunawaySut {
    fn name(&self) -> &'static str {
        "runaway-toy"
    }
    fn versions(&self) -> Vec<VersionId> {
        vec![v("1.0.0"), v("2.0.0")]
    }
    fn cluster_size(&self) -> u32 {
        1
    }
    fn spawn(&self, _version: VersionId, _setup: &NodeSetup) -> Box<dyn Process> {
        Box::new(Spinner)
    }
    fn stress_ops(
        &self,
        _seed: u64,
        _phase: WorkloadPhase,
        _client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    ) {
        emit(ClientOp::new(0, "HEALTH"));
    }
}

#[test]
fn runaway_case_is_cut_off_and_reported_hung() {
    let report = Campaign::builder(&RunawaySut)
        .seeds([1])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .threads(1)
        .run();
    assert_eq!(report.cases_run, 1);
    assert_eq!(report.metrics.case_status, vec![CaseStatus::Hung]);
    let failure = report
        .failures
        .first()
        .expect("the hang surfaces as a failure report");
    assert_eq!(failure.cause, "Non-termination");
    assert_eq!(failure.signature, "hung");
    assert!(failure.repro().contains("seed=1"), "{}", failure.repro());
}
