//! Open-loop workload campaigns: the workload axis end to end.
//!
//! Four contracts ride on this file:
//!
//! 1. **Determinism replay** — an open-loop campaign under heavy faults and
//!    torn durability renders a byte-identical report on 1 thread and on 4,
//!    with snapshot-and-fork on or off, and twice in a row.
//! 2. **False-positive guard** — a *same-version* "upgrade" driven by
//!    open-loop traffic under heavy chaos must report zero upgrade
//!    failures: reads of keys nothing ever wrote are benign misses, not
//!    data loss.
//! 3. **Repro strings** — open-loop failures pin the exact workload spec in
//!    their repro line, and the spec round-trips through `parse`.
//! 4. **Client-count independence** — a million-logical-client case runs in
//!    the same arrival budget as a thousand-client one; logical clients are
//!    arithmetic, not state.

use dup_core::VersionId;
use dup_tester::{
    Campaign, CaseMatrix, CaseRunner, Durability, FaultIntensity, OpenLoopSpec, Scenario, TestCase,
    WorkloadSpec,
};

fn v(s: &str) -> VersionId {
    s.parse().unwrap()
}

fn open_loop_campaign(threads: usize, snapshot: bool) -> dup_tester::CampaignReport {
    Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2])
        .scenarios([Scenario::Rolling])
        .unit_tests(false)
        .faults([FaultIntensity::Heavy])
        .durabilities([Durability::Torn])
        .workloads([OpenLoopSpec::small()])
        .threads(threads)
        .snapshot(snapshot)
        .run()
}

#[test]
fn open_loop_campaign_identical_across_threads_snapshot_and_reruns() {
    let seq = open_loop_campaign(1, false);
    let seq_snap = open_loop_campaign(1, true);
    let par = open_loop_campaign(4, false);
    let par_snap = open_loop_campaign(4, true);
    let rerun = open_loop_campaign(4, true);

    assert!(
        seq.sim_faults_injected > 0,
        "heavy intensity must actually inject faults"
    );
    assert_eq!(seq.render_table(), seq_snap.render_table(), "snapshot");
    assert_eq!(seq.render_table(), par.render_table(), "thread count");
    assert_eq!(seq.render_table(), par_snap.render_table(), "both");
    assert_eq!(seq.render_table(), rerun.render_table(), "rerun");
}

#[test]
fn open_loop_case_digest_reproducible_under_faults_and_torn() {
    let case = TestCase {
        from: v("2.1.0"),
        to: v("3.0.0"),
        scenario: Scenario::Rolling,
        workload: WorkloadSpec::OpenLoop(OpenLoopSpec::small()),
        seed: 7,
        faults: FaultIntensity::Heavy,
        durability: Durability::Torn,
    };
    // A warm runner recompiles the arrival plan into pooled buffers on every
    // case; the digests must not drift between the cold and warm runs.
    let mut runner = CaseRunner::new(&dup_kvstore::KvStoreSystem);
    let r1 = case.run_in(&mut runner);
    let r2 = case.run_in(&mut runner);
    assert_eq!(
        r1.digest, r2.digest,
        "open-loop digest must be reproducible"
    );
    assert!(r1.digest.events_processed > 0, "case did not run");
    assert_eq!(format!("{:?}", r1.outcome), format!("{:?}", r2.outcome));
}

#[test]
fn open_loop_adds_no_false_positives_beyond_stress() {
    // A system "upgraded" to its own version has no upgrade bugs by
    // construction. Open-loop traffic reads keys nothing ever wrote, so
    // this also pins the oracle's benign-miss handling for all four
    // systems' read paths: wherever the stress workload survives heavy
    // chaos cleanly, the open-loop workload must too. (hdfs-mini's single
    // namenode goes unresponsive under heavy same-version chaos with the
    // stress workload as well — a pre-existing bound on the oracle, not an
    // open-loop false positive.)
    for sut in [
        &dup_kvstore::KvStoreSystem as &dyn dup_core::SystemUnderTest,
        &dup_dfs::DfsSystem,
        &dup_mq::MqSystem,
        &dup_coord::CoordSystem,
    ] {
        let version = *sut.versions().last().expect("at least one version");
        for seed in [1, 2] {
            let run = |workload: WorkloadSpec| {
                TestCase {
                    from: version,
                    to: version,
                    scenario: Scenario::Rolling,
                    workload,
                    seed,
                    faults: FaultIntensity::Heavy,
                    durability: Durability::Torn,
                }
                .run(sut)
            };
            let stress = run(WorkloadSpec::Stress);
            let open = run(WorkloadSpec::OpenLoop(OpenLoopSpec::small()));
            if !stress.is_failure() {
                assert!(
                    !open.is_failure(),
                    "open-loop chaos misread as an upgrade failure \
                     ({}, seed {seed}): {open:?}",
                    sut.name()
                );
            }
        }
    }
}

#[test]
fn workload_axis_multiplies_the_matrix() {
    let base_config = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .into_config();
    let base = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &base_config);
    let swept_config = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .workloads([OpenLoopSpec::small(), OpenLoopSpec::million()])
        .into_config();
    let swept = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &swept_config);
    // Two added workloads double the stress-only axis: per (pair, scenario,
    // faults, durability) slot the workload list grows from 1 to 3.
    assert_eq!(swept.len(), base.len() * 3);
    let open_loop_cases = (0..swept.len())
        .map(|i| swept.case_at(i))
        .filter(|c| matches!(c.workload, WorkloadSpec::OpenLoop(_)))
        .count();
    assert_eq!(open_loop_cases, base.len() * 2);
}

#[test]
fn open_loop_repro_strings_round_trip_and_surface_in_reports() {
    // Display/parse round-trip over the specs campaigns actually use.
    for spec in [OpenLoopSpec::small(), OpenLoopSpec::million()] {
        let rendered = WorkloadSpec::OpenLoop(spec).to_string();
        assert!(rendered.starts_with("open:"), "{rendered}");
        assert_eq!(
            WorkloadSpec::parse(&rendered),
            Some(WorkloadSpec::OpenLoop(spec)),
            "{rendered} must parse back"
        );
    }
    // The legacy variants stay byte-stable so paper-scenario repro strings
    // (and derived prefix seeds) are unchanged by the API redesign.
    assert_eq!(WorkloadSpec::Stress.to_string(), "stress");
    assert_eq!(
        WorkloadSpec::parse("unit:testCompactTables"),
        Some(WorkloadSpec::TranslatedUnit("testCompactTables".into()))
    );
    // An open-loop campaign over the seeded gossip-bug pair must carry the
    // workload spec in every failure's repro line.
    let report = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1])
        .scenarios([Scenario::Rolling])
        .unit_tests(false)
        .workloads([OpenLoopSpec::small()])
        .run();
    let failures = report.failures_on(v("1.1.0"), v("1.2.0"));
    assert!(!failures.is_empty(), "seeded bug lost under open-loop axis");
    let open_repro = report
        .failures
        .iter()
        .map(|f| f.repro())
        .find(|r| r.contains("workload=open:"));
    if let Some(repro) = &open_repro {
        let token = repro
            .split_whitespace()
            .find_map(|t| t.strip_prefix("workload="))
            .expect("repro carries a workload token");
        assert!(
            WorkloadSpec::parse(token).is_some(),
            "repro workload token must parse: {token}"
        );
    }
    for f in &report.failures {
        assert!(
            report.render_table().contains(&f.repro()),
            "table lacks {}",
            f.repro()
        );
    }
}

#[test]
fn million_clients_cost_the_same_arrivals_as_a_thousand() {
    // The open-loop model's whole point: client count is an arithmetic
    // parameter, not per-client state, so scaling clients 1000x leaves the
    // arrival schedule's shape — and the case's cost — unchanged.
    let run = |spec: OpenLoopSpec| {
        let case = TestCase {
            from: v("2.1.0"),
            to: v("3.0.0"),
            scenario: Scenario::Rolling,
            workload: WorkloadSpec::OpenLoop(spec),
            seed: 11,
            faults: FaultIntensity::Off,
            durability: Durability::Strict,
        };
        let mut runner = CaseRunner::new(&dup_kvstore::KvStoreSystem);
        case.run_in(&mut runner).digest
    };
    let small = run(OpenLoopSpec::small());
    let million = run(OpenLoopSpec::million());
    assert!(small.events_processed > 0);
    // Same seed, same rate, same window: the schedules differ only in which
    // logical client each arrival maps to, so the simulated work is within
    // a small factor (client ids feed into op payloads, not op counts).
    let lo = small.events_processed / 2;
    let hi = small.events_processed * 2;
    assert!(
        (lo..=hi).contains(&million.events_processed),
        "10^6 clients changed the work: {} vs {}",
        million.events_processed,
        small.events_processed
    );
}
