//! Faulted campaigns: the fault-intensity axis end to end.
//!
//! Three contracts ride on this file:
//!
//! 1. **Determinism replay** — the same faulted campaign renders a
//!    byte-identical report on 1 thread and on 4, and twice in a row; case
//!    digests (including injected-fault counts) are reproducible.
//! 2. **False-positive guard** — a *same-version* "upgrade" under heavy
//!    faults must report zero upgrade failures in every scenario: the
//!    oracle must not mistake injected chaos for the system's own bugs.
//! 3. **Repro strings** — every failure a faulted campaign reports carries
//!    a one-line repro string pinning pair, scenario, workload, seed, fault
//!    intensity, and durability mode (the concrete plan derives from the
//!    last three).

use dup_core::VersionId;
use dup_simnet::SimTime;
use dup_tester::{
    fault_plan_for, Campaign, CaseMatrix, Durability, FaultIntensity, Scenario, TestCase,
    WorkloadSpec,
};

fn v(s: &str) -> VersionId {
    s.parse().unwrap()
}

fn faulted_campaign(threads: usize) -> dup_tester::CampaignReport {
    Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1])
        .scenarios([Scenario::Rolling])
        .unit_tests(false)
        .faults([FaultIntensity::Off, FaultIntensity::Heavy])
        .threads(threads)
        .run()
}

#[test]
fn faulted_campaign_report_is_thread_count_and_rerun_invariant() {
    let seq = faulted_campaign(1);
    let par = faulted_campaign(4);
    let again = faulted_campaign(1);

    assert!(
        seq.sim_faults_injected > 0,
        "heavy intensity must actually inject faults"
    );
    assert_eq!(seq.sim_events_processed, par.sim_events_processed);
    assert_eq!(seq.sim_messages_delivered, par.sim_messages_delivered);
    assert_eq!(seq.sim_faults_injected, par.sim_faults_injected);
    assert_eq!(seq.render_table(), par.render_table());
    assert_eq!(seq.render_table(), again.render_table());
}

#[test]
fn case_digest_reproducible_under_faults() {
    let case = TestCase {
        from: v("2.1.0"),
        to: v("3.0.0"),
        scenario: Scenario::Rolling,
        workload: WorkloadSpec::Stress,
        seed: 7,
        faults: FaultIntensity::Heavy,
        durability: Default::default(),
    };
    // A warm runner executing the faulted case twice reinstalls its fault
    // plan into the pooled state both times; the digests must not drift.
    let mut runner = dup_tester::CaseRunner::new(&dup_kvstore::KvStoreSystem);
    let r1 = case.run_in(&mut runner);
    let r2 = case.run_in(&mut runner);
    assert_eq!(
        r1.digest, r2.digest,
        "faulted case digest must be reproducible"
    );
    assert!(r1.digest.faults_injected > 0, "heavy plan injected nothing");
    assert_eq!(format!("{:?}", r1.outcome), format!("{:?}", r2.outcome));

    let off = TestCase {
        faults: FaultIntensity::Off,
        durability: Default::default(),
        ..case
    };
    // The faults-off case runs on the same warm runner: the parked fault
    // state must stay parked and inject nothing.
    let d_off = off.run_in(&mut runner).digest;
    assert_eq!(d_off.faults_injected, 0, "faults off must inject nothing");
}

#[test]
fn heavy_faults_on_same_version_pair_report_zero_upgrade_failures() {
    // A system "upgraded" to its own version has no upgrade bugs by
    // construction; anything the oracle reports under heavy chaos is the
    // fault injection bleeding through — exactly what it must not do.
    // Extended scenarios included: same-version rollback, hops, canary, and
    // churn plans are equally bug-free.
    for scenario in Scenario::extended() {
        for seed in [1, 2, 3] {
            let case = TestCase {
                from: v("2.1.0"),
                to: v("2.1.0"),
                scenario,
                workload: WorkloadSpec::Stress,
                seed,
                faults: FaultIntensity::Heavy,
                durability: Default::default(),
            };
            let outcome = case.run(&dup_kvstore::KvStoreSystem);
            assert!(
                !outcome.is_failure(),
                "injected chaos misread as an upgrade failure \
                 (scenario {scenario}, seed {seed}): {outcome:?}"
            );
        }
    }
}

#[test]
fn faulted_failures_carry_repro_strings() {
    // 1.1.0 -> 1.2.0 rolling is the seeded CASSANDRA-4195 gossip bug; it
    // must still be found with faults on, and the report must say how to
    // replay it.
    let report = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1])
        .scenarios([Scenario::Rolling])
        .unit_tests(false)
        .faults([FaultIntensity::Light])
        .run();
    let failures = report.failures_on(v("1.1.0"), v("1.2.0"));
    assert!(!failures.is_empty(), "seeded bug lost under light faults");
    for f in &report.failures {
        let repro = f.repro();
        assert!(repro.contains(&format!("{}->{}", f.from, f.to)), "{repro}");
        assert!(
            repro.contains(&format!("scenario={}", f.scenario)),
            "{repro}"
        );
        assert!(repro.contains(&format!("seed={}", f.seed)), "{repro}");
        assert!(repro.contains("faults=light"), "{repro}");
        assert!(
            report.render_table().contains(&repro),
            "table lacks {repro}"
        );
    }
}

#[test]
fn fault_axis_multiplies_the_matrix_with_seeds_innermost() {
    let base_config = dup_tester::Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .into_config();
    let base = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &base_config);
    let swept_config = dup_tester::Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .faults(FaultIntensity::ALL)
        .into_config();
    let swept = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &swept_config);
    assert_eq!(swept.len(), base.len() * FaultIntensity::ALL.len());
    // Every seed group holds one intensity across all seeds, and every
    // intensity shows up.
    let mut seen = std::collections::BTreeSet::new();
    for g in swept.groups() {
        let cases: Vec<TestCase> = g.indices().map(|i| swept.case_at(i)).collect();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].faults, cases[1].faults);
        assert_eq!((cases[0].seed, cases[1].seed), (1, 2));
        seen.insert(cases[0].faults);
    }
    assert_eq!(seen.len(), 3);
}

#[test]
fn plan_derivation_matches_what_cases_record() {
    // The repro contract: the plan a failing case ran under is recomputable
    // from its intensity + seed + cluster size alone.
    let n = 3;
    let a = fault_plan_for(
        FaultIntensity::Heavy,
        Durability::Strict,
        42,
        n,
        SimTime::ZERO,
    )
    .unwrap();
    let b = fault_plan_for(
        FaultIntensity::Heavy,
        Durability::Strict,
        42,
        n,
        SimTime::ZERO,
    )
    .unwrap();
    assert_eq!(a.describe(), b.describe());
    assert_ne!(
        a.describe(),
        fault_plan_for(
            FaultIntensity::Light,
            Durability::Strict,
            42,
            n,
            SimTime::ZERO
        )
        .unwrap()
        .describe(),
        "intensities must differ"
    );
}
