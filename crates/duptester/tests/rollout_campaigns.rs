//! Rollout-plan campaigns: the four extended scenarios — rollback,
//! multi-hop, canary-then-fleet, and rolling-with-churn — end to end.
//!
//! Four contracts ride on this file:
//!
//! 1. **Determinism** — an extended-scenario campaign under heavy faults,
//!    torn durability, and tracing renders a byte-identical report across
//!    thread counts, snapshot settings, and reruns.
//! 2. **Rollback exclusivity** — the seeded CASSANDRA-15794 analog (4.0
//!    stamps its commitlog format before validating, so a rolled-back 3.11
//!    chokes on the newer header) is found by `RollbackAfterPartial` and by
//!    *none* of the paper's three scenarios.
//! 3. **Multi-hop exclusivity** — the seeded CASSANDRA-13441 analog (the
//!    3.11 schema-pull storm on the 3.0 → 3.11 → 4.0 path) is found by
//!    `MultiHop` over the gap-2 pair and by none of the paper scenarios on
//!    that same pair.
//! 4. **Repro plans** — every extended-scenario failure's repro string
//!    carries a `plan=` segment that parses back into a valid rollout plan,
//!    and paper-scenario failures carry none.
//!
//! Rollback failure slices are also written to `target/trace-slices/` with
//! a `rollout-` prefix so CI can upload them when a campaign test fails.

use dup_core::VersionId;
use dup_tester::{
    Campaign, CampaignReport, Durability, FaultIntensity, RenderOptions, RolloutPlan, Scenario,
    TraceConfig,
};
use std::path::PathBuf;

fn v(s: &str) -> VersionId {
    s.parse().unwrap()
}

/// Writes every failure's rendered slice under
/// `target/trace-slices/rollout-<name>-<index>.*` before any assertion
/// runs, so a failing test still leaves evidence for the artifact upload.
fn dump_slices(name: &str, report: &CampaignReport) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/trace-slices");
    std::fs::create_dir_all(&dir).expect("create target/trace-slices");
    for (i, failure) in report.failures.iter().enumerate() {
        let rendered = failure.render(RenderOptions::with_trace());
        std::fs::write(dir.join(format!("rollout-{name}-{i}.txt")), rendered)
            .expect("write timeline");
        if let Some(slice) = &failure.trace {
            std::fs::write(
                dir.join(format!("rollout-{name}-{i}.json")),
                slice.to_chrome_json(),
            )
            .expect("write chrome json");
        }
    }
}

/// The adversarial end of the matrix for all four extended scenarios at
/// once: heavy faults, torn durability, tracing, multiple seeds.
fn extended_campaign(threads: usize, snapshot: bool) -> CampaignReport {
    Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2])
        .scenarios([
            Scenario::RollbackAfterPartial,
            Scenario::MultiHop,
            Scenario::CanaryThenFleet,
            Scenario::RollingWithChurn,
        ])
        .unit_tests(false)
        .faults([FaultIntensity::Heavy])
        .durabilities([Durability::Torn])
        .threads(threads)
        .snapshot(snapshot)
        .trace(TraceConfig::default())
        .run()
}

#[test]
fn extended_scenario_reports_are_byte_identical_across_threads_snapshot_and_reruns() {
    let reference = extended_campaign(1, false);
    dump_slices("heavy-torn", &reference);
    assert!(
        reference.failures.iter().any(|f| f.plan.is_some()),
        "the extended sweep should find at least one plan-carrying failure"
    );
    for (threads, snapshot) in [(4, false), (1, true), (4, true), (1, false)] {
        let other = extended_campaign(threads, snapshot);
        // FailureReport equality covers the attached slices event by event.
        assert_eq!(
            reference.failures, other.failures,
            "threads={threads}, snapshot={snapshot}"
        );
        assert_eq!(
            reference.render_table(),
            other.render_table(),
            "threads={threads}, snapshot={snapshot}"
        );
    }
}

/// Fault-free single-scenario campaign over the kvstore catalog.
fn scenario_campaign(scenario: Scenario, gap_two: bool) -> CampaignReport {
    Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1])
        .scenarios([scenario])
        .gap_two(gap_two)
        .unit_tests(false)
        .trace(TraceConfig::default())
        .run()
}

#[test]
fn rollback_bug_found_by_rollback_scenario_and_no_paper_scenario() {
    let (from, to) = (v("3.11.0"), v("4.0.0"));
    let marker = "unknown format 40";

    let rollback = scenario_campaign(Scenario::RollbackAfterPartial, false);
    dump_slices("rollback", &rollback);
    assert!(
        rollback
            .failures_on(from, to)
            .iter()
            .any(|f| f.to_string().contains(marker)),
        "RollbackAfterPartial must detect the seeded rollback bug on \
         {from}->{to}:\n{}",
        rollback.render_table()
    );

    for scenario in Scenario::paper() {
        let report = scenario_campaign(scenario, false);
        assert!(
            !report
                .failures
                .iter()
                .any(|f| f.to_string().contains(marker)),
            "{scenario} must not trip the rollback-only bug:\n{}",
            report.render_table()
        );
    }
}

#[test]
fn multi_hop_storm_found_by_multi_hop_and_no_paper_scenario_on_the_gap_two_pair() {
    let (from, to) = (v("3.0.0"), v("4.0.0"));
    let marker = "message storm";

    let multi_hop = scenario_campaign(Scenario::MultiHop, true);
    dump_slices("multi-hop", &multi_hop);
    assert!(
        multi_hop
            .failures_on(from, to)
            .iter()
            .any(|f| f.to_string().contains(marker)),
        "MultiHop must detect the seeded storm on the gap-2 pair \
         {from}->{to}:\n{}",
        multi_hop.render_table()
    );

    // The storm lives only on the intermediate 3.11 release: a direct
    // 3.0 -> 4.0 upgrade never runs it, whatever the paper scenario.
    for scenario in Scenario::paper() {
        let report = scenario_campaign(scenario, true);
        assert!(
            !report
                .failures_on(from, to)
                .iter()
                .any(|f| f.to_string().contains(marker)),
            "{scenario} must not trip the multi-hop-only storm on \
             {from}->{to}:\n{}",
            report.render_table()
        );
    }
}

#[test]
fn extended_failures_carry_parseable_plans_and_paper_failures_carry_none() {
    let rollback = scenario_campaign(Scenario::RollbackAfterPartial, false);
    assert!(!rollback.failures.is_empty(), "seeded rollback bug missing");
    let n = 3; // kvstore cluster size
    for failure in &rollback.failures {
        let repro = failure.repro();
        let rendered = failure
            .plan
            .as_deref()
            .unwrap_or_else(|| panic!("extended failure without a plan: {repro}"));
        assert!(
            repro.contains(&format!(" plan={rendered}")),
            "repro must embed the plan: {repro}"
        );
        // The recorded plan round-trips through the grammar and is a valid
        // schedule for the cluster it ran on.
        let parsed = RolloutPlan::parse(rendered)
            .unwrap_or_else(|e| panic!("unparseable plan {rendered:?}: {e}"));
        assert_eq!(parsed.render(), *rendered, "plan must round-trip");
        parsed
            .validate(n)
            .unwrap_or_else(|e| panic!("invalid recorded plan {rendered:?}: {e}"));
    }

    let paper = scenario_campaign(Scenario::Rolling, false);
    assert!(!paper.failures.is_empty(), "paper seeded bugs missing");
    for failure in &paper.failures {
        assert!(
            failure.plan.is_none(),
            "paper-scenario failure must not record a plan: {}",
            failure.repro()
        );
        assert!(!failure.repro().contains(" plan="));
    }
}
