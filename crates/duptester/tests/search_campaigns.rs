//! Recall and determinism gates for coverage-guided campaign search.
//!
//! The recall tests hold the search to the ground-truth seeded-bug catalog:
//! for every non-timing-dependent bug the guided search must detect it
//! within no more cases than the blind seed sweep spends, and summed over
//! the catalog the guided search must spend strictly fewer cases. The two
//! timing-dependent bugs the satellite names (HDFS-11856, ZOOKEEPER-1805)
//! are coin flips per case by design, so they get a detection-rate
//! comparison at a fixed budget instead of a cases-to-detection bound.
//!
//! The determinism tests pin the properties everything above relies on:
//! trace signatures are byte-identical whether the runner is fresh, warm,
//! or snapshotting, and a full guided run renders the identical corpus and
//! report across thread counts, snapshot settings, and reruns.
//!
//! On failure each recall test leaves its corpus dumps under
//! `target/search-corpus/` for CI to upload.

use dup_core::{SystemUnderTest, VersionId};
use dup_tester::{
    catalog, Campaign, CaseRunner, CaseSignature, Durability, FaultIntensity, OpenLoopSpec,
    Scenario, SearchConfig, SearchReport, TestCase, TraceConfig, WorkloadSpec,
};
use std::path::PathBuf;

fn system(name: &str) -> &'static dyn SystemUnderTest {
    match name {
        "cassandra-mini" => &dup_kvstore::KvStoreSystem,
        "hdfs-mini" => &dup_dfs::DfsSystem,
        "kafka-mini" => &dup_mq::MqSystem,
        "zookeeper-mini" => &dup_coord::CoordSystem,
        other => panic!("unknown catalog system {other}"),
    }
}

/// The recall configuration: same shape as `SEARCH_efficiency.json`'s
/// cases-to-detection table — fault-free groups, bootstrap seed 1, budget 4.
fn recall_search(sut: &dyn SystemUnderTest, blind: bool, threads: usize) -> SearchReport {
    Campaign::builder(sut)
        .scenarios([Scenario::FullStop, Scenario::Rolling])
        .faults([FaultIntensity::Off])
        .threads(threads)
        .search(SearchConfig {
            budget_per_group: 4,
            initial_seeds: vec![1],
            blind,
            ..SearchConfig::default()
        })
        .build()
        .run_search()
}

fn dump_corpus(name: &str, report: &SearchReport) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/search-corpus");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), report.render_summary());
    }
}

/// The recall gate for one system: guided detects every non-timing catalog
/// bug within the blind sweep's cases-to-detection, and spends strictly
/// fewer cases overall.
fn assert_recall(name: &str) {
    let sut = system(name);
    let guided = recall_search(sut, false, 0);
    let blind = recall_search(sut, true, 0);
    dump_corpus(&format!("{name}-guided"), &guided);
    dump_corpus(&format!("{name}-blind"), &blind);

    for bug in catalog::seeded_bugs() {
        // Scenario-gated bugs need an extended rollout plan the paper-shaped
        // recall config never compiles; they get their own gate below.
        if bug.system != name || bug.timing_dependent || bug.scenario.is_some() {
            continue;
        }
        let (from, to): (VersionId, VersionId) = (bug.from_version(), bug.to_version());
        let g = guided
            .cases_to_detect(from, to, bug.marker)
            .unwrap_or_else(|| panic!("guided search missed {}", bug.ticket));
        let b = blind
            .cases_to_detect(from, to, bug.marker)
            .unwrap_or_else(|| panic!("blind sweep missed {}", bug.ticket));
        assert!(
            g <= b,
            "{}: guided took {g} cases, blind took {b}",
            bug.ticket
        );
    }
    assert!(
        guided.total_cases() < blind.total_cases(),
        "{name}: guided must spend strictly fewer cases ({} vs {})",
        guided.total_cases(),
        blind.total_cases()
    );
}

#[test]
fn recall_cassandra_mini() {
    assert_recall("cassandra-mini");
}

/// The recall gate for the rollout-plan-exclusive catalog bugs: guided
/// search — whose `NudgeRolloutPlan` operator is live for extended
/// scenarios even with faults off — must detect each within no more cases
/// than the blind sweep, and spend fewer cases overall.
#[test]
fn recall_rollout_exclusive_bugs_guided_vs_blind() {
    for bug in catalog::seeded_bugs() {
        let Some(scenario) = bug.scenario else {
            continue;
        };
        let sut = system(bug.system);
        let (from, to) = (bug.from_version(), bug.to_version());
        // Multi-hop pairs span two releases, so the matrix needs gap-2
        // pairs to reach them.
        let gap_two = scenario == Scenario::MultiHop;
        let run = |blind: bool| {
            Campaign::builder(sut)
                .scenarios([scenario])
                .gap_two(gap_two)
                .unit_tests(false)
                .faults([FaultIntensity::Off])
                .threads(0)
                .search(SearchConfig {
                    budget_per_group: 4,
                    initial_seeds: vec![1],
                    blind,
                    ..SearchConfig::default()
                })
                .build()
                .run_search()
        };
        let guided = run(false);
        let blind = run(true);
        dump_corpus(&format!("{}-rollout-guided", bug.system), &guided);
        dump_corpus(&format!("{}-rollout-blind", bug.system), &blind);
        let g = guided
            .cases_to_detect(from, to, bug.marker)
            .unwrap_or_else(|| panic!("guided search missed {}", bug.ticket));
        let b = blind
            .cases_to_detect(from, to, bug.marker)
            .unwrap_or_else(|| panic!("blind sweep missed {}", bug.ticket));
        assert!(
            g <= b,
            "{}: guided took {g} cases, blind took {b}",
            bug.ticket
        );
        assert!(
            guided.total_cases() < blind.total_cases(),
            "{}: guided must spend strictly fewer cases ({} vs {})",
            bug.ticket,
            guided.total_cases(),
            blind.total_cases()
        );
    }
}

#[test]
fn recall_hdfs_mini() {
    assert_recall("hdfs-mini");
}

/// The workload-axis recall gate (`SEARCH_efficiency.json` v3's third
/// pass): with the open-loop workload axis enabled — which adds groups
/// whose guided search draws from the widened operator set, bursts, hot
/// keys, and churn included — guided must still detect every non-timing
/// catalog bug within the blind sweep's cases-to-detection, and spend
/// strictly fewer cases overall.
#[test]
fn recall_with_open_loop_workload_axis_guided_vs_blind() {
    for name in [
        "cassandra-mini",
        "hdfs-mini",
        "kafka-mini",
        "zookeeper-mini",
    ] {
        let sut = system(name);
        let run = |blind: bool| {
            Campaign::builder(sut)
                .scenarios([Scenario::FullStop, Scenario::Rolling])
                .faults([FaultIntensity::Off])
                .workloads([OpenLoopSpec::small()])
                .threads(0)
                .search(SearchConfig {
                    budget_per_group: 4,
                    initial_seeds: vec![1],
                    blind,
                    ..SearchConfig::default()
                })
                .build()
                .run_search()
        };
        let guided = run(false);
        let blind = run(true);
        dump_corpus(&format!("{name}-workload-guided"), &guided);
        dump_corpus(&format!("{name}-workload-blind"), &blind);
        for bug in catalog::seeded_bugs() {
            if bug.system != name || bug.timing_dependent || bug.scenario.is_some() {
                continue;
            }
            let (from, to) = (bug.from_version(), bug.to_version());
            let g = guided
                .cases_to_detect(from, to, bug.marker)
                .unwrap_or_else(|| panic!("guided search missed {}", bug.ticket));
            let b = blind
                .cases_to_detect(from, to, bug.marker)
                .unwrap_or_else(|| panic!("blind sweep missed {}", bug.ticket));
            assert!(
                g <= b,
                "{}: guided took {g} cases, blind took {b}",
                bug.ticket
            );
        }
        assert!(
            guided.total_cases() < blind.total_cases(),
            "{name}: guided must spend strictly fewer cases ({} vs {})",
            guided.total_cases(),
            blind.total_cases()
        );
    }
}

#[test]
fn recall_kafka_mini() {
    assert_recall("kafka-mini");
}

#[test]
fn recall_zookeeper_mini() {
    assert_recall("zookeeper-mini");
}

/// Detection rate at a fixed per-group budget, over `reps` repetitions each
/// bootstrapping both modes from the same fresh seed. Light faults give the
/// mutation operators a plan to perturb.
fn detection_rate(ticket: &str, reps: u64) -> (u64, u64, usize, usize) {
    let bug = catalog::seeded_bugs()
        .into_iter()
        .find(|b| b.ticket == ticket)
        .expect("catalog ticket");
    assert!(bug.timing_dependent, "{ticket} should be timing-dependent");
    let sut = system(bug.system);
    let (from, to) = (bug.from_version(), bug.to_version());
    let mut hits = (0u64, 0u64);
    let mut cases = (0usize, 0usize);
    for rep in 0..reps {
        for blind in [false, true] {
            let report = Campaign::builder(sut)
                .scenarios([Scenario::Rolling])
                .faults([FaultIntensity::Light])
                .threads(0)
                .search(SearchConfig {
                    budget_per_group: 6,
                    initial_seeds: vec![rep],
                    search_seed: 0xC0FF_EE00 + rep,
                    blind,
                    ..SearchConfig::default()
                })
                .build()
                .run_search();
            let hit = report.cases_to_detect(from, to, bug.marker).is_some() as u64;
            if blind {
                hits.1 += hit;
                cases.1 += report.total_cases();
            } else {
                hits.0 += hit;
                cases.0 += report.total_cases();
            }
        }
    }
    (hits.0, hits.1, cases.0, cases.1)
}

#[test]
fn timing_dependent_hdfs_11856_detection_rate_at_fixed_budget() {
    let (guided_hits, blind_hits, guided_cases, blind_cases) = detection_rate("HDFS-11856", 3);
    assert!(
        guided_hits >= blind_hits,
        "guided rate {guided_hits}/3 fell below blind rate {blind_hits}/3"
    );
    assert!(guided_hits > 0, "guided search never hit HDFS-11856");
    assert!(
        guided_cases < blind_cases,
        "guided spent {guided_cases} cases vs blind {blind_cases}"
    );
}

#[test]
fn timing_dependent_zookeeper_1805_detection_rate_at_fixed_budget() {
    let (guided_hits, blind_hits, guided_cases, blind_cases) = detection_rate("ZOOKEEPER-1805", 3);
    assert!(
        guided_hits >= blind_hits,
        "guided rate {guided_hits}/3 fell below blind rate {blind_hits}/3"
    );
    assert!(guided_hits > 0, "guided search never hit ZOOKEEPER-1805");
    assert!(
        guided_cases < blind_cases,
        "guided spent {guided_cases} cases vs blind {blind_cases}"
    );
}

fn signature_digest(runner: &mut CaseRunner<'_>, case: &TestCase) -> u64 {
    let result = case.run_in(runner);
    assert!(result.digest.events_processed > 0, "case did not run");
    let trace = runner.trace_buffer().expect("tracing enabled");
    let mut sig = CaseSignature::new();
    sig.fold(trace);
    assert!(sig.bits_set() > 0, "signature folded no events");
    sig.digest()
}

/// The signature of a case is a pure function of the case: fresh runner,
/// warm runner (second run in the same runner), and snapshotting runner all
/// fold byte-identical signatures.
#[test]
fn signature_identical_across_fresh_warm_and_snapshot_runners() {
    let sut = system("cassandra-mini");
    let case = TestCase {
        from: "2.1.0".parse().unwrap(),
        to: "3.0.0".parse().unwrap(),
        scenario: Scenario::Rolling,
        workload: WorkloadSpec::Stress,
        seed: 7,
        faults: FaultIntensity::Light,
        durability: Durability::Strict,
    };
    let trace = Some(TraceConfig::default());

    let mut fresh = CaseRunner::with_options(sut, trace, false);
    let fresh_digest = signature_digest(&mut fresh, &case);
    let warm_digest = signature_digest(&mut fresh, &case);

    let mut snapshotting = CaseRunner::with_options(sut, trace, true);
    let snap_cold = signature_digest(&mut snapshotting, &case);
    let snap_restored = signature_digest(&mut snapshotting, &case);

    assert_eq!(
        fresh_digest, warm_digest,
        "warm rerun changed the signature"
    );
    assert_eq!(fresh_digest, snap_cold, "snapshot runner (cold) diverged");
    assert_eq!(
        fresh_digest, snap_restored,
        "snapshot-restored run diverged"
    );
}

/// A full guided search renders the identical corpus and report whether it
/// runs on one thread or four, with snapshotting on or off, and across
/// reruns.
#[test]
fn guided_search_identical_across_threads_snapshot_and_reruns() {
    let run = |threads: usize, snapshot: bool| {
        Campaign::builder(system("kafka-mini"))
            .scenarios([Scenario::Rolling])
            .faults([FaultIntensity::Light])
            .threads(threads)
            .snapshot(snapshot)
            .search(SearchConfig {
                budget_per_group: 4,
                initial_seeds: vec![1],
                ..SearchConfig::default()
            })
            .build()
            .run_search()
    };
    let sequential = run(1, true).render_summary();
    let parallel = run(4, false).render_summary();
    let rerun = run(4, false).render_summary();
    assert_eq!(sequential, parallel, "thread count changed the search");
    assert_eq!(parallel, rerun, "rerun changed the search");
    assert!(
        sequential.contains("digest="),
        "summary should dump a non-empty corpus:\n{sequential}"
    );
}
