//! End-to-end campaigns: DUPTester against the four mini systems.
//!
//! These tests are the executable form of the paper's Table 5: every seeded
//! bug with a deterministic trigger must be (re)discovered, and the clean
//! control pairs must stay clean.

use dup_core::VersionId;
use dup_tester::{
    catalog, run_campaign, run_case, CampaignConfig, CaseOutcome, Scenario, TestCase,
    WorkloadSource,
};

fn v(s: &str) -> VersionId {
    s.parse().unwrap()
}

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        seeds: vec![1],
        include_gap_two: false,
        scenarios: vec![Scenario::FullStop, Scenario::Rolling],
        use_unit_tests: true,
    }
}

#[test]
fn kvstore_campaign_finds_the_seeded_cassandra_bugs() {
    let report = run_campaign(&dup_kvstore::KvStoreSystem, &quick_config());
    let (caught, missed) = catalog::recall(&report);
    // Deterministic bugs must be caught; CASSANDRA-6678 is a race and may
    // need more seeds (checked separately below).
    for ticket in [
        "CASSANDRA-4195",
        "CASSANDRA-16257 (shape)",
        "CASSANDRA-13441",
        "CASSANDRA-16292 (shape)",
        "CASSANDRA-15794",
        "CASSANDRA-16301",
    ] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
    // The control pair stays clean.
    assert!(
        report.failures_on(v("2.1.0"), v("3.0.0")).is_empty(),
        "false positives on the clean pair: {:#?}",
        report
            .failures_on(v("2.1.0"), v("3.0.0"))
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn cassandra_6678_race_reproduces_across_seeds() {
    // The handshake/gossip race (paper §4.1.2) — nondeterministic, so sweep
    // seeds until one ordering triggers it.
    let mut hits = 0;
    for seed in 0..12 {
        let case = TestCase {
            from: v("1.2.0"),
            to: v("2.0.0"),
            scenario: Scenario::Rolling,
            workload: WorkloadSource::Stress,
            seed,
        };
        if let CaseOutcome::Fail(obs) = run_case(&dup_kvstore::KvStoreSystem, &case) {
            if obs
                .iter()
                .any(|o| o.to_string().contains("cannot apply schema migrated"))
            {
                hits += 1;
            }
        }
    }
    assert!(hits > 0, "race never triggered in 12 seeds");
    assert!(hits < 12, "race triggered in every seed — it is not a race");
}

#[test]
fn dfs_campaign_finds_the_seeded_hdfs_bugs() {
    let report = run_campaign(&dup_dfs::DfsSystem, &quick_config());
    let (caught, missed) = catalog::recall(&report);
    for ticket in [
        "HDFS-1936",
        "HDFS-5988",
        "HDFS-8676",
        "HDFS-11856",
        "HDFS-14726",
        "HDFS-15624",
    ] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
    // Control pairs.
    assert!(report.failures_on(v("2.0.0"), v("2.6.0")).is_empty());
    assert!(report.failures_on(v("2.8.0"), v("3.1.0")).is_empty());
}

#[test]
fn mq_campaign_finds_the_seeded_kafka_bugs() {
    let report = run_campaign(&dup_mq::MqSystem, &quick_config());
    let (caught, missed) = catalog::recall(&report);
    for ticket in ["KAFKA-6238", "KAFKA-7403", "KAFKA-10173"] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
    assert!(report.failures_on(v("2.1.0"), v("2.3.0")).is_empty());
}

#[test]
fn coord_campaign_finds_the_seeded_zookeeper_bugs() {
    let report = run_campaign(&dup_coord::CoordSystem, &quick_config());
    let (caught, missed) = catalog::recall(&report);
    for ticket in ["ZOOKEEPER-1805", "MESOS-3834 (shape)"] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
}

#[test]
fn full_stop_3_4_to_3_5_coord_is_clean_but_rolling_is_not() {
    // ZOOKEEPER-1805 is rolling-only: full-stop upgrades never mix versions
    // at election time.
    let full_stop = TestCase {
        from: v("3.4.0"),
        to: v("3.5.0"),
        scenario: Scenario::FullStop,
        workload: WorkloadSource::Stress,
        seed: 1,
    };
    assert!(
        !run_case(&dup_coord::CoordSystem, &full_stop).is_failure(),
        "full-stop 3.4->3.5 should be clean"
    );
    let rolling = TestCase {
        scenario: Scenario::Rolling,
        ..full_stop
    };
    assert!(run_case(&dup_coord::CoordSystem, &rolling).is_failure());
}

#[test]
fn new_node_join_scenario_runs() {
    let case = TestCase {
        from: v("2.1.0"),
        to: v("3.0.0"),
        scenario: Scenario::NewNodeJoin,
        workload: WorkloadSource::Stress,
        seed: 1,
    };
    // The clean kvstore pair should also accept a new-version joiner.
    let outcome = run_case(&dup_kvstore::KvStoreSystem, &case);
    assert!(!outcome.is_failure(), "unexpected failure: {outcome:?}");
}
