//! End-to-end campaigns: DUPTester against the four mini systems.
//!
//! These tests are the executable form of the paper's Table 5: every seeded
//! bug with a deterministic trigger must be (re)discovered, and the clean
//! control pairs must stay clean. They also pin down the engine contract:
//! the report is byte-identical whatever the thread count, and observer
//! callbacks fire exactly once per enumerated case.

use dup_core::VersionId;
use dup_tester::{
    catalog, Campaign, CampaignObserver, CampaignReport, CaseOutcome, CaseStatus, Scenario,
    TestCase, WorkloadSpec,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn v(s: &str) -> VersionId {
    s.parse().unwrap()
}

fn quick_campaign(sut: &dyn dup_core::SystemUnderTest) -> CampaignReport {
    Campaign::builder(sut)
        .seeds([1])
        .scenarios([Scenario::FullStop, Scenario::Rolling])
        .run()
}

#[test]
fn kvstore_campaign_finds_the_seeded_cassandra_bugs() {
    let report = quick_campaign(&dup_kvstore::KvStoreSystem);
    let (caught, missed) = catalog::recall(&report);
    // Deterministic bugs must be caught; CASSANDRA-6678 is a race and may
    // need more seeds (checked separately below).
    for ticket in [
        "CASSANDRA-4195",
        "CASSANDRA-16257 (shape)",
        "CASSANDRA-13441",
        "CASSANDRA-16292 (shape)",
        "CASSANDRA-15794",
        "CASSANDRA-16301",
    ] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
    // The control pair stays clean.
    assert!(
        report.failures_on(v("2.1.0"), v("3.0.0")).is_empty(),
        "false positives on the clean pair: {:#?}",
        report
            .failures_on(v("2.1.0"), v("3.0.0"))
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
    );
    // Metrics are populated on every run.
    let m = &report.metrics;
    assert_eq!(
        m.case_status.len(),
        report.cases_run,
        "one status per executed case"
    );
    assert!(m.threads_used >= 1);
    assert!(!m.per_scenario.is_empty());
    assert!(report.render_table().contains("dedup:"));
}

#[test]
fn cassandra_6678_race_reproduces_across_seeds() {
    // The handshake/gossip race (paper §4.1.2) — nondeterministic, so sweep
    // seeds until one ordering triggers it.
    let mut hits = 0;
    for seed in 0..12 {
        let case = TestCase {
            from: v("1.2.0"),
            to: v("2.0.0"),
            scenario: Scenario::Rolling,
            workload: WorkloadSpec::Stress,
            seed,
            faults: Default::default(),
            durability: Default::default(),
        };
        if let CaseOutcome::Fail(obs) = case.run(&dup_kvstore::KvStoreSystem) {
            if obs
                .iter()
                .any(|o| o.to_string().contains("cannot apply schema migrated"))
            {
                hits += 1;
            }
        }
    }
    assert!(hits > 0, "race never triggered in 12 seeds");
    assert!(hits < 12, "race triggered in every seed — it is not a race");
}

#[test]
fn dfs_campaign_finds_the_seeded_hdfs_bugs() {
    let report = quick_campaign(&dup_dfs::DfsSystem);
    let (caught, missed) = catalog::recall(&report);
    for ticket in [
        "HDFS-1936",
        "HDFS-5988",
        "HDFS-8676",
        "HDFS-11856",
        "HDFS-14726",
        "HDFS-15624",
    ] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
    // Control pairs.
    assert!(report.failures_on(v("2.0.0"), v("2.6.0")).is_empty());
    assert!(report.failures_on(v("2.8.0"), v("3.1.0")).is_empty());
}

#[test]
fn mq_campaign_finds_the_seeded_kafka_bugs() {
    let report = quick_campaign(&dup_mq::MqSystem);
    let (caught, missed) = catalog::recall(&report);
    for ticket in ["KAFKA-6238", "KAFKA-7403", "KAFKA-10173"] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
    assert!(report.failures_on(v("2.1.0"), v("2.3.0")).is_empty());
}

#[test]
fn coord_campaign_finds_the_seeded_zookeeper_bugs() {
    let report = quick_campaign(&dup_coord::CoordSystem);
    let (caught, missed) = catalog::recall(&report);
    for ticket in ["ZOOKEEPER-1805", "MESOS-3834 (shape)"] {
        assert!(
            caught.contains(&ticket),
            "missed {ticket}; caught {caught:?}, missed {missed:?}"
        );
    }
}

#[test]
fn full_stop_3_4_to_3_5_coord_is_clean_but_rolling_is_not() {
    // ZOOKEEPER-1805 is rolling-only: full-stop upgrades never mix versions
    // at election time.
    let full_stop = TestCase {
        from: v("3.4.0"),
        to: v("3.5.0"),
        scenario: Scenario::FullStop,
        workload: WorkloadSpec::Stress,
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    assert!(
        !full_stop.run(&dup_coord::CoordSystem).is_failure(),
        "full-stop 3.4->3.5 should be clean"
    );
    let rolling = TestCase {
        scenario: Scenario::Rolling,
        ..full_stop
    };
    assert!(rolling.run(&dup_coord::CoordSystem).is_failure());
}

#[test]
fn new_node_join_scenario_runs() {
    let case = TestCase {
        from: v("2.1.0"),
        to: v("3.0.0"),
        scenario: Scenario::NewNodeJoin,
        workload: WorkloadSpec::Stress,
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    // The clean kvstore pair should also accept a new-version joiner.
    let outcome = case.run(&dup_kvstore::KvStoreSystem);
    assert!(!outcome.is_failure(), "unexpected failure: {outcome:?}");
}

/// The tentpole contract: a parallel campaign reports byte-identically to a
/// sequential one — failures, counts, and the rendered table.
#[test]
fn parallel_report_is_byte_identical_to_sequential() {
    for sut in [
        &dup_kvstore::KvStoreSystem as &dyn dup_core::SystemUnderTest,
        &dup_mq::MqSystem,
    ] {
        let run = |threads: usize| {
            Campaign::builder(sut)
                .seeds([1, 2])
                .scenarios([Scenario::FullStop, Scenario::Rolling])
                .threads(threads)
                .run()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.failures, par.failures, "{}", sut.name());
        assert_eq!(seq.cases_run, par.cases_run);
        assert_eq!(seq.cases_passed, par.cases_passed);
        assert_eq!(seq.cases_invalid, par.cases_invalid);
        assert_eq!(seq.cases_pruned, par.cases_pruned);
        assert_eq!(
            seq.render_table(),
            par.render_table(),
            "rendered table must not depend on thread count ({})",
            sut.name()
        );
    }
}

/// Determinism digest: the campaign's summed simulator counters — total
/// events processed and messages delivered across every executed case — are
/// a pure function of the configuration. A full kvstore campaign must
/// produce the same digest (and the same rendered report, which embeds it)
/// at 1 and 4 worker threads; a drift here means some case's simulation is
/// no longer deterministic in its seed.
#[test]
fn campaign_determinism_digest_is_thread_count_independent() {
    let run = |threads: usize| {
        Campaign::builder(&dup_kvstore::KvStoreSystem)
            .seeds([1])
            .threads(threads)
            .run()
    };
    let seq = run(1);
    let par = run(4);
    assert!(seq.sim_events_processed > 0, "campaign simulated nothing");
    assert!(seq.sim_messages_delivered > 0);
    assert_eq!(seq.sim_events_processed, par.sim_events_processed);
    assert_eq!(seq.sim_messages_delivered, par.sim_messages_delivered);
    assert_eq!(seq.render_table(), par.render_table());
}

/// A single case's digest is reproducible run to run and visible through
/// [`dup_tester::CaseResult`] — whether the runner is fresh per run or one
/// warm runner executes the case back to back.
#[test]
fn case_digest_is_reproducible() {
    let case = TestCase {
        from: v("2.1.0"),
        to: v("3.0.0"),
        scenario: Scenario::Rolling,
        workload: WorkloadSpec::Stress,
        seed: 7,
        faults: Default::default(),
        durability: Default::default(),
    };
    let r1 = case.run_in(&mut dup_tester::CaseRunner::new(
        &dup_kvstore::KvStoreSystem,
    ));
    let mut warm = dup_tester::CaseRunner::new(&dup_kvstore::KvStoreSystem);
    let r2 = case.run_in(&mut warm);
    let r3 = case.run_in(&mut warm);
    assert_eq!(r1.digest, r2.digest);
    assert_eq!(r2.digest, r3.digest, "warm re-run must not drift");
    assert!(r1.digest.events_processed > 0);
    assert_eq!(format!("{:?}", r1.outcome), format!("{:?}", r2.outcome));
    assert_eq!(r2.outcome, r3.outcome);
    assert_eq!(r1.outcome, case.run(&dup_kvstore::KvStoreSystem));
}

#[derive(Default)]
struct CountingObserver {
    started: AtomicUsize,
    done: AtomicUsize,
    failures: AtomicUsize,
}

impl CampaignObserver for CountingObserver {
    fn on_case_start(&self, _index: usize, _case: &TestCase) {
        self.started.fetch_add(1, Ordering::Relaxed);
    }
    fn on_case_done(&self, _index: usize, _case: &TestCase, _status: CaseStatus, _wall: Duration) {
        self.done.fetch_add(1, Ordering::Relaxed);
    }
    fn on_failure_found(
        &self,
        _index: usize,
        _case: &TestCase,
        _failure: &dup_tester::FailureReport,
    ) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }
}

/// Observer callbacks fire exactly once per enumerated case, pruned cases
/// included, and once per distinct failure.
#[test]
fn observer_callbacks_fire_once_per_case() {
    let obs = std::sync::Arc::new(CountingObserver::default());
    let report = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2, 3])
        .scenarios([Scenario::FullStop, Scenario::Rolling])
        .threads(4)
        .observer(std::sync::Arc::clone(&obs))
        .run();
    let enumerated = report.cases_run + report.cases_pruned;
    assert_eq!(obs.started.load(Ordering::Relaxed), enumerated);
    assert_eq!(obs.done.load(Ordering::Relaxed), enumerated);
    assert_eq!(obs.failures.load(Ordering::Relaxed), report.failures.len());
}

/// Dedup-aware seed pruning: once a signature reproduced K times within a
/// seed group, remaining seeds are skipped — without losing any distinct
/// failure found by the unpruned sweep.
#[test]
fn seed_pruning_skips_reproductions_without_losing_failures() {
    let full = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2, 3, 4])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .run();
    let pruned = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1, 2, 3, 4])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .prune_after(1)
        .run();
    assert!(
        pruned.cases_pruned > 0,
        "expected pruning with 4 seeds over deterministic failures"
    );
    assert_eq!(pruned.metrics.pruned_seeds, pruned.cases_pruned);
    fn sigs(r: &CampaignReport) -> Vec<&str> {
        let mut s: Vec<&str> = r.failures.iter().map(|f| f.signature.as_str()).collect();
        s.sort_unstable();
        s
    }
    assert_eq!(
        sigs(&full),
        sigs(&pruned),
        "pruning must not change which distinct failures are found"
    );
}
