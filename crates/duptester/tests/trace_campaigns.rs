//! Causal-trace campaigns: every distinct failure of the seeded-bug sweep
//! must carry a bounded causal slice whose lineage chain ends at the
//! violating observation — and the slices, like everything else in a
//! campaign report, must be byte-identical across worker-thread counts and
//! across reruns, faults and torn durability included.
//!
//! Rendered slices are also written to `target/trace-slices/` so CI can
//! upload them as artifacts when a campaign test fails.

use dup_tester::{
    Campaign, CampaignObserver, CampaignReport, Durability, FaultIntensity, RenderOptions,
    Scenario, TestCase, TraceConfig, TraceSlice,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn traced_campaign(threads: usize) -> CampaignReport {
    Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1])
        .scenarios([Scenario::FullStop, Scenario::Rolling])
        .threads(threads)
        .trace(TraceConfig::default())
        .run()
}

/// The directory campaign test jobs upload as a CI artifact on failure.
fn slice_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/trace-slices");
    std::fs::create_dir_all(&dir).expect("create target/trace-slices");
    dir
}

/// Writes every failure's rendered slice (timeline + Chrome JSON) under
/// `target/trace-slices/<prefix>-<index>.*` before any assertion runs, so a
/// failing test still leaves the evidence behind for the artifact upload.
fn dump_slices(prefix: &str, report: &CampaignReport) {
    let dir = slice_dir();
    for (i, failure) in report.failures.iter().enumerate() {
        let rendered = failure.render(RenderOptions::with_trace());
        std::fs::write(dir.join(format!("{prefix}-{i}.txt")), rendered).expect("write timeline");
        if let Some(slice) = &failure.trace {
            std::fs::write(
                dir.join(format!("{prefix}-{i}.json")),
                slice.to_chrome_json(),
            )
            .expect("write chrome json");
        }
    }
}

#[test]
fn every_failure_carries_a_slice_ending_at_the_observation() {
    let report = traced_campaign(1);
    dump_slices("seeded-bugs", &report);
    assert!(!report.failures.is_empty(), "seeded bugs must be found");
    for failure in &report.failures {
        let slice = failure
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("failure without a trace slice: {failure}"));
        assert!(!slice.is_empty(), "empty slice on: {failure}");
        assert!(slice.events_recorded > 0);
        let last = slice
            .lineage
            .last()
            .unwrap_or_else(|| panic!("empty lineage on: {failure}"));
        assert!(
            last.kind.to_string().starts_with("observation"),
            "lineage must end at the violating observation, got {last} on: {failure}"
        );
        // The timeline and the Chrome export both render the anchor.
        assert!(slice
            .render_timeline()
            .contains("lineage (cause -> violation):"));
        let json = slice.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"cat\":\"lineage\""), "{json}");
    }
    // The engine's metrics aggregated the per-case counters, and the
    // rendered table carries both the trace summary line and the timelines.
    assert!(report.metrics.trace_events_recorded > 0);
    let table = report.render_table();
    assert!(table.contains("trace:"));
    assert!(table.contains("lineage (cause -> violation):"));
}

#[test]
fn traced_reports_are_byte_identical_across_threads_and_reruns() {
    let seq = traced_campaign(1);
    let par = traced_campaign(4);
    let rerun = traced_campaign(1);
    dump_slices("threads-1", &seq);
    dump_slices("threads-4", &par);
    // FailureReport equality covers the attached slices event by event.
    assert_eq!(
        seq.failures, par.failures,
        "slices must not depend on threads"
    );
    assert_eq!(
        seq.failures, rerun.failures,
        "slices must replay across reruns"
    );
    assert_eq!(seq.render_table(), par.render_table());
    assert_eq!(seq.render_table(), rerun.render_table());
    assert_eq!(
        seq.metrics.trace_events_recorded,
        par.metrics.trace_events_recorded
    );
    assert_eq!(
        seq.metrics.trace_events_dropped,
        par.metrics.trace_events_dropped
    );
}

#[test]
fn traced_snapshot_campaigns_match_no_snapshot_campaigns() {
    // Snapshot-and-fork with the trace ring live: restored prefixes carry
    // the trace buffer too, so slices — the most state-sensitive output a
    // campaign renders — must be byte-identical with snapshotting on or
    // off, at 1 and 4 threads, twice each.
    let run = |threads: usize, snapshot: bool| {
        Campaign::builder(&dup_kvstore::KvStoreSystem)
            .seeds([1, 2])
            .scenarios([Scenario::FullStop, Scenario::Rolling])
            .threads(threads)
            .snapshot(snapshot)
            .trace(TraceConfig::default())
            .run()
    };
    let reference = run(1, false);
    assert!(
        !reference.failures.is_empty(),
        "seeded bugs must be found so slices are compared"
    );
    for threads in [1, 4] {
        for repeat in 0..2 {
            let on = run(threads, true);
            // FailureReport equality covers attached slices event by event.
            assert_eq!(
                reference.failures, on.failures,
                "threads={threads}, repeat={repeat}"
            );
            assert_eq!(reference.render_table(), on.render_table());
            assert_eq!(
                reference.metrics.trace_events_recorded,
                on.metrics.trace_events_recorded
            );
            assert_eq!(
                reference.metrics.trace_events_dropped,
                on.metrics.trace_events_dropped
            );
        }
    }
}

/// Heavy faults + torn durability: the adversarial end of the matrix, where
/// drops, duplicates, partitions, injected crashes, and torn storage tails
/// all feed the trace. Slices must still replay byte-identically.
#[test]
fn traced_slices_replay_under_heavy_faults_and_torn_durability() {
    let run = |threads: usize| {
        Campaign::builder(&dup_kvstore::KvStoreSystem)
            .seeds([1, 2])
            .scenarios([Scenario::Rolling])
            .unit_tests(false)
            .faults([FaultIntensity::Heavy])
            .durabilities([Durability::Torn])
            .threads(threads)
            .trace(TraceConfig {
                // Small ring: force wrap so eviction semantics are under test.
                capacity: 512,
                tail_events: 8,
                lineage_limit: 16,
            })
            .run()
    };
    let seq = run(1);
    let par = run(4);
    dump_slices("heavy-torn", &seq);
    assert_eq!(seq.failures, par.failures);
    assert_eq!(seq.render_table(), par.render_table());
    // Wrap definitely happened with a 512-slot ring under heavy chaos.
    assert!(seq.metrics.trace_events_dropped > 0, "ring never wrapped");
    for failure in &seq.failures {
        let slice = failure.trace.as_ref().expect("traced failure");
        assert!(!slice.is_empty());
        assert!(slice.events_dropped > 0);
    }
}

/// A single traced case replays its slice byte-for-byte, and an untraced run
/// of the same case returns no slice.
#[test]
fn single_case_slice_is_reproducible() {
    let case = TestCase {
        from: "1.1.0".parse().unwrap(),
        to: "1.2.0".parse().unwrap(),
        scenario: Scenario::Rolling,
        workload: dup_tester::WorkloadSpec::Stress,
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    let config = Some(TraceConfig::default());
    // One warm runner executing the case twice: the second run reuses the
    // pooled trace ring via `Sim::reset`, and must replay byte-for-byte.
    let mut runner = dup_tester::CaseRunner::with_trace(&dup_kvstore::KvStoreSystem, config);
    let r1 = case.run_in(&mut runner);
    let r2 = case.run_in(&mut runner);
    assert!(
        r1.outcome.is_failure(),
        "seeded pair should fail: {:?}",
        r1.outcome
    );
    assert_eq!(r1.outcome, r2.outcome);
    assert_eq!(r1.digest, r2.digest);
    assert!(r1.digest.trace_events_recorded > 0);
    let (slice1, slice2) = (r1.slice.expect("slice"), r2.slice.expect("slice"));
    assert_eq!(slice1.render_timeline(), slice2.render_timeline());
    assert_eq!(slice1.to_chrome_json(), slice2.to_chrome_json());
    // Untraced: no slice, zero trace counters, same outcome.
    let r3 = case.run_in(&mut dup_tester::CaseRunner::new(
        &dup_kvstore::KvStoreSystem,
    ));
    assert_eq!(r1.outcome, r3.outcome);
    assert!(r3.slice.is_none());
    assert_eq!(r3.digest.trace_events_recorded, 0);
    assert_eq!(r3.digest.events_processed, r1.digest.events_processed);
}

/// One warm runner sweeping the heavy-fault torn-durability case list twice
/// must match a fresh runner per case, result for result — outcome, digest,
/// and slice. This is the warm-reuse contract at the case level: ten
/// thousand prior cases on the runner may not change case ten thousand and
/// one.
#[test]
fn warm_runner_sweep_matches_fresh_runners_case_for_case() {
    let sut = &dup_kvstore::KvStoreSystem;
    let trace = Some(TraceConfig {
        // Small ring: wrap-around eviction is part of the replayed state.
        capacity: 512,
        tail_events: 8,
        lineage_limit: 16,
    });
    let config = Campaign::builder(sut)
        .seeds([1, 2])
        .scenarios([Scenario::Rolling])
        .unit_tests(false)
        .faults([FaultIntensity::Heavy])
        .durabilities([Durability::Torn])
        .into_config();
    let matrix = dup_tester::CaseMatrix::enumerate(sut, &config);
    assert!(!matrix.is_empty());
    let mut warm = dup_tester::CaseRunner::with_trace(sut, trace);
    for pass in 0..2 {
        for case in matrix.iter() {
            let w = case.run_in(&mut warm);
            let f = case.run_in(&mut dup_tester::CaseRunner::with_trace(sut, trace));
            assert_eq!(w.outcome, f.outcome, "pass {pass}, case {case:?}");
            assert_eq!(w.digest, f.digest, "pass {pass}, case {case:?}");
            assert_eq!(
                w.slice.map(|s| s.render_timeline()),
                f.slice.map(|s| s.render_timeline()),
                "pass {pass}, case {case:?}"
            );
        }
    }
}

#[derive(Default)]
struct SliceCollector {
    failures: AtomicUsize,
    slices: Mutex<Vec<TraceSlice>>,
}

impl CampaignObserver for SliceCollector {
    fn on_failure_found(
        &self,
        _index: usize,
        _case: &TestCase,
        _failure: &dup_tester::FailureReport,
    ) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    fn on_trace_slice(&self, _index: usize, _case: &TestCase, slice: &TraceSlice) {
        self.slices.lock().unwrap().push(slice.clone());
    }
}

/// `on_trace_slice` fires once per distinct failure (alongside
/// `on_failure_found`) and hands the observer the same slice the report
/// carries.
#[test]
fn observer_sees_one_slice_per_distinct_failure() {
    let obs = std::sync::Arc::new(SliceCollector::default());
    let report = Campaign::builder(&dup_kvstore::KvStoreSystem)
        .seeds([1])
        .scenarios([Scenario::FullStop])
        .trace(TraceConfig::default())
        .observer(std::sync::Arc::clone(&obs))
        .run();
    assert_eq!(obs.failures.load(Ordering::Relaxed), report.failures.len());
    let slices = obs.slices.lock().unwrap();
    assert_eq!(slices.len(), report.failures.len());
    for (seen, failure) in slices.iter().zip(&report.failures) {
        assert_eq!(Some(seen), failure.trace.as_ref());
    }
}
