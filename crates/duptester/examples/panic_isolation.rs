//! Demonstrates (and smoke-tests, in CI) the self-protecting executor: a
//! deliberately panicking SUT adapter costs exactly one case, which is
//! isolated into a `Panicked` failure report with a repro string, while the
//! sibling cases complete — and the process exits 0.
//!
//! ```sh
//! cargo run -p dup-tester --example panic_isolation
//! ```

use dup_core::{ClientOp, NodeSetup, SystemUnderTest, VersionId, WorkloadPhase};
use dup_simnet::{Ctx, Endpoint, Process, StepResult};
use dup_tester::{Campaign, CaseStatus, Scenario};

/// Replies `OK` to every client command; otherwise inert.
struct Echo;

impl Process for Echo {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) -> StepResult {
        Ok(())
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _payload: &[u8]) -> StepResult {
        ctx.send(from, bytes::Bytes::from_static(b"OK"));
        Ok(())
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _id: u64) -> StepResult {
        Ok(())
    }
}

/// A buggy SUT adapter: workload generation panics for seed 2. The panic
/// triggers on the during-upgrade phase because pre-upgrade ops belong to
/// the seed-independent case prefix (they draw from the group's derived
/// prefix seed, never from an individual case's seed).
struct PanickySut;

impl SystemUnderTest for PanickySut {
    fn name(&self) -> &'static str {
        "panicky-toy"
    }
    fn versions(&self) -> Vec<VersionId> {
        vec!["1.0.0".parse().unwrap(), "2.0.0".parse().unwrap()]
    }
    fn cluster_size(&self) -> u32 {
        1
    }
    fn spawn(&self, _version: VersionId, _setup: &NodeSetup) -> Box<dyn Process> {
        Box::new(Echo)
    }
    fn stress_ops(
        &self,
        seed: u64,
        phase: WorkloadPhase,
        _client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    ) {
        if seed == 2 && phase == WorkloadPhase::DuringUpgrade {
            panic!("deliberate example panic for seed 2");
        }
        emit(ClientOp::new(0, "HEALTH"));
    }
}

fn main() {
    let report = Campaign::builder(&PanickySut)
        .seeds([1, 2, 3])
        .scenarios([Scenario::FullStop])
        .unit_tests(false)
        .run();

    let table = report.render_table();
    print!("{table}");

    let panicked = report
        .metrics
        .case_status
        .iter()
        .filter(|s| **s == CaseStatus::Panicked)
        .count();
    assert_eq!(panicked, 1, "exactly one case must be reported Panicked");
    assert_eq!(report.cases_passed, 2, "sibling cases must still pass");
    assert!(
        table.contains("Harness Panic"),
        "report must carry the panic cause"
    );
    println!(
        "panic isolated: 1 case Panicked, {} passed, exit 0",
        report.cases_passed
    );
}
