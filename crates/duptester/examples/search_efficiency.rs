//! Generates `SEARCH_efficiency.json`: the ROADMAP success metric for
//! coverage-guided campaign search, measured against the ground-truth
//! seeded-bug catalog.
//!
//! For every non-timing-dependent catalog bug the artifact records
//! cases-to-first-detection for the guided search vs the blind seed sweep
//! (same bootstrap seed, same per-group budget) — once over the paper
//! matrix, and once more (schema v3's `workload_axis` rows) with the
//! open-loop workload axis enabled, where guided groups draw from the
//! widened operator set (bursts, hot keys, arrival churn). For the
//! timing-dependent bugs — where a single run is a coin flip by design —
//! it records the detection *rate* at a fixed budget across several
//! repetitions with varying bootstrap seeds, under light fault injection
//! so the mutation operators have a plan to perturb.
//!
//! Deterministic: fixed seeds and repetition counts, no timestamps — rerun
//! it and the file is byte-identical. Run from the repo root (or via
//! `scripts/bench_smoke.sh`):
//!
//! ```text
//! cargo run --release -p dup-tester --example search_efficiency
//! ```

use dup_core::{SystemUnderTest, VersionId};
use dup_tester::{
    catalog, Campaign, FaultIntensity, OpenLoopSpec, Scenario, SearchConfig, SearchReport,
    WorkloadSpec,
};
use std::fmt::Write as _;

/// Per-group budget for the non-timing cases-to-detection table.
const BUDGET: usize = 4;
/// Per-group budget for the timing-dependent rate comparison.
const RATE_BUDGET: usize = 6;
/// Repetitions (distinct bootstrap seeds) for the rate comparison.
const REPS: u64 = 5;

fn system(name: &str) -> &'static dyn SystemUnderTest {
    match name {
        "cassandra-mini" => &dup_kvstore::KvStoreSystem,
        "hdfs-mini" => &dup_dfs::DfsSystem,
        "kafka-mini" => &dup_mq::MqSystem,
        "zookeeper-mini" => &dup_coord::CoordSystem,
        other => panic!("unknown catalog system {other}"),
    }
}

fn run_search(
    sut: &dyn SystemUnderTest,
    scenarios: &[Scenario],
    faults: FaultIntensity,
    seeds: Vec<u64>,
    budget: usize,
    search_seed: u64,
    blind: bool,
) -> SearchReport {
    Campaign::builder(sut)
        .scenarios(scenarios.iter().copied())
        .faults([faults])
        .search(SearchConfig {
            budget_per_group: budget,
            initial_seeds: seeds,
            search_seed,
            blind,
            ..SearchConfig::default()
        })
        .build()
        .run_search()
}

fn main() {
    let recall_scenarios = [Scenario::FullStop, Scenario::Rolling];
    let systems = [
        "cassandra-mini",
        "hdfs-mini",
        "kafka-mini",
        "zookeeper-mini",
    ];

    // ---- non-timing bugs: cases-to-first-detection, guided vs blind -----
    let mut rows = String::new();
    let mut guided_total = 0usize;
    let mut blind_total = 0usize;
    for name in systems {
        let sut = system(name);
        let guided = run_search(
            sut,
            &recall_scenarios,
            FaultIntensity::Off,
            vec![1],
            BUDGET,
            0x5EAC_C0DE,
            false,
        );
        let blind = run_search(
            sut,
            &recall_scenarios,
            FaultIntensity::Off,
            vec![1],
            BUDGET,
            0x5EAC_C0DE,
            true,
        );
        guided_total += guided.total_cases();
        blind_total += blind.total_cases();
        eprintln!(
            "[search-efficiency] {name}: guided {} cases, blind {} cases",
            guided.total_cases(),
            blind.total_cases()
        );
        for bug in catalog::seeded_bugs() {
            // Scenario-gated bugs need an extended rollout plan the
            // paper-shaped recall config never compiles; they get their own
            // pass below.
            if bug.system != name || bug.timing_dependent || bug.scenario.is_some() {
                continue;
            }
            let (from, to): (VersionId, VersionId) = (bug.from_version(), bug.to_version());
            let g = guided.cases_to_detect(from, to, bug.marker);
            let b = blind.cases_to_detect(from, to, bug.marker);
            let _ = writeln!(
                rows,
                "    {{\"ticket\": {:?}, \"system\": {:?}, \"from\": {:?}, \"to\": {:?}, \"timing_dependent\": false, \"guided_cases_to_detect\": {}, \"blind_cases_to_detect\": {}}},",
                bug.ticket,
                bug.system,
                bug.from,
                bug.to,
                g.map_or("null".to_string(), |n| n.to_string()),
                b.map_or("null".to_string(), |n| n.to_string()),
            );
        }
    }

    // ---- workload-axis pass: open-loop groups, widened operator set -----
    // The same recall comparison with the open-loop workload axis enabled:
    // every matrix slot gains an open-loop group whose guided search draws
    // from the full operator set — `ShiftBursts`, `ReRankHotKeys`, and
    // `MoveArrivalChurn` included — so this prices the widened search
    // space, not just the legacy fault/rollout operators.
    for name in systems {
        let sut = system(name);
        let run = |blind: bool| {
            Campaign::builder(sut)
                .scenarios(recall_scenarios)
                .faults([FaultIntensity::Off])
                .workloads([OpenLoopSpec::small()])
                .search(SearchConfig {
                    budget_per_group: BUDGET,
                    initial_seeds: vec![1],
                    search_seed: 0x5EAC_C0DE,
                    blind,
                    ..SearchConfig::default()
                })
                .build()
                .run_search()
        };
        let guided = run(false);
        let blind = run(true);
        guided_total += guided.total_cases();
        blind_total += blind.total_cases();
        eprintln!(
            "[search-efficiency] {name} (open-loop axis): guided {} cases, blind {} cases",
            guided.total_cases(),
            blind.total_cases()
        );
        for bug in catalog::seeded_bugs() {
            if bug.system != name || bug.timing_dependent || bug.scenario.is_some() {
                continue;
            }
            let (from, to): (VersionId, VersionId) = (bug.from_version(), bug.to_version());
            let g = guided.cases_to_detect(from, to, bug.marker);
            let b = blind.cases_to_detect(from, to, bug.marker);
            let _ = writeln!(
                rows,
                "    {{\"ticket\": {:?}, \"system\": {:?}, \"from\": {:?}, \"to\": {:?}, \"timing_dependent\": false, \"workload_axis\": true, \"guided_cases_to_detect\": {}, \"blind_cases_to_detect\": {}}},",
                bug.ticket,
                bug.system,
                bug.from,
                bug.to,
                g.map_or("null".to_string(), |n| n.to_string()),
                b.map_or("null".to_string(), |n| n.to_string()),
            );
        }
    }

    // ---- rollout-plan-exclusive bugs: extended scenarios only -----------
    // Each scenario-gated bug runs under exactly its gating scenario, with
    // the `NudgeRolloutPlan` operator live for the guided mode. Multi-hop
    // pairs span two releases, so that matrix needs gap-2 pairs.
    for bug in catalog::seeded_bugs() {
        let Some(scenario) = bug.scenario else {
            continue;
        };
        let sut = system(bug.system);
        let (from, to) = (bug.from_version(), bug.to_version());
        let run = |blind: bool| {
            Campaign::builder(sut)
                .scenarios([scenario])
                .gap_two(scenario == Scenario::MultiHop)
                .unit_tests(false)
                .faults([FaultIntensity::Off])
                .search(SearchConfig {
                    budget_per_group: BUDGET,
                    initial_seeds: vec![1],
                    search_seed: 0x5EAC_C0DE,
                    blind,
                    ..SearchConfig::default()
                })
                .build()
                .run_search()
        };
        let guided = run(false);
        let blind = run(true);
        guided_total += guided.total_cases();
        blind_total += blind.total_cases();
        let g = guided.cases_to_detect(from, to, bug.marker);
        let b = blind.cases_to_detect(from, to, bug.marker);
        eprintln!(
            "[search-efficiency] {} ({scenario}): guided {} cases, blind {} cases",
            bug.ticket,
            guided.total_cases(),
            blind.total_cases()
        );
        let _ = writeln!(
            rows,
            "    {{\"ticket\": {:?}, \"system\": {:?}, \"from\": {:?}, \"to\": {:?}, \"timing_dependent\": false, \"scenario\": \"{scenario}\", \"guided_cases_to_detect\": {}, \"blind_cases_to_detect\": {}}},",
            bug.ticket,
            bug.system,
            bug.from,
            bug.to,
            g.map_or("null".to_string(), |n| n.to_string()),
            b.map_or("null".to_string(), |n| n.to_string()),
        );
    }

    // ---- timing-dependent bugs: detection rate at a fixed budget --------
    // Light faults give the mutation operators a plan to perturb; each
    // repetition bootstraps both modes from the same fresh seed.
    for bug in catalog::seeded_bugs() {
        if !bug.timing_dependent {
            continue;
        }
        let sut = system(bug.system);
        let (from, to) = (bug.from_version(), bug.to_version());
        let mut guided_hits = 0u64;
        let mut blind_hits = 0u64;
        let mut guided_cases = 0usize;
        let mut blind_cases = 0usize;
        for rep in 0..REPS {
            let guided = run_search(
                sut,
                &[Scenario::Rolling],
                FaultIntensity::Light,
                vec![rep],
                RATE_BUDGET,
                0xC0FF_EE00 + rep,
                false,
            );
            let blind = run_search(
                sut,
                &[Scenario::Rolling],
                FaultIntensity::Light,
                vec![rep],
                RATE_BUDGET,
                0xC0FF_EE00 + rep,
                true,
            );
            guided_cases += guided.total_cases();
            blind_cases += blind.total_cases();
            if guided.cases_to_detect(from, to, bug.marker).is_some() {
                guided_hits += 1;
            }
            if blind.cases_to_detect(from, to, bug.marker).is_some() {
                blind_hits += 1;
            }
        }
        eprintln!(
            "[search-efficiency] {}: guided {guided_hits}/{REPS} ({guided_cases} cases), blind {blind_hits}/{REPS} ({blind_cases} cases)",
            bug.ticket
        );
        let _ = writeln!(
            rows,
            "    {{\"ticket\": {:?}, \"system\": {:?}, \"from\": {:?}, \"to\": {:?}, \"timing_dependent\": true, \"reps\": {REPS}, \"rate_budget_per_group\": {RATE_BUDGET}, \"guided_detection_rate\": {:.2}, \"blind_detection_rate\": {:.2}, \"guided_cases\": {guided_cases}, \"blind_cases\": {blind_cases}}},",
            bug.ticket,
            bug.system,
            bug.from,
            bug.to,
            guided_hits as f64 / REPS as f64,
            blind_hits as f64 / REPS as f64,
        );
    }
    let rows = rows.trim_end().trim_end_matches(',');

    let json = format!(
        "{{\n  \"schema\": \"search-efficiency/v3\",\n  \"config\": {{\"budget_per_group\": {BUDGET}, \"initial_seeds\": [1], \"scenarios\": [\"full-stop\", \"rolling\"], \"rollout_scenarios\": \"per-bug (scenario-gated catalog entries)\", \"workload_axis\": \"{open_spec}\", \"faults\": \"off\", \"timing_reps\": {REPS}, \"timing_budget_per_group\": {RATE_BUDGET}, \"timing_faults\": \"light\"}},\n  \"bugs\": [\n{rows}\n  ],\n  \"totals\": {{\"guided_cases\": {guided_total}, \"blind_cases\": {blind_total}}}\n}}\n",
        open_spec = WorkloadSpec::OpenLoop(OpenLoopSpec::small()),
    );

    let out = std::env::var("SEARCH_EFFICIENCY_OUT")
        .unwrap_or_else(|_| "SEARCH_efficiency.json".to_string());
    std::fs::write(&out, &json).expect("write artifact");
    println!("wrote {out}");
    assert!(
        guided_total < blind_total,
        "guided search must spend strictly fewer cases than the blind sweep \
         ({guided_total} vs {blind_total})"
    );
}
