//! Open-loop workload plans: millions of logical clients as arithmetic
//! event streams, compiled per case into a validated, seeded arrival
//! schedule before any traffic runs.
//!
//! The paper's tester drives simple closed-loop stress batches; the study's
//! failures, though, surface under *live* traffic — storms, hot keys,
//! requests in flight across the version boundary. Making the workload an
//! explicit plan (mirroring [`RolloutPlan`](crate::RolloutPlan)) buys the
//! same three things rollout plans did:
//!
//! - **scale** — logical clients are never materialized: a client id is a
//!   hash of the arrival index, so a 10⁶-client case carries exactly as
//!   much state as a 10³-client one (O(active requests), zero steady-state
//!   allocation in the arrival iterator);
//! - **mutability** — the coverage-guided search's `ShiftBursts`,
//!   `ReRankHotKeys`, and `MoveArrivalChurn` operators perturb burst
//!   timing, hot-key identity, and client churn through the widened
//!   [`PlanNudge`], the way it already perturbs fault and rollout plans;
//! - **repro** — the spec renders into the failure repro string
//!   (`workload=open:…`) and [`WorkloadSpec::parse`] round-trips it, so an
//!   open-loop failure replays standalone.
//!
//! The plan is a pure function of `(spec, seed, phase window)` — compiled
//! per case into a pooled buffer ([`WorkloadPlan::compile`] reuses its
//! segment vector, so the warm path never allocates) — and iterating it
//! twice yields byte-identical arrival streams.
//!
//! # Arrival process
//!
//! Arrivals are open-loop: the schedule, not the responses, decides when
//! the next request fires. Interarrival gaps are deterministic
//! Poisson-style draws — an integer-only exponential sample (geometric
//! leading-zero count plus a uniform fractional refinement, scaled by ln 2
//! in Q16 fixed point) of the segment's mean gap. The phase window splits
//! into alternating normal and *burst* segments; a burst runs at
//! `burst_factor ×` the base rate, with seeded jitter on its position.
//!
//! # Key popularity
//!
//! Keys are heavy-tailed: ranks draw from a per-octave Zipf approximation
//! (octave `l` carries mass ∝ 2^(l·(1−s)), uniform within the octave),
//! then a power-of-two Feistel permutation with cycle-walking maps rank to
//! key — a true bijection, so re-salting it (`ReRankHotKeys`) changes
//! *which* keys are hot but never the popularity profile itself.
//!
//! # Spec grammar
//!
//! A rendered open-loop spec is `open:` followed by comma-separated fields:
//!
//! | token | meaning |
//! |-------|---------|
//! | `c<n>` | logical client population |
//! | `r<n>` | base arrival rate, requests per simulated second |
//! | `b<n>` | burst segments in the phase window |
//! | `x<n>` | burst rate multiplier |
//! | `k<n>` | key-space size |
//! | `z<n>` | Zipf exponent `s`, in hundredths (`z120` ⇒ s = 1.20) |
//! | `m<n>` | read percentage of the operation mix |

use crate::faults::PlanNudge;
use std::fmt;
use std::sync::Arc;

/// Most burst segments a spec may request; keeps the pooled segment buffer
/// (`2 · bursts + 1` segments) statically bounded.
pub const MAX_BURSTS: u8 = 8;

/// ln 2 in Q16 fixed point, the scale factor of the integer exponential
/// sampler.
const LN2_Q16: u64 = 45_426;

/// Upper bound (in Q16) of one exponential draw: the geometric part tops
/// out at 31 leading zeros, so `-ln(U) ≤ (31 + 1) · ln 2 ≈ 22.18`.
const EXP_MAX_Q16: u64 = (((31 << 16) + 0xFFFF) * LN2_Q16) >> 16;

/// Octave count ceiling for the Zipf table: a `u32` key space spans at most
/// 32 octaves.
const MAX_OCTAVES: usize = 32;

/// Dynamic range of the per-octave Zipf masses, in hundredths of an octave
/// (≈ 2⁴¹): an octave lighter than `heaviest / 2⁴¹` floors at one mass
/// unit. Keeps the cumulative table inside `u64` while head ratios stay
/// exact — the truncation only touches a tail whose true share is below
/// 10⁻¹² of the distribution.
const ZIPF_RANGE_H: i64 = 4_100;

/// Where the testing workload comes from (§6.1.2): the paper's three
/// sources plus the open-loop plan axis. Every variant renders into the
/// failure repro string and [`WorkloadSpec::parse`] round-trips it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// The system's stress-testing operations with default configuration.
    Stress,
    /// A unit test translated into client commands by the translator
    /// (§6.1.3); the string is the unit-test name. The name is interned as
    /// an `Arc<str>` so the million-plus [`TestCase`]s a lazy campaign
    /// matrix materializes share one allocation per unit test instead of
    /// cloning the `String` per case.
    ///
    /// [`TestCase`]: crate::harness::TestCase
    TranslatedUnit(Arc<str>),
    /// A unit test executed in place against the old version's storage; the
    /// cluster then starts from the persistent state it left (§6.1.2,
    /// second scheme). Interned like [`WorkloadSpec::TranslatedUnit`].
    UnitStateHandoff(Arc<str>),
    /// Seeded open-loop arrivals over a Zipfian key-popularity model,
    /// compiled per case into a [`WorkloadPlan`].
    OpenLoop(OpenLoopSpec),
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::Stress => write!(f, "stress"),
            WorkloadSpec::TranslatedUnit(name) => write!(f, "unit:{name}"),
            WorkloadSpec::UnitStateHandoff(name) => write!(f, "state:{name}"),
            WorkloadSpec::OpenLoop(spec) => write!(f, "open:{spec}"),
        }
    }
}

impl WorkloadSpec {
    /// Parses a rendered spec back; inverse of `Display`.
    pub fn parse(s: &str) -> Option<WorkloadSpec> {
        if s == "stress" {
            return Some(WorkloadSpec::Stress);
        }
        if let Some(name) = s.strip_prefix("unit:") {
            return (!name.is_empty()).then(|| WorkloadSpec::TranslatedUnit(name.into()));
        }
        if let Some(name) = s.strip_prefix("state:") {
            return (!name.is_empty()).then(|| WorkloadSpec::UnitStateHandoff(name.into()));
        }
        s.strip_prefix("open:")
            .and_then(OpenLoopSpec::parse)
            .map(WorkloadSpec::OpenLoop)
    }
}

/// Parameters of one open-loop workload: all-integer so specs stay `Copy`,
/// `Eq`, and hashable axis values, and so every derived quantity is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpenLoopSpec {
    /// Logical client population. Never materialized: client ids are
    /// arithmetic functions of the arrival index, so memory is independent
    /// of this count.
    pub clients: u64,
    /// Base arrival rate in requests per simulated second.
    pub rate_per_sec: u32,
    /// Burst segments per phase window (capped at [`MAX_BURSTS`]).
    pub bursts: u8,
    /// Rate multiplier inside a burst segment (≥ 1).
    pub burst_factor: u8,
    /// Key-space size the Zipf ranks map onto.
    pub keys: u32,
    /// Zipf exponent `s` in hundredths (120 ⇒ s = 1.20).
    pub zipf_s_hundredths: u16,
    /// Percentage of arrivals that are reads (the rest write).
    pub read_pct: u8,
}

impl OpenLoopSpec {
    /// A modest population for campaign tests: 10³ clients at 100 req/s
    /// with two 3× bursts over 64 keys (s = 1.20, 60% reads).
    pub fn small() -> OpenLoopSpec {
        OpenLoopSpec {
            clients: 1_000,
            rate_per_sec: 100,
            bursts: 2,
            burst_factor: 3,
            keys: 64,
            zipf_s_hundredths: 120,
            read_pct: 60,
        }
    }

    /// The ROADMAP's north-star population: 10⁶ logical clients, same
    /// traffic shape as [`OpenLoopSpec::small`] — which is the point: the
    /// arrival stream's cost depends on rate × window, never on `clients`.
    pub fn million() -> OpenLoopSpec {
        OpenLoopSpec {
            clients: 1_000_000,
            ..OpenLoopSpec::small()
        }
    }

    /// Parses the `c…,r…,b…,x…,k…,z…,m…` field list; inverse of `Display`.
    pub fn parse(s: &str) -> Option<OpenLoopSpec> {
        let mut fields = s.split(',');
        fn tail<T: std::str::FromStr>(field: Option<&str>, tag: char) -> Option<T> {
            let field = field?;
            field.strip_prefix(tag)?.parse().ok()
        }
        let spec = OpenLoopSpec {
            clients: tail(fields.next(), 'c')?,
            rate_per_sec: tail(fields.next(), 'r')?,
            bursts: tail(fields.next(), 'b')?,
            burst_factor: tail(fields.next(), 'x')?,
            keys: tail(fields.next(), 'k')?,
            zipf_s_hundredths: tail(fields.next(), 'z')?,
            read_pct: tail(fields.next(), 'm')?,
        };
        // Reject anything `compile` would silently normalize (burst count
        // over the cap, zero burst factor): two distinct repro strings must
        // never denote the same plan while hashing to different prefix
        // seeds.
        if fields.next().is_some()
            || spec.clients == 0
            || spec.rate_per_sec == 0
            || spec.keys == 0
            || spec.bursts > MAX_BURSTS
            || spec.burst_factor == 0
        {
            return None;
        }
        Some(spec)
    }
}

impl fmt::Display for OpenLoopSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{},r{},b{},x{},k{},z{},m{}",
            self.clients,
            self.rate_per_sec,
            self.bursts,
            self.burst_factor,
            self.keys,
            self.zipf_s_hundredths,
            self.read_pct
        )
    }
}

/// One contiguous stretch of the phase window with a fixed arrival rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    /// Segment start, microseconds from the phase-window origin.
    start_us: u64,
    /// Exclusive segment end.
    end_us: u64,
    /// Mean interarrival gap inside this segment, microseconds (≥ 1).
    mean_gap_us: u64,
    /// `true` for burst segments — the ones `ShiftBursts` may move.
    burst: bool,
}

/// One logical request of an open-loop plan. Everything here is arithmetic
/// in `(plan, arrival index)` — no per-client state exists anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time, microseconds from the phase-window origin.
    pub at_us: u64,
    /// Position in the arrival stream (0-based): the identity axis client
    /// derivation hashes. The rollout plan's `Traffic { chunk, of }` steps
    /// partition the stream by `at_us` time slice, not by this index.
    pub index: u64,
    /// Logical client issuing the request: `mix(index ^ churn_salt) mod
    /// clients`.
    pub client: u64,
    /// Key the request touches, drawn Zipf-by-octave and permuted.
    pub key: u64,
    /// `true` for a read, `false` for a write.
    pub read: bool,
}

/// A compiled open-loop workload plan: the seeded arrival schedule for one
/// phase window. Pure in `(spec, seed, window)`; pooled — `compile` reuses
/// the segment buffer and the Zipf table is a fixed-size array, so a warm
/// plan recompiles without allocating.
#[derive(Debug, Clone)]
pub struct WorkloadPlan {
    segments: Vec<Segment>,
    window_us: u64,
    /// The burst slot width; bounds both seeded jitter and nudge shifts.
    slot_us: u64,
    clients: u64,
    keys: u64,
    read_pct: u8,
    seed: u64,
    /// Feistel half-width: the rank permutation runs on `2^(2·half_bits)`.
    half_bits: u32,
    /// Salt of the rank→key permutation (`ReRankHotKeys` XORs this).
    key_salt: u64,
    /// Salt of the index→client hash (`MoveArrivalChurn` XORs this).
    churn_salt: u64,
    /// Cumulative per-octave Zipf masses; `zipf_levels` entries are live.
    zipf_cum: [u64; MAX_OCTAVES],
    zipf_levels: usize,
}

impl Default for WorkloadPlan {
    fn default() -> Self {
        WorkloadPlan::new()
    }
}

impl WorkloadPlan {
    /// An empty plan; call [`WorkloadPlan::compile`] before iterating.
    pub fn new() -> WorkloadPlan {
        WorkloadPlan {
            segments: Vec::new(),
            window_us: 0,
            slot_us: 0,
            clients: 1,
            keys: 1,
            read_pct: 0,
            seed: 0,
            half_bits: 1,
            key_salt: 0,
            churn_salt: 0,
            zipf_cum: [0; MAX_OCTAVES],
            zipf_levels: 1,
        }
    }

    /// Compiles `spec` for one phase window of `window_ms` simulated
    /// milliseconds, in place: the segment buffer is cleared and refilled
    /// (never reallocated once warm) and the Zipf table rebuilt. Pure: the
    /// same `(spec, seed, window_ms)` always yields the same plan.
    pub fn compile(&mut self, spec: &OpenLoopSpec, seed: u64, window_ms: u64) {
        self.segments.clear();
        self.window_us = window_ms.saturating_mul(1_000);
        self.clients = spec.clients.max(1);
        self.keys = u64::from(spec.keys.max(1));
        self.read_pct = spec.read_pct.min(100);
        self.seed = seed;
        self.key_salt = mix(seed ^ 0x4b45_595f_5341_4c54);
        self.churn_salt = mix(seed ^ 0x4348_5552_4e5f_5341);

        // Feistel domain: the smallest even-bit power of two ≥ keys.
        let key_bits = 64 - (self.keys - 1).leading_zeros().min(63);
        self.half_bits = key_bits.div_ceil(2).max(1);

        // Per-octave Zipf masses: octave l covers ranks [2^l − 1, 2^(l+1) − 1)
        // with mass ∝ 2^(l·(1−s)), truncated at the key-space edge.
        let levels = (64 - (self.keys).leading_zeros() as usize).clamp(1, MAX_OCTAVES);
        self.zipf_levels = levels;
        // Exponents in hundredths of an octave, anchored at the *heaviest*
        // octave so the head — where essentially all the mass lives at
        // steep exponents — keeps exact ratios; octaves past the
        // [`ZIPF_RANGE_H`] dynamic range floor at one mass unit.
        let step = 100 - i64::from(spec.zipf_s_hundredths);
        let e_max = (0..levels as i64).map(|l| l * step).max().unwrap_or(0);
        let mut cum = 0u64;
        for l in 0..levels {
            let base = (1u64 << l) - 1;
            let size = (self.keys - base).min(1 << l);
            let h = (l as i64 * step - e_max + ZIPF_RANGE_H).max(0) as u64;
            // Mass = 2^(l·(1−s)) scaled by the truncated last octave's fill
            // ratio `size / 2^l` (widened: the product can pass 64 bits).
            let w = u128::from(exp2_hundredths(h));
            let mass = ((w * u128::from(size)) >> l) as u64;
            cum += mass.max(1);
            self.zipf_cum[l] = cum;
        }

        // Segment layout: `bursts` burst slots interleaved with normal
        // stretches, each burst seeded-jittered within its slot.
        let base_gap = (1_000_000 / u64::from(spec.rate_per_sec.max(1))).max(1);
        let factor = u64::from(spec.burst_factor.max(1));
        let burst_gap = (base_gap / factor).max(1);
        let b = u64::from(spec.bursts.min(MAX_BURSTS));
        let slot = if b == 0 {
            0
        } else {
            self.window_us / (2 * b + 1)
        };
        self.slot_us = slot;
        if slot == 0 {
            self.push_normal(0, self.window_us, base_gap);
            return;
        }
        let mut jitter_rng = dup_simnet::SimRng::new(seed).split(0x0b57);
        let mut cursor = 0u64;
        for k in 0..b {
            let nominal = (2 * k + 1) * slot;
            let swing = slot / 4;
            let jitter = jitter_rng.next_range(0, 2 * swing + 1) as i64 - swing as i64;
            let start = nominal.saturating_add_signed(jitter);
            let end = start + slot;
            self.push_normal(cursor, start, base_gap);
            self.segments.push(Segment {
                start_us: start,
                end_us: end,
                mean_gap_us: burst_gap,
                burst: true,
            });
            cursor = end;
        }
        self.push_normal(cursor, self.window_us, base_gap);
    }

    fn push_normal(&mut self, start: u64, end: u64, gap: u64) {
        if start < end {
            self.segments.push(Segment {
                start_us: start,
                end_us: end,
                mean_gap_us: gap,
                burst: false,
            });
        }
    }

    /// Applies the workload half of a [`PlanNudge`]: `burst_shift_ms`
    /// slides every burst segment (clamped to a quarter slot, so segments
    /// stay disjoint and in-window), `key_rank_salt` re-salts the rank→key
    /// permutation, and `arrival_churn_salt` re-salts the index→client
    /// hash. Pure and idempotent-per-nudge like
    /// [`RolloutPlan::nudge`](crate::RolloutPlan::nudge); the fault-plan
    /// half of the nudge is consumed by
    /// [`apply_nudge`](crate::faults::apply_nudge) instead.
    pub fn nudge(&mut self, nudge: &PlanNudge) {
        if nudge.key_rank_salt != 0 {
            self.key_salt ^= nudge.key_rank_salt;
        }
        if nudge.arrival_churn_salt != 0 {
            self.churn_salt ^= nudge.arrival_churn_salt;
        }
        let swing = (self.slot_us / 4) as i64;
        let shift = (nudge.burst_shift_ms.saturating_mul(1_000)).clamp(-swing, swing);
        if shift == 0 {
            return;
        }
        for i in 0..self.segments.len() {
            if !self.segments[i].burst {
                continue;
            }
            self.segments[i].start_us = self.segments[i].start_us.saturating_add_signed(shift);
            self.segments[i].end_us = self.segments[i].end_us.saturating_add_signed(shift);
            if i > 0 {
                self.segments[i - 1].end_us = self.segments[i].start_us;
            }
            if i + 1 < self.segments.len() {
                self.segments[i + 1].start_us = self.segments[i].end_us;
            }
        }
        // A shift can pinch a neighboring normal segment to zero width;
        // drop degenerates so validation stays strict.
        self.segments.retain(|s| s.start_us < s.end_us);
    }

    /// Structural validity: segments are disjoint, ordered, in-window, and
    /// every mean gap is positive. Never allocates on success.
    pub fn validate(&self) -> Result<(), &'static str> {
        let mut cursor = 0u64;
        for seg in &self.segments {
            if seg.start_us < cursor {
                return Err("segments overlap or regress");
            }
            if seg.start_us >= seg.end_us {
                return Err("empty segment");
            }
            if seg.end_us > self.window_us {
                return Err("segment exceeds the phase window");
            }
            if seg.mean_gap_us == 0 {
                return Err("zero mean gap");
            }
            cursor = seg.end_us;
        }
        if self.zipf_levels == 0 || self.zipf_cum[self.zipf_levels - 1] == 0 {
            return Err("empty zipf table");
        }
        Ok(())
    }

    /// The phase window this plan was compiled for, in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Segment count — exposed so pooling tests can assert the buffer is
    /// reused in place and stays independent of the client population.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Capacity of the pooled segment buffer (for pooling tests).
    pub fn segment_capacity(&self) -> usize {
        self.segments.capacity()
    }

    /// The key a popularity rank maps to: a Feistel permutation of the
    /// rounded-up power-of-two domain, cycle-walked back into `[0, keys)`.
    /// A bijection on the key space — re-salting re-ranks which keys are
    /// hot without changing the popularity profile.
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.keys);
        let half = self.half_bits;
        let mask = (1u64 << half) - 1;
        let mut x = rank;
        loop {
            let (mut l, mut r) = (x >> half, x & mask);
            for round in 0..4u64 {
                let f = mix(r ^ self.key_salt ^ (round << 56)) & mask;
                let next = l ^ f;
                l = r;
                r = next;
            }
            x = (l << half) | r;
            if x < self.keys {
                return x;
            }
        }
    }

    /// The logical client of arrival `index`: pure arithmetic, no state.
    pub fn client_of(&self, index: u64) -> u64 {
        mix(index ^ self.churn_salt) % self.clients
    }

    /// Iterates the arrival schedule. Allocation-free and pure: two
    /// iterations of the same plan yield identical streams.
    pub fn arrivals(&self) -> Arrivals<'_> {
        Arrivals {
            plan: self,
            rng: dup_simnet::SimRng::new(self.seed).split(0xA881),
            segment: 0,
            at_us: 0,
            index: 0,
        }
    }

    /// Draws one Zipf rank: binary-search the per-octave cumulative table,
    /// then uniform within the octave.
    fn draw_rank(&self, rng: &mut dup_simnet::SimRng) -> u64 {
        let total = self.zipf_cum[self.zipf_levels - 1];
        let r = rng.next_below(total);
        let mut level = 0;
        let mut lo = 0usize;
        let mut hi = self.zipf_levels;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.zipf_cum[mid] <= r {
                lo = mid + 1;
            } else {
                level = mid;
                hi = mid;
            }
        }
        let base = (1u64 << level) - 1;
        let size = (self.keys - base).min(1 << level);
        base + rng.next_below(size)
    }
}

/// Allocation-free iterator over a plan's arrival schedule.
#[derive(Debug, Clone)]
pub struct Arrivals<'a> {
    plan: &'a WorkloadPlan,
    rng: dup_simnet::SimRng,
    segment: usize,
    at_us: u64,
    index: u64,
}

impl Iterator for Arrivals<'_> {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        loop {
            let seg = self.plan.segments.get(self.segment)?;
            if self.at_us < seg.start_us {
                self.at_us = seg.start_us;
            }
            let gap = sample_gap(&mut self.rng, seg.mean_gap_us);
            let at = self.at_us + gap;
            if at >= seg.end_us {
                self.segment += 1;
                self.at_us = 0;
                continue;
            }
            self.at_us = at;
            let rank = self.plan.draw_rank(&mut self.rng);
            let read = self.rng.next_below(100) < u64::from(self.plan.read_pct);
            let index = self.index;
            self.index += 1;
            return Some(Arrival {
                at_us: at,
                index,
                client: self.plan.client_of(index),
                key: self.plan.key_of_rank(rank),
                read,
            });
        }
    }
}

/// One deterministic Poisson-style gap: `mean · (-ln U)` with the
/// exponential sampled integer-only — geometric leading-zero count for the
/// integer part, 16 uniform bits for the fraction, scaled by ln 2 in Q16.
/// Bounded: the draw never exceeds `mean · 23` ([`EXP_MAX_Q16`]).
fn sample_gap(rng: &mut dup_simnet::SimRng, mean_us: u64) -> u64 {
    let u = rng.next_u64();
    // The geometric part counts leading zeros of the top 32 bits *as a
    // 32-bit value* — on the raw u64 the count would start at 32 and the
    // min(31) would pin every draw to the cap, degenerating the
    // exponential into a constant.
    let z = u64::from(((u >> 32) as u32).leading_zeros().min(31));
    let frac = u & 0xFFFF;
    let exp_q16 = (((z << 16) + frac) * LN2_Q16) >> 16;
    debug_assert!(exp_q16 <= EXP_MAX_Q16);
    (mean_us.saturating_mul(exp_q16) >> 16).max(1)
}

/// SplitMix64's output mix: the arithmetic heart of client-id derivation
/// and the Feistel round function.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `2^(h/100)` in Q16 fixed point, integer-only: shift by the whole-octave
/// part, then multiply in the fractional part bit by bit from a table of
/// `2^(1/2^i)` constants. Deterministic on every platform (no libm).
fn exp2_hundredths(h: u64) -> u64 {
    // Q16 constants for 2^(1/2), 2^(1/4), … 2^(1/65536).
    const POW: [u64; 16] = [
        92_682, 77_936, 71_468, 68_438, 66_972, 66_250, 65_892, 65_714, 65_625, 65_580, 65_558,
        65_547, 65_541, 65_539, 65_537, 65_537,
    ];
    let whole = (h / 100).min(47);
    let frac_q16 = (h % 100) * 65_536 / 100;
    let mut acc = 1u64 << 16;
    for (i, &p) in POW.iter().enumerate() {
        if frac_q16 & (1 << (15 - i)) != 0 {
            acc = (acc * p) >> 16;
        }
    }
    acc << whole
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &OpenLoopSpec, seed: u64, window_ms: u64) -> WorkloadPlan {
        let mut p = WorkloadPlan::new();
        p.compile(spec, seed, window_ms);
        p
    }

    #[test]
    fn spec_display_parse_round_trips_every_variant() {
        let specs = [
            WorkloadSpec::Stress,
            WorkloadSpec::TranslatedUnit("testCompactTables".into()),
            WorkloadSpec::UnitStateHandoff("testUpdateKeyspace".into()),
            WorkloadSpec::OpenLoop(OpenLoopSpec::small()),
            WorkloadSpec::OpenLoop(OpenLoopSpec::million()),
        ];
        for spec in specs {
            let rendered = spec.to_string();
            assert_eq!(WorkloadSpec::parse(&rendered), Some(spec), "{rendered}");
        }
        // The legacy labels stay byte-stable: repro strings and the
        // prefix-seed hash both key on them.
        assert_eq!(WorkloadSpec::Stress.to_string(), "stress");
        assert_eq!(
            WorkloadSpec::TranslatedUnit("t".into()).to_string(),
            "unit:t"
        );
        assert_eq!(
            WorkloadSpec::UnitStateHandoff("t".into()).to_string(),
            "state:t"
        );
        assert_eq!(
            WorkloadSpec::OpenLoop(OpenLoopSpec::small()).to_string(),
            "open:c1000,r100,b2,x3,k64,z120,m60"
        );
    }

    #[test]
    fn spec_parse_rejects_malformed_input() {
        for bad in [
            "",
            "unit:",
            "state:",
            "open:",
            "open:c0,r100,b2,x3,k64,z120,m60",
            "open:c10,r0,b2,x3,k64,z120,m60",
            "open:c10,r100,b2,x3,k0,z120,m60",
            "open:c10,r100,b2,x3,k64,z120,m60,extra",
            "open:c10,r100",
            "closed:c10",
            // Values `compile` would normalize parse as invalid, so two
            // distinct strings never denote the same plan.
            "open:c10,r100,b200,x3,k64,z120,m60",
            "open:c10,r100,b9,x3,k64,z120,m60",
            "open:c10,r100,b2,x0,k64,z120,m60",
        ] {
            assert_eq!(WorkloadSpec::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn compile_is_pure_and_arrivals_replay_exactly() {
        let a = plan(&OpenLoopSpec::small(), 7, 2_000);
        let b = plan(&OpenLoopSpec::small(), 7, 2_000);
        assert_eq!(a.segments, b.segments);
        let xs: Vec<Arrival> = a.arrivals().collect();
        let ys: Vec<Arrival> = b.arrivals().collect();
        assert_eq!(xs, ys);
        // And a second iteration of the *same* plan replays too.
        let zs: Vec<Arrival> = a.arrivals().collect();
        assert_eq!(xs, zs);
        assert!(!xs.is_empty());
        let c = plan(&OpenLoopSpec::small(), 8, 2_000);
        assert_ne!(xs, c.arrivals().collect::<Vec<_>>(), "seed must matter");
    }

    #[test]
    fn arrival_stream_is_ordered_in_window_and_indexed() {
        let p = plan(&OpenLoopSpec::small(), 3, 2_000);
        p.validate().unwrap();
        let mut last = 0;
        for (i, a) in p.arrivals().enumerate() {
            assert_eq!(a.index, i as u64);
            assert!(a.at_us >= last, "arrivals must be time-ordered");
            assert!(a.at_us < p.window_us());
            assert!(a.key < u64::from(OpenLoopSpec::small().keys));
            assert!(a.client < OpenLoopSpec::small().clients);
            last = a.at_us;
        }
    }

    #[test]
    fn client_population_does_not_change_schedule_shape() {
        // 10³ vs 10⁶ clients: same seed, same rate — identical arrival
        // times, keys, and op mix; only the client-id stream differs in
        // range. This is the memory-independence property in miniature.
        let small = plan(&OpenLoopSpec::small(), 5, 2_000);
        let million = plan(&OpenLoopSpec::million(), 5, 2_000);
        assert_eq!(small.segment_count(), million.segment_count());
        let a: Vec<_> = small.arrivals().map(|x| (x.at_us, x.key, x.read)).collect();
        let b: Vec<_> = million
            .arrivals()
            .map(|x| (x.at_us, x.key, x.read))
            .collect();
        assert_eq!(a, b);
        assert!(million.arrivals().all(|x| x.client < 1_000_000));
    }

    #[test]
    fn key_permutation_is_a_bijection_for_odd_key_counts() {
        for keys in [1u32, 2, 5, 64, 100, 257] {
            let spec = OpenLoopSpec {
                keys,
                ..OpenLoopSpec::small()
            };
            let p = plan(&spec, 11, 1_000);
            let mut seen = vec![false; keys as usize];
            for rank in 0..u64::from(keys) {
                let k = p.key_of_rank(rank);
                assert!(k < u64::from(keys));
                assert!(!seen[k as usize], "key {k} mapped twice for keys={keys}");
                seen[k as usize] = true;
            }
        }
    }

    #[test]
    fn zipf_head_is_hotter_than_tail() {
        let p = plan(&OpenLoopSpec::small(), 2, 2_000);
        // Rank 0's key must be drawn more often than any single tail key.
        let hot = p.key_of_rank(0);
        let mut hot_hits = 0usize;
        let mut tail_hits = vec![0usize; 64];
        for a in p.arrivals() {
            if a.key == hot {
                hot_hits += 1;
            } else {
                tail_hits[a.key as usize] += 1;
            }
        }
        let max_tail = tail_hits.iter().max().copied().unwrap_or(0);
        assert!(
            hot_hits > max_tail,
            "hot key drew {hot_hits}, hottest tail key drew {max_tail}"
        );
    }

    #[test]
    fn bursts_raise_the_local_arrival_rate() {
        let spec = OpenLoopSpec {
            bursts: 1,
            burst_factor: 5,
            ..OpenLoopSpec::small()
        };
        let p = plan(&spec, 9, 3_000);
        let burst = p
            .segments
            .iter()
            .find(|s| s.burst)
            .expect("one burst segment");
        let in_burst = p
            .arrivals()
            .filter(|a| a.at_us >= burst.start_us && a.at_us < burst.end_us)
            .count() as u64;
        let burst_len = burst.end_us - burst.start_us;
        let outside = p.arrivals().count() as u64 - in_burst;
        let outside_len = p.window_us() - burst_len;
        // Compare rates with integer cross-multiplication; the burst must
        // run at least 2× the outside rate (spec says 5×).
        assert!(
            in_burst * outside_len > 2 * outside * burst_len,
            "burst rate too low: {in_burst}/{burst_len} vs {outside}/{outside_len}"
        );
    }

    #[test]
    fn nudge_shifts_bursts_within_validity() {
        let base = plan(&OpenLoopSpec::small(), 13, 2_000);
        let mut shifted = base.clone();
        shifted.nudge(&PlanNudge {
            burst_shift_ms: 40,
            ..PlanNudge::default()
        });
        shifted.validate().unwrap();
        assert_ne!(base.segments, shifted.segments, "shift must move bursts");
        // Extreme shifts clamp instead of breaking validity.
        let mut extreme = base.clone();
        extreme.nudge(&PlanNudge {
            burst_shift_ms: i64::MAX / 2_000,
            ..PlanNudge::default()
        });
        extreme.validate().unwrap();
        // Salt nudges leave timing alone but change key/client identity.
        let mut resalted = base.clone();
        resalted.nudge(&PlanNudge {
            key_rank_salt: 0xDEAD_BEEF,
            arrival_churn_salt: 0xFEED_F00D,
            ..PlanNudge::default()
        });
        resalted.validate().unwrap();
        assert_eq!(base.segments, resalted.segments);
        let times_base: Vec<u64> = base.arrivals().map(|a| a.at_us).collect();
        let times_resalted: Vec<u64> = resalted.arrivals().map(|a| a.at_us).collect();
        assert_eq!(times_base, times_resalted, "salts must not move arrivals");
        assert_ne!(
            base.arrivals().map(|a| a.key).collect::<Vec<_>>(),
            resalted.arrivals().map(|a| a.key).collect::<Vec<_>>(),
        );
        assert_ne!(
            base.arrivals().map(|a| a.client).collect::<Vec<_>>(),
            resalted.arrivals().map(|a| a.client).collect::<Vec<_>>(),
        );
        // A no-op nudge changes nothing at all.
        let mut noop = base.clone();
        noop.nudge(&PlanNudge::default());
        assert_eq!(base.segments, noop.segments);
    }

    #[test]
    fn resalted_permutation_stays_a_bijection() {
        let mut p = plan(&OpenLoopSpec::small(), 17, 1_000);
        p.nudge(&PlanNudge {
            key_rank_salt: 0x1234_5678_9ABC_DEF1,
            ..PlanNudge::default()
        });
        let mut seen = [false; 64];
        for rank in 0..64u64 {
            let k = p.key_of_rank(rank) as usize;
            assert!(!seen[k]);
            seen[k] = true;
        }
    }

    #[test]
    fn interarrival_gaps_are_bounded() {
        let mut rng = dup_simnet::SimRng::new(99);
        for mean in [1u64, 10, 1_000, 10_000] {
            for _ in 0..2_000 {
                let gap = sample_gap(&mut rng, mean);
                assert!(gap >= 1);
                assert!(gap <= mean * 23 + 1, "gap {gap} blows the bound at {mean}");
            }
        }
    }

    #[test]
    fn interarrival_gaps_have_exponential_mean_and_spread() {
        // The empirical mean of `mean · (-ln U)` is ≈ 1.04 · mean (the
        // sampler adds half a fractional ulp); anything outside [mean/2,
        // 2·mean] means the exponential degenerated — e.g. the geometric
        // part pinning at its cap would inflate the mean ~22×.
        let mut rng = dup_simnet::SimRng::new(7);
        let mean = 10_000u64;
        let n = 4_000u64;
        let mut sum = 0u64;
        let (mut below_half, mut above_double) = (0u64, 0u64);
        for _ in 0..n {
            let gap = sample_gap(&mut rng, mean);
            sum += gap;
            below_half += u64::from(gap < mean / 2);
            above_double += u64::from(gap > 2 * mean);
        }
        let empirical = sum / n;
        assert!(
            (mean / 2..=2 * mean).contains(&empirical),
            "empirical mean gap {empirical} vs requested mean {mean}"
        );
        // An exponential has real spread: ~30% of draws land below mean/2
        // and ~13% above 2·mean. A constant (or near-constant) sampler
        // fails one side or the other.
        assert!(
            below_half > n / 10,
            "only {below_half}/{n} gaps below half the mean"
        );
        assert!(
            above_double > n / 50,
            "only {above_double}/{n} gaps above twice the mean"
        );
    }

    #[test]
    fn steep_zipf_keeps_exact_head_ratios() {
        // At s = 3.0 consecutive octave masses shrink 4× (2^(1−s) = 2⁻²).
        // The head octaves must keep that ratio exactly — the old
        // min-anchored table saturated them into equality — and the floored
        // tail must stay monotone and reachable.
        let spec = OpenLoopSpec {
            zipf_s_hundredths: 300,
            keys: 1 << 20,
            ..OpenLoopSpec::small()
        };
        let p = plan(&spec, 4, 500);
        p.validate().unwrap();
        let mass =
            |l: usize| p.zipf_cum[l] - if l == 0 { 0 } else { p.zipf_cum[l - 1] };
        for l in 0..8 {
            let (head, next) = (mass(l), mass(l + 1));
            assert!(
                next >= 1 && head / next == 4 && head % next == 0,
                "octave {l} mass {head} vs {next}: want an exact 4x ratio"
            );
        }
        for l in 0..p.zipf_levels {
            assert!(mass(l) >= 1, "octave {l} must stay reachable");
        }
    }

    #[test]
    fn compile_reuses_buffers_in_place() {
        let mut p = WorkloadPlan::new();
        p.compile(&OpenLoopSpec::small(), 1, 2_000);
        let cap = p.segment_capacity();
        assert!(cap >= p.segment_count());
        for seed in 0..64 {
            p.compile(&OpenLoopSpec::million(), seed, 2_000);
            p.compile(&OpenLoopSpec::small(), seed, 2_000);
        }
        assert_eq!(
            p.segment_capacity(),
            cap,
            "recompiling must reuse the pooled segment buffer"
        );
    }

    #[test]
    fn degenerate_windows_still_validate() {
        // Window too small for burst slots: collapses to one segment.
        let p = plan(&OpenLoopSpec::small(), 1, 0);
        p.validate().unwrap();
        assert_eq!(p.arrivals().count(), 0);
        let tiny = plan(
            &OpenLoopSpec {
                bursts: 8,
                ..OpenLoopSpec::small()
            },
            1,
            1,
        );
        tiny.validate().unwrap();
    }

    #[test]
    fn zipf_table_is_monotone_for_extreme_exponents() {
        for z in [0u16, 50, 100, 120, 200, 300] {
            let spec = OpenLoopSpec {
                zipf_s_hundredths: z,
                keys: 1 << 20,
                ..OpenLoopSpec::small()
            };
            let p = plan(&spec, 4, 500);
            p.validate().unwrap();
            for w in p.zipf_cum[..p.zipf_levels].windows(2) {
                assert!(w[0] <= w[1], "cumulative masses must be monotone at z={z}");
            }
        }
    }
}
