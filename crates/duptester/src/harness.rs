//! The test-case runner: boots a cluster of the old version in the
//! simulator, compiles the case's scenario into an explicit [`RolloutPlan`],
//! drives the workload through the plan's steps, and hands the evidence to
//! the oracle.
//!
//! # Snapshot-and-fork execution
//!
//! Every case splits into two halves at the upgrade boundary:
//!
//! - a **prefix** — boot the old-version cluster, let it settle, run the
//!   pre-upgrade workload — that depends only on `(from, workload)`, never
//!   on the case seed, the target version, the scenario, or the fault axes;
//! - a **suffix** — install the fault plan, drive the upgrade scenario,
//!   quiesce, verify — that consumes everything seed-dependent.
//!
//! The prefix runs under a seed derived purely from `(from, workload)`
//! ([`prefix_seed`]), so every case in a campaign's seed group (and across
//! the fault/durability/scenario axes) shares a byte-identical prefix. A
//! snapshotting [`CaseRunner`] executes that prefix once, captures the
//! simulator with [`Sim::snapshot_into`], and then runs each sibling case as
//! *restore → reseed → suffix*. `Sim::restore` is byte-equivalent to
//! re-running the prefix from scratch, so results are identical whether
//! snapshotting is on or off — only the per-case cost changes.

use crate::faults::{apply_nudge, fault_plan_for, FaultIntensity, PlanNudge};
use crate::oracle::{self, Observation, OpResult};
use crate::rollout::{RolloutPlan, RolloutStep};
use crate::scenario::Scenario;
use crate::translator::translate;
use crate::workload::{WorkloadPlan, WorkloadSpec};
use dup_core::{ClientOp, Config, NodeSetup, SystemUnderTest, UnitTest, VersionId, WorkloadPhase};
use dup_simnet::{
    Durability, LogLevel, NodeId, Sim, SimDuration, SimSnapshot, SimTime, TraceBuffer, TraceConfig,
    TraceSlice,
};

/// One test case: a version pair, a scenario, a workload, a seed, a fault
/// intensity, and a storage durability mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// The version upgraded *from*.
    pub from: VersionId,
    /// The version upgraded *to*.
    pub to: VersionId,
    /// Upgrade scenario.
    pub scenario: Scenario,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Simulation seed (only matters for the ~11% timing-dependent bugs).
    pub seed: u64,
    /// Injected-fault intensity; the concrete plan is a pure function of
    /// `(faults, durability, seed, cluster size, suffix start time)` via
    /// [`fault_plan_for`].
    pub faults: FaultIntensity,
    /// Storage durability mode the case's hosts run under. Non-strict modes
    /// buffer writes until an explicit flush and let the crash materializer
    /// drop or tear the unflushed tail on every crash.
    pub durability: Durability,
}

impl TestCase {
    /// Runs this case inside `runner`: executes (or restores from snapshot)
    /// the seed-independent prefix — boot the old-version cluster at `from`,
    /// settle, run the pre-upgrade workload — then forks into this case's
    /// seed via [`Sim::reseed`] and drives the seed-dependent suffix: fault
    /// plan, upgrade scenario, quiesce, oracle.
    ///
    /// This is *the* case-execution entry point — `Sim::reset` guarantees a
    /// reset simulator is byte-indistinguishable from a fresh one, and
    /// `Sim::restore` guarantees a restored prefix is byte-indistinguishable
    /// from a re-executed one, so the result is identical whether the runner
    /// is brand new, warm from ten thousand cases, or snapshotting.
    pub fn run_in(&self, runner: &mut CaseRunner<'_>) -> CaseResult {
        runner.execute(self)
    }

    /// Convenience wrapper for one-off runs: builds a throwaway untraced
    /// [`CaseRunner`] and returns just the outcome. Prefer a long-lived
    /// runner (and [`TestCase::run_in`]) anywhere more than one case runs.
    pub fn run(&self, sut: &dyn SystemUnderTest) -> CaseOutcome {
        self.run_in(&mut CaseRunner::new(sut)).outcome
    }
}

/// A reusable case-execution context: the system under test, the campaign's
/// trace configuration, and a warm [`Sim`] whose pooled allocations (event
/// queue, storage and inbox slabs, fault state, trace ring) are recycled
/// across cases via [`Sim::reset`].
///
/// Executor workers each own one runner for their whole campaign; that is
/// what makes per-case cost independent of how many cases came before and
/// removes the alloc-heavy `Sim` construction from the per-case price.
/// Unwind-safe by construction: the reset at the start of every case
/// unconditionally clears all simulator state, so a runner whose previous
/// case panicked mid-run is as good as new.
pub struct CaseRunner<'a> {
    sut: &'a dyn SystemUnderTest,
    trace: Option<TraceConfig>,
    /// When `true`, the runner caches each `(from, workload)` prefix as a
    /// [`SimSnapshot`] and runs sibling cases as restore + suffix.
    use_snapshots: bool,
    sim: Sim,
    /// Pooled snapshot buffer, recycled across prefix captures.
    snapshot: SimSnapshot,
    /// The most recent prefix's cache entry (single-entry cache: campaign
    /// matrix order keeps same-prefix cases consecutive).
    prefix: Option<PrefixCache>,
    /// Per-op oracle evidence, reused across cases.
    ops: Vec<OpResult>,
    /// Pooled per-case working state, recompiled/refilled in place.
    pools: CasePools,
}

/// The runner's pooled per-case working state: plans recompiled in place and
/// phase buffers the streaming [`SystemUnderTest::stress_ops`] API emits
/// into, so the warm path allocates no fresh `Vec` per phase.
#[derive(Default)]
struct CasePools {
    /// Pooled rollout plan, recompiled in place per case.
    plan: RolloutPlan,
    /// Pooled open-loop workload plan, recompiled in place per case; its
    /// arrival stream is consumed directly by the rollout plan's traffic
    /// steps, so open-loop during-traffic is never materialized as a batch.
    wplan: WorkloadPlan,
    /// Pre-upgrade phase ops (cleared and refilled per prefix).
    before_ops: Vec<ClientOp>,
    /// During-upgrade phase ops (empty for open-loop cases, which stream).
    during_ops: Vec<ClientOp>,
    /// Post-upgrade phase ops.
    after_ops: Vec<ClientOp>,
}

/// Everything the suffix needs from an executed prefix.
#[derive(Debug, Default)]
struct PrefixData {
    /// The effective node configuration (defaults plus the unit test's
    /// overrides) the prefix booted the cluster with.
    config: Config,
    /// When the pre-upgrade workload started (baseline window start).
    first_op_time: SimTime,
    /// Messages delivered when the pre-upgrade workload started.
    msgs_at_first_op: u64,
    /// How many [`OpResult`]s the prefix pushed; a restore truncates the
    /// runner's op log back to this length.
    ops_len: usize,
    /// `Some` when the prefix decided the case is invalid — the message and
    /// the digest at the point of abort. Seed-independent, so it is the
    /// verdict for *every* case sharing this prefix.
    invalid: Option<(String, CaseDigest)>,
}

/// A cached prefix: its identity, its data, and whether `snapshot` holds a
/// restorable capture of the simulator at the prefix's end.
struct PrefixCache {
    key: (VersionId, WorkloadSpec),
    snapshot_valid: bool,
    data: PrefixData,
}

impl<'a> CaseRunner<'a> {
    /// A runner for `sut` with tracing and prefix snapshotting disabled.
    pub fn new(sut: &'a dyn SystemUnderTest) -> CaseRunner<'a> {
        CaseRunner::with_trace(sut, None)
    }

    /// A runner for `sut` that records a causal trace for every case under
    /// `trace` (when `Some`); failing cases return the bounded
    /// [`TraceSlice`] anchored at the violating observation.
    pub fn with_trace(sut: &'a dyn SystemUnderTest, trace: Option<TraceConfig>) -> CaseRunner<'a> {
        CaseRunner::with_options(sut, trace, false)
    }

    /// The fully explicit constructor: tracing under `trace`, and — when
    /// `snapshot` is set — snapshot-and-fork prefix reuse. Snapshotting is
    /// a pure performance choice: results are byte-identical either way.
    pub fn with_options(
        sut: &'a dyn SystemUnderTest,
        trace: Option<TraceConfig>,
        snapshot: bool,
    ) -> CaseRunner<'a> {
        CaseRunner {
            sut,
            trace,
            use_snapshots: snapshot,
            sim: Sim::new(0),
            snapshot: SimSnapshot::new(),
            prefix: None,
            ops: Vec::new(),
            pools: CasePools::default(),
        }
    }

    /// The system under test this runner executes against.
    pub fn sut(&self) -> &'a dyn SystemUnderTest {
        self.sut
    }

    /// The trace configuration applied to every case, if any.
    pub fn trace_config(&self) -> Option<TraceConfig> {
        self.trace
    }

    /// Whether this runner reuses prefixes via snapshot-and-fork.
    pub fn snapshots_enabled(&self) -> bool {
        self.use_snapshots
    }

    /// The causal trace of the most recently executed case, if this runner
    /// traces. The coverage-guided search folds this buffer into a
    /// [`crate::campaign::CaseSignature`] right after each case.
    pub fn trace_buffer(&self) -> Option<&TraceBuffer> {
        self.sim.trace()
    }

    /// Runs `case` with its fault plan perturbed by `nudge` (see
    /// [`apply_nudge`]): identical to [`TestCase::run_in`] except the
    /// scheduled fault times, crash-point windows, and per-message fate
    /// stream shift as the nudge dictates. The search's mutation operators
    /// call this; a no-op nudge reproduces the un-nudged case byte-for-byte.
    pub fn run_nudged(&mut self, case: &TestCase, nudge: &PlanNudge) -> CaseResult {
        self.execute_nudged(case, Some(nudge))
    }

    fn execute(&mut self, case: &TestCase) -> CaseResult {
        self.execute_nudged(case, None)
    }

    fn execute_nudged(&mut self, case: &TestCase, nudge: Option<&PlanNudge>) -> CaseResult {
        let key = (case.from, case.workload.clone());

        // Fast path: a sibling case already executed this prefix.
        if self.use_snapshots {
            if let Some(pre) = self.prefix.as_ref().filter(|p| p.key == key) {
                if let Some((message, digest)) = &pre.data.invalid {
                    // The invalid verdict is seed-independent: replaying the
                    // prefix for this seed would abort identically.
                    return CaseResult {
                        outcome: CaseOutcome::InvalidWorkload(message.clone()),
                        digest: *digest,
                        slice: None,
                    };
                }
                if pre.snapshot_valid {
                    self.sim.restore(&self.snapshot);
                    self.ops.truncate(pre.data.ops_len);
                    self.sim.reseed(case.seed);
                    let outcome = run_suffix(
                        &mut self.sim,
                        self.sut,
                        case,
                        &pre.data,
                        nudge,
                        &mut self.pools,
                        &mut self.ops,
                    );
                    return finalize(&mut self.sim, outcome);
                }
            }
        }

        // Cold path: execute the prefix from a reset simulator under the
        // seed-independent prefix seed.
        let pseed = prefix_seed(case.from, &case.workload);
        self.sim.reset(pseed);
        self.sim.set_event_budget(EVENT_BUDGET);
        if let Some(config) = self.trace {
            self.sim.enable_trace(config);
        }
        self.ops.clear();
        let mut data = PrefixData::default();
        let prefix_verdict = run_prefix(
            &mut self.sim,
            self.sut,
            case,
            pseed,
            &mut data,
            &mut self.pools.before_ops,
            &mut self.ops,
        );
        if self.sim.budget_exhausted() {
            // A runaway prefix is not cacheable evidence of anything but its
            // own non-termination; report the hang without caching.
            self.prefix = None;
            return finalize(&mut self.sim, CaseOutcome::Pass);
        }
        if let Err(message) = &prefix_verdict {
            data.invalid = Some((message.clone(), digest_of(&self.sim)));
        }
        data.ops_len = self.ops.len();
        let snapshot_valid = self.use_snapshots
            && prefix_verdict.is_ok()
            && self.sim.snapshot_into(&mut self.snapshot);
        self.prefix = Some(PrefixCache {
            key,
            snapshot_valid,
            data,
        });
        let pre = &self.prefix.as_ref().expect("just cached").data;
        if let Some((message, digest)) = &pre.invalid {
            return CaseResult {
                outcome: CaseOutcome::InvalidWorkload(message.clone()),
                digest: *digest,
                slice: None,
            };
        }
        self.sim.reseed(case.seed);
        let outcome = run_suffix(
            &mut self.sim,
            self.sut,
            case,
            pre,
            nudge,
            &mut self.pools,
            &mut self.ops,
        );
        finalize(&mut self.sim, outcome)
    }
}

/// The seed the seed-independent prefix runs under: an FNV-1a hash of
/// `(from, workload)`. Pure and stable, so every case sharing those two
/// fields — across seeds, target versions, scenarios, fault intensities and
/// durabilities — replays a byte-identical prefix.
fn prefix_seed(from: VersionId, workload: &WorkloadSpec) -> u64 {
    fn eat(mut hash: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
    let hash = eat(0xcbf2_9ce4_8422_2325, from.to_string().as_bytes());
    let hash = eat(hash, &[0xFF]);
    eat(hash, workload.to_string().as_bytes())
}

/// The end-of-case bookkeeping shared by every execution path: the event
/// budget watchdog, the failing case's trace slice, and the determinism
/// digest.
fn finalize(sim: &mut Sim, mut outcome: CaseOutcome) -> CaseResult {
    if sim.budget_exhausted() {
        // The case ran away; whatever the oracle saw is untrustworthy
        // evidence from a truncated run. Report the non-termination
        // itself.
        outcome = CaseOutcome::Fail(vec![Observation::CaseHung {
            events: sim.events_processed(),
        }]);
    }
    let slice = match &outcome {
        CaseOutcome::Fail(observations) => {
            // Anchor the slice at the violating observation: the node
            // the evidence implicates if it names one, otherwise the
            // last event.
            let hint = observations.iter().find_map(|o| match o {
                Observation::NodeCrash { node, .. } => Some(*node),
                _ => None,
            });
            let anchor = sim.trace_observe(hint);
            sim.trace().map(|t| t.slice(anchor))
        }
        _ => None,
    };
    CaseResult {
        outcome,
        digest: digest_of(sim),
        slice,
    }
}

/// The determinism digest of the simulator's current counters.
fn digest_of(sim: &Sim) -> CaseDigest {
    CaseDigest {
        events_processed: sim.events_processed(),
        messages_delivered: sim.messages_delivered(),
        faults_injected: sim.faults_injected(),
        trace_events_recorded: sim.trace().map_or(0, |t| t.events_recorded()),
        trace_events_dropped: sim.trace().map_or(0, |t| t.events_dropped()),
    }
}

/// Everything one executed case produced: the oracle's verdict, the
/// determinism digest, and (for traced failing cases) the causal slice.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The oracle's verdict.
    pub outcome: CaseOutcome,
    /// The case's determinism digest (simulator counters at the end).
    pub digest: CaseDigest,
    /// The failing case's bounded causal slice; `None` for passes, invalid
    /// workloads, and untraced runners.
    pub slice: Option<TraceSlice>,
}

/// Determinism digest of one executed case: the simulator's global event and
/// message counters when the case finished.
///
/// A case is fully deterministic in its seed, so re-running it — on any
/// campaign thread, in any order — must reproduce the digest exactly. The
/// campaign layer sums digests per case index, which makes campaign totals
/// independent of the worker thread count; a mismatch is a determinism bug.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseDigest {
    /// Total simulator events processed by the case.
    pub events_processed: u64,
    /// Total messages delivered inside the case's simulation.
    pub messages_delivered: u64,
    /// Total faults the case's plan injected (0 with faults off).
    pub faults_injected: u64,
    /// Trace events the case recorded (0 with tracing off).
    pub trace_events_recorded: u64,
    /// Trace events the case's ring buffer evicted by wrap-around.
    pub trace_events_dropped: u64,
}

/// The outcome of one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The upgrade went through cleanly.
    Pass,
    /// The oracle collected evidence of an upgrade failure.
    Fail(Vec<Observation>),
    /// The workload could not be set up (untranslatable unit test, invalid
    /// persistent state, …); the case says nothing about the upgrade.
    InvalidWorkload(String),
}

impl CaseOutcome {
    /// `true` for [`CaseOutcome::Fail`].
    pub fn is_failure(&self) -> bool {
        matches!(self, CaseOutcome::Fail(_))
    }
}

const SETTLE: SimDuration = SimDuration::from_secs(2);
/// Post-upgrade quiesce. Long enough for slow-burn symptoms (trash-purge
/// heartbeat stalls, storms) to surface.
const QUIESCE: SimDuration = SimDuration::from_secs(75);
const OP_TIMEOUT: SimDuration = SimDuration::from_secs(3);
/// The logical phase window an open-loop [`WorkloadPlan`] compiles over:
/// it sizes the during-upgrade arrival schedule (rate × window arrivals,
/// plus bursts), independent of how long the rollout steps actually take.
const OPEN_LOOP_WINDOW_MS: u64 = 2_000;
/// Watchdog: hard ceiling on simulator events per case. A healthy case
/// (even heavy-fault stress on the chattiest system) stays well under one
/// million events; a case that hits the ceiling is runaway — a livelock,
/// a restart storm, a timer loop — and is reported as hung instead of
/// spinning the worker thread forever.
const EVENT_BUDGET: u64 = 2_000_000;

/// Drives the simulation on the harness's behalf while a fault plan is
/// active: between events it drains [`Sim::take_pending_restart`] and brings
/// fault-crashed nodes back — re-spawning whatever version the node was on
/// when the plan crashed it, with the same configuration. With no plan
/// active it degrades to the plain `Sim` driving calls.
struct FaultDriver<'a> {
    sut: &'a dyn SystemUnderTest,
    case: &'a TestCase,
    config: &'a Config,
    cluster: u32,
    /// The rollout plan's version path: the versions a node may legally be
    /// on mid-case (multi-hop plans have a middle version beyond the pair).
    path: &'a [VersionId],
    active: bool,
}

impl FaultDriver<'_> {
    /// Restarts every fault-crashed node whose scheduled comeback is due.
    fn pump(&self, sim: &mut Sim) {
        while let Some(node) = sim.take_pending_restart() {
            // Re-check: the harness may have upgraded (and restarted) the
            // node itself since the restart was queued.
            if !sim.is_fault_crashed(node) {
                continue;
            }
            // Re-spawn whatever path version the node was on when the plan
            // crashed it (only the fault plan crashes get pumped, so genuine
            // downgrade failures persist as oracle evidence).
            let version = sim
                .node_version(node)
                .parse::<VersionId>()
                .ok()
                .filter(|v| self.path.contains(v))
                .unwrap_or(self.case.from);
            let size = if node >= self.cluster {
                self.cluster + 1
            } else {
                self.cluster
            };
            let mut setup = NodeSetup::new(node, size);
            setup.config = self.config.clone();
            if sim
                .install(node, &version.to_string(), self.sut.spawn(version, &setup))
                .is_ok()
            {
                let _ = sim.start_node(node);
            }
        }
    }

    /// Pump-aware [`Sim::run_for`].
    fn run_for(&self, sim: &mut Sim, duration: SimDuration) {
        if !self.active {
            sim.run_for(duration);
            return;
        }
        let deadline = sim.now() + duration;
        loop {
            self.pump(sim);
            match sim.peek_time() {
                Some(t) if t <= deadline => {
                    sim.step();
                }
                _ => break,
            }
        }
        sim.run_until(deadline);
        self.pump(sim);
    }

    /// Pump-aware [`Sim::run_until`]: advances to `deadline`, a no-op when
    /// the deadline already passed (time never rewinds). The open-loop
    /// traffic steps use this to hold each arrival until its scheduled
    /// time.
    fn run_until(&self, sim: &mut Sim, deadline: SimTime) {
        let wait = deadline.since(sim.now());
        if wait > SimDuration::ZERO {
            self.run_for(sim, wait);
        }
    }

    /// Pump-aware [`Sim::rpc`].
    fn rpc(
        &self,
        sim: &mut Sim,
        to: NodeId,
        payload: bytes::Bytes,
        timeout: SimDuration,
    ) -> Option<bytes::Bytes> {
        if !self.active {
            return sim.rpc(to, payload, timeout);
        }
        let handle = sim.client_send(to, payload);
        let deadline = sim.now() + timeout;
        loop {
            if let Some(resp) = sim.poll_response(handle) {
                return Some(resp);
            }
            self.pump(sim);
            match sim.peek_time() {
                Some(t) if t <= deadline => {
                    sim.step();
                }
                _ => {
                    sim.run_until(deadline);
                    return sim.poll_response(handle);
                }
            }
        }
    }
}

/// `true` if some node is crashed for a *genuine* reason — i.e. not by the
/// fault plan (whose crashes are injected, expected, and exempt).
fn any_genuine_crash(sim: &Sim) -> bool {
    sim.crashed_nodes()
        .into_iter()
        .any(|n| !sim.is_fault_crashed(n))
}

/// The seed-independent half of a case: workload setup, old-version boot,
/// settle, pre-upgrade workload, and the validity checks. Depends only on
/// `(from, workload)` — everything here runs under `pseed`, never under
/// `case.seed` — which is what makes the resulting simulator state sharable
/// across a whole seed group via snapshot.
///
/// Fills `data` and pushes the pre-upgrade [`OpResult`]s; returns
/// `Err(message)` when the workload is invalid (the message is the
/// seed-independent [`CaseOutcome::InvalidWorkload`] verdict).
fn run_prefix(
    sim: &mut Sim,
    sut: &dyn SystemUnderTest,
    case: &TestCase,
    pseed: u64,
    data: &mut PrefixData,
    before_ops: &mut Vec<ClientOp>,
    ops: &mut Vec<OpResult>,
) -> Result<(), String> {
    let n = sut.cluster_size();
    let mut config = sut.default_config();

    // Workload-specific setup, streamed into the pooled `before_ops` buffer.
    before_ops.clear();
    match &case.workload {
        // Open-loop cases share the stress prefix: the pre-upgrade stress
        // batch creates the schemas/topics the open-loop traffic lands on.
        WorkloadSpec::Stress | WorkloadSpec::OpenLoop(_) => {
            // The pre-upgrade stress ops draw from the prefix seed: they run
            // before the case's seed can matter, and keying them off `pseed`
            // keeps them identical across a seed group.
            sut.stress_ops(pseed, WorkloadPhase::BeforeUpgrade, case.from, &mut |op| {
                before_ops.push(op)
            });
        }
        WorkloadSpec::TranslatedUnit(name) => {
            let Some(test) = find_unit_test(sut, name) else {
                return Err(format!("no unit test named {name}"));
            };
            let translation = translate(&test, &sut.translation(), 0);
            if !translation.is_usable() {
                return Err(format!("unit test {name} is fully untranslatable"));
            }
            for (k, v) in &test.config {
                config.insert(k.clone(), v.clone());
            }
            before_ops.extend(translation.ops);
        }
        WorkloadSpec::UnitStateHandoff(name) => {
            let Some(test) = find_unit_test(sut, name) else {
                return Err(format!("no unit test named {name}"));
            };
            for (k, v) in &test.config {
                config.insert(k.clone(), v.clone());
            }
            // Execute the unit test in place against node 0's storage, as
            // the original in-JVM test would.
            let storage_host = sim.host_id(&host(0));
            let storage = sim.host_storage_by_id(storage_host);
            for stmt in &test.statements {
                if let Err(e) = sut.run_unit_statement(case.from, stmt, storage) {
                    return Err(format!("unit test {name} cannot run in place: {e}"));
                }
            }
        }
    };

    // Boot the old-version cluster.
    for i in 0..n {
        let mut setup = NodeSetup::new(i, n);
        setup.config = config.clone();
        let id = sim.add_node(
            &host(i),
            &case.from.to_string(),
            sut.spawn(case.from, &setup),
        );
        if sim.start_node(id).is_err() {
            return Err("node failed to start".to_string());
        }
    }

    // No fault plan yet: the plan is seed-dependent, so it belongs to the
    // suffix. The prefix driver never has injected crashes to pump.
    let driver = FaultDriver {
        sut,
        case,
        config: &config,
        cluster: n,
        path: std::slice::from_ref(&case.from),
        active: false,
    };

    driver.run_for(sim, SETTLE);
    if let WorkloadSpec::UnitStateHandoff(name) = &case.workload {
        // Validity check: the old version itself must be able to start from
        // the unit test's persistent state (paper §6.1.2).
        if any_genuine_crash(sim) {
            return Err(format!(
                "state left by {name} does not boot the old version"
            ));
        }
    }

    // Baseline message-rate window starts here — at first-op time — so the
    // pre-workload boot SETTLE (mostly idle) does not deflate the rate.
    data.first_op_time = sim.now();
    data.msgs_at_first_op = sim.messages_delivered();

    run_ops(&driver, sim, before_ops, false, false, ops);
    driver.run_for(sim, SETTLE);

    // If the *old* version already fails under this workload/config, the
    // case says nothing about upgrades (e.g. a config that breaks every
    // release from some point on, not just the upgraded one).
    if any_genuine_crash(sim) {
        return Err("workload or configuration crashes the old version too".to_string());
    }

    data.config = config;
    Ok(())
}

/// The seed-dependent half of a case, entered with the simulator at the end
/// of the prefix (freshly executed or restored) and already forked to
/// `case.seed` via [`Sim::reseed`]: fault plan, the compiled rollout plan's
/// steps, quiesce, post-upgrade verification, and the oracle.
///
/// `plan` is the runner's pooled [`RolloutPlan`]; it is recompiled in place
/// for this case (a pure function of the case plus the system's catalog, so
/// plans fork per seed exactly like fault plans do) and perturbed by the
/// plan-level half of `nudge`.
fn run_suffix(
    sim: &mut Sim,
    sut: &dyn SystemUnderTest,
    case: &TestCase,
    pre: &PrefixData,
    nudge: Option<&PlanNudge>,
    pools: &mut CasePools,
    ops: &mut Vec<OpResult>,
) -> CaseOutcome {
    let n = sut.cluster_size();
    let config = &pre.config;

    // The seed-dependent workload parts, streamed into the pooled phase
    // buffers. Open-loop cases compile the pooled [`WorkloadPlan`] instead
    // of a during-batch: the traffic steps below consume its arrival stream
    // directly, so during-traffic volume never costs a materialized `Vec`.
    let during_ops = &mut pools.during_ops;
    let after_ops = &mut pools.after_ops;
    let wplan = &mut pools.wplan;
    during_ops.clear();
    after_ops.clear();
    match &case.workload {
        WorkloadSpec::Stress => {
            sut.stress_ops(
                case.seed,
                WorkloadPhase::DuringUpgrade,
                case.from,
                &mut |op| during_ops.push(op),
            );
            sut.stress_ops(
                case.seed,
                WorkloadPhase::AfterUpgrade,
                case.from,
                &mut |op| after_ops.push(op),
            );
        }
        WorkloadSpec::OpenLoop(spec) => {
            // The arrival schedule forks per seed like the fault plan does,
            // and the nudge's workload half perturbs it in place.
            wplan.compile(spec, case.seed, OPEN_LOOP_WINDOW_MS);
            if let Some(nd) = nudge {
                wplan.nudge(nd);
            }
            debug_assert!(wplan.validate().is_ok(), "{:?}", wplan.validate());
            // Post-upgrade, the stress read-back probes verify pre-upgrade
            // data survived under the open-loop barrage.
            sut.stress_ops(
                case.seed,
                WorkloadPhase::AfterUpgrade,
                case.from,
                &mut |op| after_ops.push(op),
            );
        }
        // Post-upgrade, re-check health everywhere.
        _ => after_ops.extend((0..n).map(|i| ClientOp::new(i, "HEALTH"))),
    };
    let during_ops: &[ClientOp] = during_ops;
    let after_ops: &[ClientOp] = after_ops;
    let open_loop = matches!(&case.workload, WorkloadSpec::OpenLoop(_));
    let wplan: &WorkloadPlan = wplan;

    // Compile the scenario into the pooled rollout plan — a pure function of
    // `(scenario, pair, catalog, cluster, seed)`, so the `plan=` segment of
    // a failure report rebuilds it exactly — and apply the plan-level half
    // of the nudge.
    let plan = &mut pools.plan;
    let catalog = sut.versions();
    plan.compile(case.scenario, case.from, case.to, &catalog, n, case.seed);
    if let Some(nd) = nudge {
        plan.nudge(nd);
    }
    debug_assert!(
        plan.validate(n).is_ok(),
        "compiled plan invalid ({:?}): {plan}",
        plan.validate(n)
    );
    let plan: &RolloutPlan = plan;

    // Arm the fault plan at the start of the suffix, anchored at the current
    // time, so the adversity spans the upgrade-plus-quiesce timeline. The
    // plan is a pure function of (intensity, durability, seed, cluster
    // size, base): the repro string in a failure report rebuilds it exactly.
    if let Some(fplan) = fault_plan_for(case.faults, case.durability, case.seed, n, sim.now()) {
        let fplan = match nudge {
            Some(n) if !n.is_noop() => apply_nudge(&fplan, n, sim.now()),
            _ => fplan,
        };
        sim.log_sim(LogLevel::Info, format!("fault plan: {}", fplan.describe()));
        sim.install_fault_plan(fplan);
    }
    let driver = FaultDriver {
        sut,
        case,
        config,
        cluster: n,
        path: plan.path(),
        active: case.faults != FaultIntensity::Off || case.durability != Durability::Strict,
    };

    // ----- the rollout itself -------------------------------------------
    let log_mark = sim.logs().mark();
    let upgrade_started = sim.now();
    let msgs_before_window = sim.messages_delivered();

    for step in plan.steps() {
        match *step {
            RolloutStep::Stop { node } | RolloutStep::Leave { node } => {
                let _ = sim.stop_node(node);
            }
            RolloutStep::Settle { millis } => {
                driver.run_for(sim, SimDuration::from_millis(millis));
            }
            RolloutStep::Upgrade { node, version } | RolloutStep::Downgrade { node, version } => {
                let v = plan.version(version);
                let size = if node >= n { n + 1 } else { n };
                let mut setup = NodeSetup::new(node, size);
                setup.config = config.clone();
                let process = sut.spawn(v, &setup);
                let installed = if matches!(step, RolloutStep::Downgrade { .. }) {
                    sim.install_downgrade(node, &v.to_string(), process)
                } else {
                    sim.install(node, &v.to_string(), process)
                };
                if installed.is_ok() {
                    let _ = sim.start_node(node);
                }
            }
            RolloutStep::Join { node, version } => {
                let v = plan.version(version);
                let mut setup = NodeSetup::new(node, n + 1);
                setup.config = config.clone();
                let id = sim.add_node(&host(node), &v.to_string(), sut.spawn(v, &setup));
                let _ = sim.start_node(id);
            }
            RolloutStep::Traffic { chunk, of } => {
                // Round-robin partition of the during-upgrade workload by op
                // index; `of` shared across the plan's traffic steps, so the
                // steps together run each op exactly once, in order. Open-
                // loop cases partition the plan's *window* into `of`
                // contiguous time slices instead: step `chunk` replays the
                // arrivals scheduled inside its slice, advancing the
                // simulator to each arrival's offset before issuing it — the
                // schedule, not the responses, decides when the next request
                // fires, so a burst lands as time-localized load against
                // whatever rollout step surrounds its slice (and `ShiftBursts`
                // moves that load between steps). Each arrival is rendered to
                // a client command on the fly, never materialized as a batch.
                let of = u64::from(of.max(1));
                if open_loop {
                    let slice_us = (wplan.window_us() / of).max(1);
                    let lo = u64::from(chunk) * slice_us;
                    let hi = if u64::from(chunk) + 1 == of {
                        u64::MAX
                    } else {
                        lo + slice_us
                    };
                    let anchor = sim.now();
                    for a in wplan.arrivals() {
                        if a.at_us < lo {
                            continue;
                        }
                        if a.at_us >= hi {
                            break;
                        }
                        // The sim clock is millisecond-grained; arrivals
                        // sharing a millisecond fire back-to-back within it.
                        let offset = SimDuration::from_millis((a.at_us - lo) / 1_000);
                        driver.run_until(sim, anchor + offset);
                        let op = sut.open_loop_op(a.key, a.client, a.read, case.from);
                        run_op(&driver, sim, &op, true, false, ops);
                    }
                } else {
                    for (i, op) in during_ops.iter().enumerate() {
                        if i as u64 % of == u64::from(chunk) {
                            run_op(&driver, sim, op, true, false, ops);
                        }
                    }
                }
            }
            RolloutStep::Probe { node } => {
                run_op(
                    &driver,
                    sim,
                    &ClientOp::new(node, "HEALTH"),
                    true,
                    false,
                    ops,
                );
            }
            RolloutStep::CanaryGate { node } => {
                run_op(
                    &driver,
                    sim,
                    &ClientOp::new(node, "HEALTH"),
                    true,
                    false,
                    ops,
                );
                let answered = ops.last().is_some_and(|r| r.response.is_some());
                let crashed = sim
                    .crashed_nodes()
                    .into_iter()
                    .any(|c| c == node && !sim.is_fault_crashed(c));
                if crashed || !answered {
                    // The canary failed its gate: the operator halts the
                    // rollout. Quiesce and verification still run, so the
                    // oracle sees whatever the canary broke.
                    sim.log_sim(
                        LogLevel::Info,
                        format!("canary gate failed on node {node}: halting rollout"),
                    );
                    break;
                }
            }
        }
    }

    // Messages and elapsed time of the rollout phase alone, captured before
    // the quiesce: a storm that dies with the rollout (a multi-hop storm
    // ends when the final hop leaves the buggy version behind) would be
    // diluted below threshold by the long quiet quiesce window.
    let rollout_msgs = sim.messages_delivered() - msgs_before_window;
    let rollout_len = sim.now().since(upgrade_started).as_millis().max(1);

    driver.run_for(sim, QUIESCE);
    run_ops(&driver, sim, after_ops, true, true, ops);
    driver.run_for(sim, SETTLE);

    // Message-rate comparison: project the baseline-window rate (first op
    // to upgrade start) onto the upgrade window's length.
    let window_msgs = sim.messages_delivered() - msgs_before_window;
    let window_len = sim.now().since(upgrade_started).as_millis().max(1);
    let baseline_window_msgs = msgs_before_window - pre.msgs_at_first_op;
    let baseline_len = upgrade_started.since(pre.first_op_time).as_millis();
    let baseline_msgs = project_baseline(baseline_window_msgs, baseline_len, window_len);
    let baseline_rollout = project_baseline(baseline_window_msgs, baseline_len, rollout_len);

    // The full window takes precedence (identical evidence to what it
    // always produced); the rollout-only window is consulted only when the
    // full window is quiet, so a transient rollout-phase storm still trips
    // the same oracle rule.
    let storm = |msgs: u64, baseline: u64| {
        msgs > oracle::STORM_FLOOR && msgs > baseline.saturating_mul(oracle::STORM_FACTOR)
    };
    let (window_msgs, baseline_msgs) =
        if !storm(window_msgs, baseline_msgs) && storm(rollout_msgs, baseline_rollout) {
            (rollout_msgs, baseline_rollout)
        } else {
            (window_msgs, baseline_msgs)
        };

    let observations = oracle::evaluate(sim, log_mark, baseline_msgs, window_msgs, ops);
    if observations.is_empty() {
        CaseOutcome::Pass
    } else {
        CaseOutcome::Fail(observations)
    }
}

/// Projects a measured baseline message count onto a window of a different
/// length: `baseline_msgs` messages observed over `baseline_len_ms` scale to
/// the expected count for `window_len_ms` at the same rate.
fn project_baseline(baseline_msgs: u64, baseline_len_ms: u64, window_len_ms: u64) -> u64 {
    let rate_per_ms = baseline_msgs as f64 / baseline_len_ms.max(1) as f64;
    (rate_per_ms * window_len_ms as f64) as u64
}

fn host(i: u32) -> String {
    format!("host-{i}")
}

fn find_unit_test(sut: &dyn SystemUnderTest, name: &str) -> Option<UnitTest> {
    sut.unit_tests().into_iter().find(|t| t.name == name)
}

fn run_op(
    driver: &FaultDriver<'_>,
    sim: &mut Sim,
    op: &ClientOp,
    after_upgrade_started: bool,
    in_after_phase: bool,
    out: &mut Vec<OpResult>,
) {
    let response = driver
        .rpc(
            sim,
            op.node,
            op.command.clone().into_bytes().into(),
            OP_TIMEOUT,
        )
        .map(|b| String::from_utf8_lossy(&b).into_owned());
    out.push(OpResult {
        command: op.command.clone(),
        node: op.node,
        response,
        after_upgrade_started,
        in_after_phase,
    });
}

fn run_ops(
    driver: &FaultDriver<'_>,
    sim: &mut Sim,
    batch: &[ClientOp],
    after_upgrade_started: bool,
    in_after_phase: bool,
    out: &mut Vec<OpResult>,
) {
    for op in batch {
        run_op(driver, sim, op, after_upgrade_started, in_after_phase, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_projection_excludes_settle_idle() {
        // 1000 messages over the 1000 ms the workload actually ran project
        // to 5000 messages for a 5000 ms upgrade window.
        assert_eq!(project_baseline(1000, 1000, 5000), 5000);
        // Regression: the old formula divided by the whole pre-upgrade time
        // including the 2 s boot SETTLE, deflating the baseline to a third
        // of the true rate — enough to turn healthy traffic into a false
        // "storm". The fixed projection must beat that deflated figure.
        let deflated = project_baseline(1000, 3000, 5000);
        assert!(deflated < 2000);
        assert!(project_baseline(1000, 1000, 5000) > deflated * 2);
        // Degenerate windows stay finite.
        assert_eq!(project_baseline(0, 0, 100), 0);
        assert_eq!(project_baseline(7, 0, 0), 0);
    }
}
