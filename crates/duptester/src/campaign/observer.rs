//! Per-case execution observability: the [`CampaignObserver`] trait plus the
//! bundled [`ProgressObserver`] and [`MetricsObserver`].
//!
//! Observers are shared across executor threads, so every callback takes
//! `&self` and implementations synchronize internally (atomics or a mutex).
//! For every enumerated case the engine calls `on_case_start` then
//! `on_case_done` exactly once — pruned cases included, reported with
//! [`CaseStatus::Pruned`] and zero duration. `on_failure_found` fires once
//! per *distinct* (post-dedup) failure, during result aggregation, in case
//! index order.

use crate::campaign::report::{CampaignMetrics, CaseStatus, FailureReport};
use crate::campaign::search::SearchRound;
use crate::harness::TestCase;
use dup_simnet::TraceSlice;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Callbacks into a running campaign. All methods default to no-ops, so an
/// observer implements only what it cares about.
pub trait CampaignObserver: Send + Sync {
    /// A case is about to execute (or be pruned). Fires exactly once per
    /// enumerated case, from the worker thread that owns the case's seed
    /// group.
    fn on_case_start(&self, index: usize, case: &TestCase) {
        let _ = (index, case);
    }

    /// A case finished (or was pruned). Fires exactly once per enumerated
    /// case, immediately after the matching `on_case_start`.
    fn on_case_done(&self, index: usize, case: &TestCase, status: CaseStatus, wall: Duration) {
        let _ = (index, case, status, wall);
    }

    /// A distinct failure entered the report. `index` is the first exposing
    /// case. Fires during aggregation, in case-index order.
    fn on_failure_found(&self, index: usize, case: &TestCase, failure: &FailureReport) {
        let _ = (index, case, failure);
    }

    /// The causal trace slice of a distinct failure's first exposing case.
    /// Fires immediately after the matching `on_failure_found`, only when the
    /// campaign ran with tracing enabled.
    fn on_trace_slice(&self, index: usize, case: &TestCase, slice: &TraceSlice) {
        let _ = (index, case, slice);
    }

    /// A coverage-guided search round finished in one seed group: round 0 is
    /// the group's bootstrap, later rounds are mutation rounds. Fires only
    /// for campaigns run with a [`SearchConfig`](crate::campaign::SearchConfig),
    /// from the worker thread that owns the group.
    fn on_search_round(&self, round: &SearchRound) {
        let _ = round;
    }
}

impl<T: CampaignObserver + ?Sized> CampaignObserver for Arc<T> {
    fn on_case_start(&self, index: usize, case: &TestCase) {
        (**self).on_case_start(index, case);
    }

    fn on_case_done(&self, index: usize, case: &TestCase, status: CaseStatus, wall: Duration) {
        (**self).on_case_done(index, case, status, wall);
    }

    fn on_failure_found(&self, index: usize, case: &TestCase, failure: &FailureReport) {
        (**self).on_failure_found(index, case, failure);
    }

    fn on_trace_slice(&self, index: usize, case: &TestCase, slice: &TraceSlice) {
        (**self).on_trace_slice(index, case, slice);
    }

    fn on_search_round(&self, round: &SearchRound) {
        (**self).on_search_round(round);
    }
}

/// The default observer: ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl CampaignObserver for NoopObserver {}

/// Prints a progress line to stderr every `every` finished cases (and for
/// every distinct failure found).
#[derive(Debug)]
pub struct ProgressObserver {
    every: usize,
    done: AtomicUsize,
    failures: AtomicUsize,
}

impl ProgressObserver {
    /// Reports every `every` cases; `every` is clamped to at least 1.
    pub fn new(every: usize) -> Self {
        ProgressObserver {
            every: every.max(1),
            done: AtomicUsize::new(0),
            failures: AtomicUsize::new(0),
        }
    }

    /// Cases finished so far.
    pub fn cases_done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

impl Default for ProgressObserver {
    fn default() -> Self {
        ProgressObserver::new(25)
    }
}

impl CampaignObserver for ProgressObserver {
    fn on_case_done(&self, _index: usize, _case: &TestCase, _status: CaseStatus, _wall: Duration) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(self.every) {
            eprintln!(
                "[campaign] {done} cases done, {} distinct failures",
                self.failures.load(Ordering::Relaxed)
            );
        }
    }

    fn on_failure_found(&self, _index: usize, _case: &TestCase, failure: &FailureReport) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        eprintln!("[campaign] failure: {failure}");
    }
}

/// Collects [`CampaignMetrics`] from observer callbacks. The engine keeps
/// one of these internally on every run; attach your own (via
/// `Campaign::builder(..).observer(..)`) if you want live metrics without
/// waiting for the report.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    metrics: Mutex<CampaignMetrics>,
}

impl MetricsObserver {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        MetricsObserver::default()
    }

    /// A copy of the metrics collected so far.
    pub fn snapshot(&self) -> CampaignMetrics {
        self.metrics.lock().expect("metrics lock").clone()
    }

    /// Accumulates one executed case's trace counters. The engine feeds
    /// these from the case digest, so every traced case counts — not just
    /// the failing ones whose slices reach `on_trace_slice`.
    pub fn record_trace(&self, recorded: u64, dropped: u64) {
        self.metrics
            .lock()
            .expect("metrics lock")
            .record_trace_counts(recorded, dropped);
    }

    pub(crate) fn finish(&self, threads_used: usize, campaign_wall: Duration) -> CampaignMetrics {
        let mut m = self.snapshot();
        m.threads_used = threads_used;
        m.campaign_wall = campaign_wall;
        m
    }
}

impl CampaignObserver for MetricsObserver {
    fn on_case_done(&self, index: usize, case: &TestCase, status: CaseStatus, wall: Duration) {
        self.metrics
            .lock()
            .expect("metrics lock")
            .record_case(index, case.scenario, status, wall);
    }

    fn on_failure_found(&self, _index: usize, _case: &TestCase, _failure: &FailureReport) {
        self.metrics
            .lock()
            .expect("metrics lock")
            .record_distinct_failure();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::workload::WorkloadSpec;

    fn case() -> TestCase {
        TestCase {
            from: "1.0.0".parse().unwrap(),
            to: "2.0.0".parse().unwrap(),
            scenario: Scenario::Rolling,
            workload: WorkloadSpec::Stress,
            seed: 7,
            faults: Default::default(),
            durability: Default::default(),
        }
    }

    #[test]
    fn metrics_observer_accumulates() {
        let obs = MetricsObserver::new();
        let c = case();
        obs.on_case_start(0, &c);
        obs.on_case_done(0, &c, CaseStatus::Failed, Duration::from_millis(3));
        obs.on_case_done(1, &c, CaseStatus::Pruned, Duration::ZERO);
        let m = obs.finish(4, Duration::from_millis(10));
        assert_eq!(m.failing_cases, 1);
        assert_eq!(m.pruned_seeds, 1);
        assert_eq!(m.threads_used, 4);
        assert_eq!(m.per_scenario[&Scenario::Rolling].failed, 1);
    }

    #[test]
    fn progress_observer_counts() {
        let obs = ProgressObserver::new(1000);
        let c = case();
        for i in 0..5 {
            obs.on_case_done(i, &c, CaseStatus::Passed, Duration::ZERO);
        }
        assert_eq!(obs.cases_done(), 5);
    }

    #[test]
    fn arc_observer_delegates() {
        let inner = Arc::new(MetricsObserver::new());
        let as_trait: &dyn CampaignObserver = &inner;
        as_trait.on_case_done(0, &case(), CaseStatus::Passed, Duration::ZERO);
        assert_eq!(inner.snapshot().per_scenario[&Scenario::Rolling].passed, 1);
    }

    #[test]
    fn metrics_observer_accumulates_trace_counts() {
        let obs = MetricsObserver::new();
        obs.record_trace(100, 3);
        obs.record_trace(50, 0);
        let m = obs.snapshot();
        assert_eq!(m.trace_events_recorded, 150);
        assert_eq!(m.trace_events_dropped, 3);
    }

    #[test]
    fn trace_slice_callback_defaults_to_noop() {
        struct CountingObserver(AtomicUsize);
        impl CampaignObserver for CountingObserver {
            fn on_trace_slice(&self, _index: usize, _case: &TestCase, _slice: &TraceSlice) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        // NoopObserver accepts the callback without doing anything.
        NoopObserver.on_trace_slice(0, &case(), &TraceSlice::default());
        // An Arc-wrapped observer delegates it.
        let counting = Arc::new(CountingObserver(AtomicUsize::new(0)));
        let as_trait: &dyn CampaignObserver = &counting;
        as_trait.on_trace_slice(0, &case(), &TraceSlice::default());
        assert_eq!(counting.0.load(Ordering::Relaxed), 1);
    }
}
