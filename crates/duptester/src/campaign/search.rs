//! Coverage-guided search over the campaign schedule space.
//!
//! A blind campaign sweeps fresh seeds and hopes one of them lands in the
//! tiny corner of the interleaving space where an upgrade failure hides
//! (paper §6). This module searches instead: every executed case's causal
//! trace folds into a [`CaseSignature`](crate::campaign::CaseSignature),
//! a per-group [`CoverageMap`](crate::campaign::CoverageMap) accumulates
//! which structural event pairs have been seen, and inputs that reached
//! *new* coverage enter a [`Corpus`] whose entries are then perturbed by
//! seeded [`MutationOp`]s — shifting fault times, re-rolling per-message
//! fates, moving crash points across the upgrade window, and (for
//! open-loop workload groups) sliding traffic bursts, re-ranking hot keys,
//! and moving arrival churn — rather than by drawing unrelated fresh
//! seeds. Groups whose coverage stops growing stop
//! early, so a guided run spends its budget where the schedule space is
//! still yielding.
//!
//! Everything is deterministic: mutation draws come from a
//! [`SimRng`] tree keyed on `(search seed, group, round, entry, mutant)`,
//! corpus insertion is commutative, and per-group ordinals (not thread
//! interleavings) define the case order — so a [`SearchReport`] is
//! byte-identical across thread counts and reruns.

use crate::campaign::coverage::{CaseSignature, CoverageMap};
use crate::campaign::executor::FanOut;
use crate::campaign::report::{dedup_key, CampaignReport, CaseStatus, FailureReport};
use crate::faults::{FaultIntensity, PlanNudge, MAX_NUDGE_SHIFT_MS};
use crate::harness::{CaseDigest, CaseOutcome, CaseResult, CaseRunner, TestCase};
use crate::oracle::Observation;
use dup_core::VersionId;
use dup_simnet::{Durability, SimRng, TraceSlice};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One schedule-affecting input the search can execute and mutate: the case
/// seed plus a [`PlanNudge`] perturbing the seed's fault plan.
///
/// The seed is chosen at bootstrap and never mutated — mutation operators
/// only touch the nudge, so a mutant replays the same workload and cluster
/// and moves only the injected adversity. That is the whole point: explore
/// *schedules*, not unrelated executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SearchInput {
    /// The case seed (selects the workload's seed-dependent half and every
    /// fault-plan draw).
    pub seed: u64,
    /// The perturbation applied to the seed's fault plan at install time.
    pub nudge: PlanNudge,
}

impl SearchInput {
    /// A bootstrap input: the bare seed with no perturbation.
    pub fn from_seed(seed: u64) -> Self {
        SearchInput {
            seed,
            nudge: PlanNudge::default(),
        }
    }
}

/// The mutation operators the search applies to corpus entries. Each is a
/// pure function of `(input, rng)` — see [`mutate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// Shift every scheduled partition/heal/crash/restart uniformly by up
    /// to ±[`MAX_NUDGE_SHIFT_MS`] so the adversity slides across the
    /// upgrade window.
    ShiftFaultTimes,
    /// Re-roll the plan's per-message fate stream: the same probabilities
    /// pick on different messages, reordering different deliveries.
    SwapReorderFates,
    /// Shift the state-triggered crash-point windows by up to
    /// ±[`MAX_NUDGE_SHIFT_MS`], moving mid-upgrade and unflushed-write
    /// crashes to different points of the rollout.
    MoveCrashPoints,
    /// Perturb the compiled rollout plan itself: shift settle durations by
    /// up to ±[`MAX_SETTLE_SHIFT_MS`](crate::MAX_SETTLE_SHIFT_MS) and swap
    /// one adjacent pair of steps, both within
    /// [`RolloutPlan::validate`](crate::RolloutPlan::validate)'s
    /// constraints.
    NudgeRolloutPlan,
    /// Slide the open-loop workload's burst segments across the traffic
    /// window ([`WorkloadPlan::nudge`](crate::WorkloadPlan::nudge) clamps
    /// the shift to a quarter burst slot), so load spikes land on different
    /// rollout steps.
    ShiftBursts,
    /// Re-roll the Zipf rank→key permutation salt: a different key set
    /// becomes hot while the arrival schedule stays fixed.
    ReRankHotKeys,
    /// Re-roll the arrival→client churn salt: the same arrivals issue from
    /// a different assignment of logical clients.
    MoveArrivalChurn,
}

impl MutationOp {
    /// The fault/rollout-plan operators — everything a non-open-loop group
    /// can usefully mutate. Kept as its own slice (in the original order)
    /// so groups without an open-loop workload draw exactly the schedules
    /// they always have.
    pub const CORE: [MutationOp; 4] = [
        MutationOp::ShiftFaultTimes,
        MutationOp::SwapReorderFates,
        MutationOp::MoveCrashPoints,
        MutationOp::NudgeRolloutPlan,
    ];

    /// All operators, in the order the mutation RNG indexes them. The
    /// search draws from this slice only for groups whose template carries
    /// an open-loop workload; everyone else draws from [`CORE`](Self::CORE).
    pub const ALL: [MutationOp; 7] = [
        MutationOp::ShiftFaultTimes,
        MutationOp::SwapReorderFates,
        MutationOp::MoveCrashPoints,
        MutationOp::NudgeRolloutPlan,
        MutationOp::ShiftBursts,
        MutationOp::ReRankHotKeys,
        MutationOp::MoveArrivalChurn,
    ];
}

/// Applies `op` to `input`, drawing from `rng`. Pure and seeded: the same
/// `(input, op, rng state)` always produces the same mutant, and the mutant
/// never changes the case seed. Shifts are bounded by
/// [`MAX_NUDGE_SHIFT_MS`]; [`crate::apply_nudge`] additionally clamps the
/// shifted times into the plan window, so mutants always stay within case
/// bounds.
pub fn mutate(input: &SearchInput, op: MutationOp, rng: &mut SimRng) -> SearchInput {
    let mut out = *input;
    match op {
        MutationOp::ShiftFaultTimes => {
            out.nudge.action_shift_ms =
                rng.next_range(0, 2 * MAX_NUDGE_SHIFT_MS) as i64 - MAX_NUDGE_SHIFT_MS as i64;
        }
        MutationOp::SwapReorderFates => {
            // Force a non-zero salt so the fate stream actually re-rolls.
            out.nudge.fate_salt = rng.next_u64() | 1;
        }
        MutationOp::MoveCrashPoints => {
            out.nudge.crash_shift_ms =
                rng.next_range(0, 2 * MAX_NUDGE_SHIFT_MS) as i64 - MAX_NUDGE_SHIFT_MS as i64;
        }
        MutationOp::NudgeRolloutPlan => {
            out.nudge.settle_shift_ms = rng.next_range(0, 2 * crate::MAX_SETTLE_SHIFT_MS) as i64
                - crate::MAX_SETTLE_SHIFT_MS as i64;
            // Force a non-zero salt so a swap is actually attempted.
            out.nudge.step_swap_salt = rng.next_u64() | 1;
        }
        MutationOp::ShiftBursts => {
            out.nudge.burst_shift_ms =
                rng.next_range(0, 2 * MAX_NUDGE_SHIFT_MS) as i64 - MAX_NUDGE_SHIFT_MS as i64;
        }
        MutationOp::ReRankHotKeys => {
            // Force a non-zero salt so the permutation actually changes.
            out.nudge.key_rank_salt = rng.next_u64() | 1;
        }
        MutationOp::MoveArrivalChurn => {
            out.nudge.arrival_churn_salt = rng.next_u64() | 1;
        }
    }
    out
}

/// One retained corpus member: an input that reached new coverage, with the
/// evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The input that was executed.
    pub input: SearchInput,
    /// The digest of the case's coverage signature — the corpus dedup key.
    pub digest: u64,
    /// How many coverage bits this case was first to reach.
    pub new_bits: u32,
    /// Total bits the case's own signature set.
    pub bits_set: u32,
}

/// The set of inputs that reached new coverage, keyed (and deduplicated) by
/// signature digest.
///
/// Insertion is *commutative*: observing the same set of entries in any
/// order yields the same corpus, because the digest is the key and digest
/// collisions resolve to the smallest input. Iteration is in digest order,
/// which is what makes mutation scheduling independent of execution
/// interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Corpus {
    entries: BTreeMap<u64, CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Removes every entry, retaining allocated capacity where possible.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Inserts `entry`, returning `true` when its digest was new. On a
    /// digest collision the entry with the smaller [`SearchInput`] wins, so
    /// the resulting corpus is a pure function of the observation *set*,
    /// not the observation order.
    pub fn insert(&mut self, entry: CorpusEntry) -> bool {
        match self.entries.get_mut(&entry.digest) {
            Some(existing) => {
                if entry.input < existing.input {
                    *existing = entry;
                }
                false
            }
            None => {
                self.entries.insert(entry.digest, entry);
                true
            }
        }
    }

    /// Whether a signature digest is already represented. Allocation-free.
    pub fn contains(&self, digest: u64) -> bool {
        self.entries.contains_key(&digest)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained entries in digest order.
    pub fn entries(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.values()
    }

    /// A deterministic text dump of the corpus — one line per entry — used
    /// by the determinism tests and uploaded as a CI artifact when a search
    /// suite fails.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries.values() {
            let _ = writeln!(
                out,
                "digest={:#018x} seed={} action_shift_ms={} crash_shift_ms={} fate_salt={:#x} settle_shift_ms={} step_swap_salt={:#x} burst_shift_ms={} key_rank_salt={:#x} arrival_churn_salt={:#x} new_bits={} bits_set={}",
                e.digest,
                e.input.seed,
                e.input.nudge.action_shift_ms,
                e.input.nudge.crash_shift_ms,
                e.input.nudge.fate_salt,
                e.input.nudge.settle_shift_ms,
                e.input.nudge.step_swap_salt,
                e.input.nudge.burst_shift_ms,
                e.input.nudge.key_rank_salt,
                e.input.nudge.arrival_churn_salt,
                e.new_bits,
                e.bits_set,
            );
        }
        out
    }
}

/// Configuration of one coverage-guided (or blind-baseline) search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchConfig {
    /// Hard per-group case budget. The blind baseline always spends exactly
    /// this many cases per group; the guided search spends at most this
    /// many and stops early once coverage goes dry.
    pub budget_per_group: usize,
    /// Bootstrap seeds executed un-nudged before any mutation. Shared with
    /// the blind baseline so the two modes start from the same prefix.
    pub initial_seeds: Vec<u64>,
    /// Mutants derived from each corpus entry per round.
    pub mutants_per_entry: usize,
    /// Stop a group after this many consecutive rounds without new
    /// coverage.
    pub dry_rounds: usize,
    /// Root of the mutation RNG tree; every draw is keyed on
    /// `(search_seed, group, round, entry, mutant)`.
    pub search_seed: u64,
    /// Run the blind baseline instead: `budget_per_group` consecutive
    /// seeds, no feedback, no mutation, no early stop.
    pub blind: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            budget_per_group: 4,
            initial_seeds: vec![1],
            mutants_per_entry: 2,
            dry_rounds: 1,
            search_seed: 0x5EAC_C0DE,
            blind: false,
        }
    }
}

/// What one mutation round accomplished; delivered to
/// [`CampaignObserver::on_search_round`](crate::campaign::CampaignObserver::on_search_round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchRound {
    /// The seed group (matrix order) the round ran in.
    pub group: usize,
    /// Round number within the group, 0-based (bootstrap is round 0).
    pub round: usize,
    /// Cases executed by this round.
    pub cases: usize,
    /// Coverage bits first reached by this round.
    pub new_bits: u32,
    /// The group's accumulated coverage after the round.
    pub coverage_bits: u32,
    /// Corpus size after the round.
    pub corpus_size: usize,
}

/// One failing case found by the search, positioned by `(group, ordinal)`
/// rather than wall-clock order so the cases-to-detection metric is
/// independent of thread count.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The seed group (matrix order).
    pub group: usize,
    /// 0-based execution ordinal within the group.
    pub ordinal: usize,
    /// The case as executed (real seed, not the matrix placeholder).
    pub case: TestCase,
    /// The input that produced it.
    pub input: SearchInput,
    /// The oracle's evidence.
    pub observations: Vec<Observation>,
}

/// Per-group outcome of a search run.
#[derive(Debug, Clone, Default)]
pub struct GroupSearchSummary {
    /// Cases the group actually executed (≤ the budget for guided groups).
    pub cases_run: usize,
    /// Mutation rounds executed after bootstrap.
    pub rounds: usize,
    /// Final accumulated coverage bits.
    pub coverage_bits: u32,
    /// The group's final corpus, in digest order.
    pub corpus: Vec<CorpusEntry>,
}

/// The result of [`Campaign::run_search`](crate::campaign::Campaign::run_search):
/// the aggregated campaign-style report plus the search-specific evidence.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Failures aggregated exactly like a campaign report (deduplicated,
    /// matrix order), with counters summed over executed cases.
    pub campaign: CampaignReport,
    /// Per-group summaries, in matrix order.
    pub groups: Vec<GroupSearchSummary>,
    /// Every failing case, ordered by `(group, ordinal)`.
    pub detections: Vec<Detection>,
}

impl SearchReport {
    /// Total cases executed across all groups.
    pub fn total_cases(&self) -> usize {
        self.groups.iter().map(|g| g.cases_run).sum()
    }

    /// Cases-to-first-detection for a bug identified by its version pair
    /// and a marker substring (the catalog's convention): the number of
    /// cases a sequential walk in `(group, ordinal)` order executes up to
    /// and including the first matching detection. `None` when the bug was
    /// never detected.
    ///
    /// Thread-count independent by construction: ordinals and group order
    /// come from the matrix, not from completion order.
    pub fn cases_to_detect(&self, from: VersionId, to: VersionId, marker: &str) -> Option<usize> {
        let mut prefix = vec![0usize; self.groups.len() + 1];
        for (i, g) in self.groups.iter().enumerate() {
            prefix[i + 1] = prefix[i] + g.cases_run;
        }
        self.detections
            .iter()
            .filter(|d| {
                d.case.from == from
                    && d.case.to == to
                    && d.observations
                        .iter()
                        .any(|o| o.to_string().contains(marker))
            })
            .map(|d| prefix[d.group] + d.ordinal + 1)
            .min()
    }

    /// A deterministic text rendering of the whole search outcome —
    /// campaign table, per-group coverage, and every corpus dump — used by
    /// the rerun/thread-count determinism tests.
    pub fn render_summary(&self) -> String {
        let mut out = self.campaign.render_table();
        for (i, g) in self.groups.iter().enumerate() {
            let _ = writeln!(
                out,
                "group {i}: cases={} rounds={} coverage_bits={} corpus={}",
                g.cases_run,
                g.rounds,
                g.coverage_bits,
                g.corpus.len(),
            );
            for e in &g.corpus {
                let _ = writeln!(
                    out,
                    "  digest={:#018x} seed={} nudge=({},{},{:#x},{},{:#x},{},{:#x},{:#x}) new_bits={}",
                    e.digest,
                    e.input.seed,
                    e.input.nudge.action_shift_ms,
                    e.input.nudge.crash_shift_ms,
                    e.input.nudge.fate_salt,
                    e.input.nudge.settle_shift_ms,
                    e.input.nudge.step_swap_salt,
                    e.input.nudge.burst_shift_ms,
                    e.input.nudge.key_rank_salt,
                    e.input.nudge.arrival_churn_salt,
                    e.new_bits,
                );
            }
        }
        out
    }
}

/// What one searched group leaves behind for aggregation.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchGroupRecord {
    pub(crate) summary: GroupSearchSummary,
    pub(crate) cases_passed: usize,
    pub(crate) cases_invalid: usize,
    pub(crate) events_processed: u64,
    pub(crate) messages_delivered: u64,
    pub(crate) faults_injected: u64,
    pub(crate) failures: Vec<SearchFailure>,
}

/// One failing case inside a [`SearchGroupRecord`].
#[derive(Debug, Clone)]
pub(crate) struct SearchFailure {
    pub(crate) ordinal: usize,
    pub(crate) case: TestCase,
    pub(crate) input: SearchInput,
    pub(crate) observations: Vec<Observation>,
    pub(crate) slice: Option<TraceSlice>,
}

/// The pooled per-worker search state: one signature buffer, one coverage
/// map, one corpus, all cleared (not reallocated) between groups.
pub(crate) struct SearchPools {
    signature: CaseSignature,
    coverage: CoverageMap,
    corpus: Corpus,
}

impl SearchPools {
    pub(crate) fn new() -> Self {
        SearchPools {
            signature: CaseSignature::new(),
            coverage: CoverageMap::new(),
            corpus: Corpus::new(),
        }
    }
}

/// The per-group search driver: bootstraps from the configured seeds, then
/// (guided mode, plan-bearing groups only) mutates corpus entries until the
/// budget runs out or coverage goes dry. Runs atop the warm `runner` —
/// snapshot-and-fork and pooled simulator state included — exactly like a
/// blind campaign group.
pub(crate) fn run_search_group(
    runner: &mut CaseRunner<'_>,
    pools: &mut SearchPools,
    group_index: usize,
    template: &TestCase,
    search: &SearchConfig,
    fan: &FanOut<'_>,
) -> SearchGroupRecord {
    pools.coverage.clear();
    pools.corpus.clear();
    let mut rec = SearchGroupRecord::default();
    let budget = search.budget_per_group.max(1);

    // Bootstrap: the configured seeds, un-nudged. Shared verbatim with the
    // blind baseline so guided-vs-blind comparisons start from an identical
    // prefix.
    let mut bootstrap_new = 0u32;
    for &seed in search.initial_seeds.iter().take(budget) {
        bootstrap_new += run_case(
            runner,
            pools,
            &mut rec,
            group_index,
            budget,
            template,
            SearchInput::from_seed(seed),
            fan,
        );
    }
    fan.search_round(&SearchRound {
        group: group_index,
        round: 0,
        cases: rec.summary.cases_run,
        new_bits: bootstrap_new,
        coverage_bits: pools.coverage.bits_set(),
        corpus_size: pools.corpus.len(),
    });

    if search.blind {
        // Blind baseline: exhaust the budget with consecutive fresh seeds —
        // no feedback, no mutation, no early stop.
        let mut next = search.initial_seeds.iter().copied().max().unwrap_or(0) + 1;
        while rec.summary.cases_run < budget {
            run_case(
                runner,
                pools,
                &mut rec,
                group_index,
                budget,
                template,
                SearchInput::from_seed(next),
                fan,
            );
            next += 1;
        }
        finish_group(rec, pools)
    } else {
        // Guided rounds. A group with no fault plan — faults off under
        // strict durability — has nothing a nudge could perturb: every
        // mutant would replay its parent byte-for-byte. Skip mutation
        // outright; the bootstrap already explored everything a nudge
        // could. Extended scenarios carry a mutable rollout plan even with
        // faults off, so they always mutate — and so do open-loop workload
        // groups, whose compiled arrival plan the workload operators
        // perturb even when every fault knob is off.
        let open_loop = matches!(
            template.workload,
            crate::workload::WorkloadSpec::OpenLoop(_)
        );
        let has_plan = template.faults != FaultIntensity::Off
            || template.durability != Durability::Strict
            || template.scenario.is_extended()
            || open_loop;
        // Open-loop groups draw from the full operator set; everyone else
        // keeps the original four so pre-existing searches replay
        // byte-for-byte.
        let ops: &[MutationOp] = if open_loop {
            &MutationOp::ALL
        } else {
            &MutationOp::CORE
        };
        let mut round = 0usize;
        let mut dry = 0usize;
        while has_plan
            && rec.summary.cases_run < budget
            && dry < search.dry_rounds.max(1)
            && !pools.corpus.is_empty()
        {
            round += 1;
            // Snapshot the parent inputs up front: entries retained during
            // the round mutate in the *next* round, keeping the schedule a
            // pure function of the corpus state at round start.
            let parents: Vec<SearchInput> = pools.corpus.entries().map(|e| e.input).collect();
            let cases_before = rec.summary.cases_run;
            let mut round_new = 0u32;
            'parents: for (entry_idx, parent) in parents.iter().enumerate() {
                for mutant in 0..search.mutants_per_entry.max(1) {
                    if rec.summary.cases_run >= budget {
                        break 'parents;
                    }
                    let mut rng = SimRng::new(search.search_seed)
                        .split(group_index as u64)
                        .split(round as u64)
                        .split(entry_idx as u64)
                        .split(mutant as u64);
                    let op = *rng.pick(ops).expect("operator set is non-empty");
                    let input = mutate(parent, op, &mut rng);
                    round_new += run_case(
                        runner,
                        pools,
                        &mut rec,
                        group_index,
                        budget,
                        template,
                        input,
                        fan,
                    );
                }
            }
            rec.summary.rounds = round;
            fan.search_round(&SearchRound {
                group: group_index,
                round,
                cases: rec.summary.cases_run - cases_before,
                new_bits: round_new,
                coverage_bits: pools.coverage.bits_set(),
                corpus_size: pools.corpus.len(),
            });
            if round_new == 0 {
                dry += 1;
            } else {
                dry = 0;
            }
        }
        finish_group(rec, pools)
    }
}

/// Moves the group's final coverage and corpus into its record.
fn finish_group(mut rec: SearchGroupRecord, pools: &mut SearchPools) -> SearchGroupRecord {
    rec.summary.coverage_bits = pools.coverage.bits_set();
    rec.summary.corpus = pools.corpus.entries().copied().collect();
    rec
}

/// Executes one input inside the group: run (nudged when the input carries
/// one), fold the trace into the signature, union into coverage, retain in
/// the corpus on novelty, and record the outcome. Returns the new coverage
/// bits the case contributed.
#[allow(clippy::too_many_arguments)]
fn run_case(
    runner: &mut CaseRunner<'_>,
    pools: &mut SearchPools,
    rec: &mut SearchGroupRecord,
    group_index: usize,
    budget: usize,
    template: &TestCase,
    input: SearchInput,
    fan: &FanOut<'_>,
) -> u32 {
    let ordinal = rec.summary.cases_run;
    let case = TestCase {
        seed: input.seed,
        ..template.clone()
    };
    // Synthetic per-case index: sparse but stable and collision-free, so
    // observer callbacks stay ordered the same way on any thread count.
    let index = group_index * budget + ordinal;
    fan.case_start(index, &case);
    let t0 = Instant::now();
    // Panic containment mirrors the blind executor: one buggy case costs
    // one case, and the runner's unconditional reset/restore makes reuse
    // after an unwind sound.
    let executed = catch_unwind(AssertUnwindSafe(|| {
        if input.nudge.is_noop() {
            case.run_in(runner)
        } else {
            runner.run_nudged(&case, &input.nudge)
        }
    }));
    let (result, panicked) = match executed {
        Ok(result) => (result, false),
        Err(payload) => (
            CaseResult {
                outcome: CaseOutcome::Fail(vec![Observation::HarnessPanic {
                    message: crate::campaign::executor::panic_message(payload.as_ref()),
                }]),
                digest: CaseDigest::default(),
                slice: None,
            },
            true,
        ),
    };
    let CaseResult {
        outcome,
        digest,
        slice,
    } = result;
    fan.trace_counts(&digest);
    let wall = t0.elapsed();
    rec.summary.cases_run += 1;
    rec.events_processed += digest.events_processed;
    rec.messages_delivered += digest.messages_delivered;
    rec.faults_injected += digest.faults_injected;

    // Coverage: fold the case's trace. A panicked case left no trustworthy
    // trace; it contributes nothing to coverage (but its failure is still
    // recorded below).
    let mut new_bits = 0u32;
    if !panicked {
        if let Some(trace) = runner.trace_buffer() {
            pools.signature.clear();
            pools.signature.fold(trace);
            new_bits = pools.coverage.observe(&pools.signature);
            if new_bits > 0 {
                pools.corpus.insert(CorpusEntry {
                    input,
                    digest: pools.signature.digest(),
                    new_bits,
                    bits_set: pools.signature.bits_set(),
                });
            }
        }
    }

    let status = match &outcome {
        CaseOutcome::Pass => CaseStatus::Passed,
        CaseOutcome::InvalidWorkload(_) => CaseStatus::Invalid,
        CaseOutcome::Fail(observations) => {
            if observations
                .iter()
                .any(|o| matches!(o, Observation::HarnessPanic { .. }))
            {
                CaseStatus::Panicked
            } else if observations
                .iter()
                .any(|o| matches!(o, Observation::CaseHung { .. }))
            {
                CaseStatus::Hung
            } else {
                CaseStatus::Failed
            }
        }
    };
    fan.case_done(index, &case, status, wall);
    match outcome {
        CaseOutcome::Pass => rec.cases_passed += 1,
        CaseOutcome::InvalidWorkload(_) => rec.cases_invalid += 1,
        CaseOutcome::Fail(observations) => rec.failures.push(SearchFailure {
            ordinal,
            case,
            input,
            observations,
            slice,
        }),
    }
    new_bits
}

/// Folds per-group search records into the final report — matrix order, the
/// same dedup policy as the blind executor's aggregation, but keyed on the
/// cases as *executed* (real seeds and nudges, not matrix placeholders).
pub(crate) fn aggregate_search(
    system: &str,
    budget: usize,
    records: Vec<SearchGroupRecord>,
    fan: &FanOut<'_>,
    catalog: &[VersionId],
    cluster_size: u32,
) -> SearchReport {
    let mut campaign = CampaignReport {
        system: system.to_string(),
        ..Default::default()
    };
    let mut groups = Vec::with_capacity(records.len());
    let mut detections = Vec::new();
    let mut seen: BTreeMap<(VersionId, VersionId, String), usize> = BTreeMap::new();

    for (group_index, record) in records.into_iter().enumerate() {
        campaign.cases_run += record.summary.cases_run;
        campaign.cases_passed += record.cases_passed;
        campaign.cases_invalid += record.cases_invalid;
        campaign.sim_events_processed += record.events_processed;
        campaign.sim_messages_delivered += record.messages_delivered;
        campaign.sim_faults_injected += record.faults_injected;
        for failure in &record.failures {
            let signature = dedup_key(&failure.observations);
            let key = (failure.case.from, failure.case.to, signature.clone());
            if let Some(&idx) = seen.get(&key) {
                campaign.failures[idx].reproductions += 1;
            } else {
                let cause = failure
                    .observations
                    .iter()
                    .map(|o| o.classify())
                    .find(|c| *c != "Unclassified")
                    .unwrap_or("Unclassified");
                seen.insert(key, campaign.failures.len());
                campaign.failures.push(FailureReport {
                    system: system.to_string(),
                    from: failure.case.from,
                    to: failure.case.to,
                    scenario: failure.case.scenario,
                    workload: failure.case.workload.clone(),
                    seed: failure.case.seed,
                    faults: failure.case.faults,
                    durability: failure.case.durability,
                    signature,
                    cause,
                    observations: failure.observations.clone(),
                    reproductions: 1,
                    trace: failure.slice.clone(),
                    plan: crate::rollout::rendered_plan(
                        &failure.case,
                        Some(&failure.input.nudge),
                        catalog,
                        cluster_size,
                    ),
                });
                let report = campaign.failures.last().expect("just pushed");
                let index = group_index * budget + failure.ordinal;
                fan.failure_found(index, &failure.case, report);
                if let Some(slice) = &report.trace {
                    fan.trace_slice(index, &failure.case, slice);
                }
            }
            detections.push(Detection {
                group: group_index,
                ordinal: failure.ordinal,
                case: failure.case.clone(),
                input: failure.input,
                observations: failure.observations.clone(),
            });
        }
        groups.push(record.summary);
    }
    SearchReport {
        campaign,
        groups,
        detections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_pure_and_seeded() {
        let input = SearchInput::from_seed(7);
        for op in MutationOp::ALL {
            let mut a = SimRng::new(42).split(9);
            let mut b = SimRng::new(42).split(9);
            assert_eq!(mutate(&input, op, &mut a), mutate(&input, op, &mut b));
            let mut c = SimRng::new(43).split(9);
            // A different seed is allowed to (and in practice does) differ.
            let _ = mutate(&input, op, &mut c);
        }
    }

    #[test]
    fn mutation_never_touches_the_seed() {
        let input = SearchInput::from_seed(1234);
        let mut rng = SimRng::new(5);
        for op in MutationOp::ALL {
            assert_eq!(mutate(&input, op, &mut rng).seed, 1234);
        }
    }

    #[test]
    fn mutation_shifts_are_bounded() {
        let input = SearchInput::from_seed(1);
        for trial in 0..200u64 {
            let mut rng = SimRng::new(trial);
            for op in MutationOp::ALL {
                let m = mutate(&input, op, &mut rng);
                assert!(m.nudge.action_shift_ms.unsigned_abs() <= MAX_NUDGE_SHIFT_MS);
                assert!(m.nudge.crash_shift_ms.unsigned_abs() <= MAX_NUDGE_SHIFT_MS);
                assert!(m.nudge.settle_shift_ms.unsigned_abs() <= crate::MAX_SETTLE_SHIFT_MS);
                assert!(m.nudge.burst_shift_ms.unsigned_abs() <= MAX_NUDGE_SHIFT_MS);
            }
            let mut rng = SimRng::new(trial);
            let swapped = mutate(&input, MutationOp::SwapReorderFates, &mut rng);
            assert_ne!(swapped.nudge.fate_salt, 0, "fate swap must re-roll");
            let mut rng = SimRng::new(trial);
            let nudged = mutate(&input, MutationOp::NudgeRolloutPlan, &mut rng);
            assert_ne!(nudged.nudge.step_swap_salt, 0, "plan nudge must swap");
            assert_eq!(nudged.nudge.fate_salt, 0, "plan nudge leaves fates");
            let mut rng = SimRng::new(trial);
            let ranked = mutate(&input, MutationOp::ReRankHotKeys, &mut rng);
            assert_ne!(ranked.nudge.key_rank_salt, 0, "re-rank must re-roll");
            assert_eq!(ranked.nudge.burst_shift_ms, 0, "re-rank leaves timing");
            let mut rng = SimRng::new(trial);
            let churned = mutate(&input, MutationOp::MoveArrivalChurn, &mut rng);
            assert_ne!(churned.nudge.arrival_churn_salt, 0, "churn must re-roll");
            assert_eq!(churned.nudge.key_rank_salt, 0, "churn leaves ranking");
        }
    }

    #[test]
    fn core_operators_are_a_prefix_of_all() {
        // Non-open-loop groups draw from CORE; the invariant that CORE is
        // exactly the legacy operator set (and a prefix of ALL) is what
        // keeps their mutation schedules stable across this API widening.
        assert_eq!(
            &MutationOp::ALL[..MutationOp::CORE.len()],
            &MutationOp::CORE[..]
        );
        assert!(MutationOp::ALL.len() > MutationOp::CORE.len());
    }

    #[test]
    fn corpus_insertion_is_commutative() {
        let entries: Vec<CorpusEntry> = (0..8)
            .map(|i| CorpusEntry {
                input: SearchInput::from_seed(i),
                digest: 0x1000 + i % 5, // force collisions
                new_bits: 1,
                bits_set: 10,
            })
            .collect();
        let mut forward = Corpus::new();
        let mut backward = Corpus::new();
        for e in &entries {
            forward.insert(*e);
        }
        for e in entries.iter().rev() {
            backward.insert(*e);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.render(), backward.render());
        assert_eq!(forward.len(), 5);
        assert!(forward.contains(0x1000));
        assert!(!forward.contains(0x9999));
    }

    #[test]
    fn default_search_config_is_sane() {
        let c = SearchConfig::default();
        assert!(c.budget_per_group >= 1);
        assert_eq!(c.initial_seeds, vec![1]);
        assert!(!c.blind);
        assert!(c.dry_rounds >= 1);
    }
}
