//! The campaign engine: a worker pool over the case matrix with
//! deterministic, completion-order-independent aggregation.
//!
//! # Threading model
//!
//! Every [`TestCase`] is deterministic in its seed, so cases are
//! embarrassingly parallel. The executor enumerates the matrix
//! arithmetically ([`CaseMatrix`] — O(groups) memory, no materialized case
//! list), then `std::thread::scope`d workers pull *batches* — runs of
//! consecutive seed groups sharing one (version pair, scenario) — off a
//! shared atomic queue. Each worker owns one warm [`CaseRunner`] for the
//! whole campaign: `Sim::reset` recycles the simulator's pooled allocations
//! between cases, and (with snapshotting on, the default) `Sim::restore`
//! replays each seed group's shared warmup prefix from a snapshot instead
//! of re-executing it. Seeds of a group run in order on one worker, which
//! keeps dedup-aware seed pruning deterministic; results are folded into
//! per-group [`GroupRecord`]s — aggregation memory is O(groups + failures),
//! never O(cases) — and stitched afterwards **in matrix order**, so the
//! report is byte-identical whether the campaign ran on one thread or many,
//! whether the runners were warm or fresh, and whether snapshotting was on
//! or off.

use crate::campaign::matrix::{CaseMatrix, SeedGroup};
use crate::campaign::observer::{CampaignObserver, MetricsObserver};
use crate::campaign::report::{dedup_key, CampaignReport, CaseStatus, FailureReport};
use crate::campaign::search::{
    aggregate_search, run_search_group, SearchConfig, SearchGroupRecord, SearchPools, SearchReport,
    SearchRound,
};
use crate::faults::FaultIntensity;
use crate::harness::{CaseDigest, CaseOutcome, CaseResult, CaseRunner, TestCase};
use crate::oracle::Observation;
use crate::scenario::Scenario;
use dup_core::{SystemUnderTest, VersionId};
use dup_simnet::{Durability, TraceConfig, TraceSlice};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Campaign configuration. Constructed through [`Campaign::builder`] (or
/// [`CampaignConfig::default`]): every axis has a builder setter, and the
/// fields themselves are crate-private so a config can never be assembled
/// half-initialized by a struct literal.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds to try per case (Finding 11: ~89% of bugs need only one; the
    /// timing-dependent rest benefit from a few).
    pub(crate) seeds: Vec<u64>,
    /// Also test version pairs at distance two (Finding 9's extra 9%).
    pub(crate) include_gap_two: bool,
    /// Scenarios to run.
    pub(crate) scenarios: Vec<Scenario>,
    /// Include unit-test-derived workloads.
    pub(crate) use_unit_tests: bool,
    /// Fault intensities to sweep per (pair, scenario, workload)
    /// combination. Defaults to `[FaultIntensity::Off]` — the pre-fault-axis
    /// matrix exactly.
    pub(crate) fault_intensities: Vec<FaultIntensity>,
    /// Storage durability modes to sweep per (pair, scenario, workload,
    /// intensity) combination. Defaults to `[Durability::Strict]` — the
    /// pre-durability-axis matrix exactly.
    pub(crate) durabilities: Vec<Durability>,
    /// Open-loop workload specs appended to the workload axis (after the
    /// stress and unit-test entries). Defaults to empty — the
    /// pre-open-loop-axis matrix exactly.
    pub(crate) workloads: Vec<crate::workload::OpenLoopSpec>,
    /// Worker threads; `0` means one per available CPU.
    pub(crate) threads: usize,
    /// Dedup-aware seed pruning: once a failure signature has reproduced
    /// this many times within one (pair, scenario, workload) seed group,
    /// the group's remaining seeds are skipped (and counted as pruned).
    /// `None` disables pruning.
    pub(crate) prune_after: Option<usize>,
    /// Causal trace recording. `Some` enables the simulator's trace ring for
    /// every case and attaches a causal [`TraceSlice`] to each distinct
    /// failure's report; `None` (the default) runs untraced.
    pub(crate) trace: Option<TraceConfig>,
    /// Snapshot-and-fork prefix reuse (the default). Each worker runner
    /// executes a seed group's shared warmup prefix once, snapshots the
    /// simulator, and runs the remaining seeds as restore + suffix. Purely
    /// a performance choice: reports are byte-identical either way.
    pub(crate) snapshot: bool,
    /// Coverage-guided search configuration. When set, [`Campaign::run`]
    /// (and [`Campaign::run_search`]) replaces the blind seed sweep with
    /// the guided driver: the `seeds` axis is ignored in favour of the
    /// search's bootstrap seeds and mutation rounds.
    pub(crate) search: Option<SearchConfig>,
}

impl CampaignConfig {
    /// The seed axis.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The scenario axis.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The fault-intensity axis.
    pub fn faults(&self) -> &[FaultIntensity] {
        &self.fault_intensities
    }

    /// The durability axis.
    pub fn durabilities(&self) -> &[Durability] {
        &self.durabilities
    }

    /// The open-loop workload axis (empty unless
    /// [`CampaignBuilder::workloads`] added specs).
    pub fn workloads(&self) -> &[crate::workload::OpenLoopSpec] {
        &self.workloads
    }

    /// The worker thread count (`0` means one per available CPU).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The trace configuration, if tracing is enabled.
    pub fn trace(&self) -> Option<TraceConfig> {
        self.trace
    }

    /// Whether workers reuse seed-group prefixes via snapshot-and-fork.
    pub fn snapshot(&self) -> bool {
        self.snapshot
    }

    /// The coverage-guided search configuration, if one is set.
    pub fn search(&self) -> Option<&SearchConfig> {
        self.search.as_ref()
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: vec![1, 2, 3],
            include_gap_two: false,
            scenarios: Scenario::paper().to_vec(),
            use_unit_tests: true,
            fault_intensities: vec![FaultIntensity::Off],
            durabilities: vec![Durability::Strict],
            workloads: Vec::new(),
            threads: 0,
            prune_after: None,
            trace: None,
            snapshot: true,
            search: None,
        }
    }
}

/// What one executed seed group left behind: folded counts and digest sums
/// for every case, plus the failing cases in full. This is the executor's
/// unit of result memory — O(groups + failures) for the whole campaign, so
/// a 10⁶-case sweep that mostly passes carries a few counters per group
/// instead of a million records. (Timings live in the metrics, collected
/// via the observer path.)
#[derive(Debug, Clone, Default)]
struct GroupRecord {
    cases_run: usize,
    cases_passed: usize,
    cases_invalid: usize,
    cases_pruned: usize,
    events_processed: u64,
    messages_delivered: u64,
    faults_injected: u64,
    /// The group's failing cases, in case-index order.
    failures: Vec<GroupFailure>,
}

/// One failing case inside a [`GroupRecord`].
#[derive(Debug, Clone)]
struct GroupFailure {
    index: usize,
    observations: Vec<Observation>,
    /// The failing case's causal slice; `None` for untraced campaigns.
    slice: Option<TraceSlice>,
}

/// Fans callbacks out to the engine's internal metrics collector plus the
/// caller's observer, if any. Crate-visible so the search driver (in
/// [`crate::campaign::search`]) reports through the same pipeline.
pub(crate) struct FanOut<'o> {
    metrics: &'o MetricsObserver,
    user: Option<&'o dyn CampaignObserver>,
}

impl FanOut<'_> {
    pub(crate) fn case_start(&self, index: usize, case: &TestCase) {
        self.metrics.on_case_start(index, case);
        if let Some(user) = self.user {
            user.on_case_start(index, case);
        }
    }

    pub(crate) fn case_done(
        &self,
        index: usize,
        case: &TestCase,
        status: CaseStatus,
        wall: Duration,
    ) {
        self.metrics.on_case_done(index, case, status, wall);
        if let Some(user) = self.user {
            user.on_case_done(index, case, status, wall);
        }
    }

    pub(crate) fn failure_found(&self, index: usize, case: &TestCase, failure: &FailureReport) {
        self.metrics.on_failure_found(index, case, failure);
        if let Some(user) = self.user {
            user.on_failure_found(index, case, failure);
        }
    }

    pub(crate) fn trace_slice(&self, index: usize, case: &TestCase, slice: &TraceSlice) {
        self.metrics.on_trace_slice(index, case, slice);
        if let Some(user) = self.user {
            user.on_trace_slice(index, case, slice);
        }
    }

    /// Per-case trace counters go straight to the engine's metrics
    /// collector: every traced case counts, not just the failing ones.
    /// Per-round search progress: the per-group driver reports each
    /// bootstrap/mutation round through here.
    pub(crate) fn search_round(&self, round: &SearchRound) {
        self.metrics.on_search_round(round);
        if let Some(user) = self.user {
            user.on_search_round(round);
        }
    }

    pub(crate) fn trace_counts(&self, digest: &CaseDigest) {
        self.metrics
            .record_trace(digest.trace_events_recorded, digest.trace_events_dropped);
    }
}

/// Builds a [`Campaign`]. Obtained from [`Campaign::builder`].
pub struct CampaignBuilder<'a> {
    sut: &'a dyn SystemUnderTest,
    config: CampaignConfig,
    observer: Option<Box<dyn CampaignObserver>>,
}

impl<'a> CampaignBuilder<'a> {
    /// Replaces the whole configuration.
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the seed axis: every matrix combination is swept across these
    /// seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.config.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the scenario axis: every matrix combination is swept across
    /// these upgrade scenarios.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.config.scenarios = scenarios.into_iter().collect();
        self
    }

    /// Also test version pairs at distance two (Finding 9).
    pub fn gap_two(mut self, include: bool) -> Self {
        self.config.include_gap_two = include;
        self
    }

    /// Include unit-test-derived workloads.
    pub fn unit_tests(mut self, include: bool) -> Self {
        self.config.use_unit_tests = include;
        self
    }

    /// Sets the fault axis: every matrix combination is swept across these
    /// intensities. Each case derives its concrete plan from its intensity,
    /// durability, seed, and cluster size — so failure repro strings stay
    /// self-contained.
    pub fn faults(mut self, intensities: impl IntoIterator<Item = FaultIntensity>) -> Self {
        self.config.fault_intensities = intensities.into_iter().collect();
        self
    }

    /// Sets the durability axis: every matrix combination is swept across
    /// these storage modes. Non-strict modes buffer writes until the system
    /// flushes and let the seeded crash materializer drop or tear the
    /// unflushed tail on every crash.
    pub fn durabilities(mut self, modes: impl IntoIterator<Item = Durability>) -> Self {
        self.config.durabilities = modes.into_iter().collect();
        self
    }

    /// Appends open-loop workload specs to the workload axis: every matrix
    /// combination is additionally swept under each spec's seeded arrival
    /// plan ([`WorkloadSpec::OpenLoop`](crate::WorkloadSpec::OpenLoop)),
    /// alongside the stress and unit-test workloads.
    pub fn workloads(
        mut self,
        specs: impl IntoIterator<Item = crate::workload::OpenLoopSpec>,
    ) -> Self {
        self.config.workloads = specs.into_iter().collect();
        self
    }

    /// Sets the worker thread count; `0` (the default) means one per
    /// available CPU.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables dedup-aware seed pruning after `k` in-group reproductions.
    pub fn prune_after(mut self, k: usize) -> Self {
        self.config.prune_after = Some(k.max(1));
        self
    }

    /// Turns snapshot-and-fork prefix reuse on or off (on by default).
    /// Purely a performance knob: the report is byte-identical either way,
    /// which `durability_campaigns`/`trace_campaigns` assert.
    pub fn snapshot(mut self, on: bool) -> Self {
        self.config.snapshot = on;
        self
    }

    /// Enables causal trace recording for every case: each distinct failure
    /// report carries a bounded [`TraceSlice`] whose lineage chain ends at
    /// the violating observation, and observers see it via
    /// [`CampaignObserver::on_trace_slice`].
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.config.trace = Some(config);
        self
    }

    /// Switches the campaign to coverage-guided search: instead of sweeping
    /// the `seeds` axis blindly, each matrix group bootstraps from the
    /// search's initial seeds and then mutates schedule-affecting inputs
    /// (fault timings, per-message fates, crash points) guided by trace
    /// coverage. Run it with [`Campaign::run_search`] for the full
    /// [`SearchReport`]; [`Campaign::run`] returns just its campaign half.
    pub fn search(mut self, search: SearchConfig) -> Self {
        self.config.search = Some(search);
        self
    }

    /// Attaches an observer; it sees every case start/finish and every
    /// distinct failure.
    pub fn observer(mut self, observer: impl CampaignObserver + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Finalizes the builder into a reusable [`Campaign`].
    pub fn build(self) -> Campaign<'a> {
        Campaign {
            sut: self.sut,
            config: self.config,
            observer: self.observer,
        }
    }

    /// Convenience: builds and runs in one call.
    pub fn run(self) -> CampaignReport {
        self.build().run()
    }

    /// Finalizes just the configuration — for callers that enumerate a
    /// [`CaseMatrix`] directly instead of running a campaign.
    pub fn into_config(self) -> CampaignConfig {
        self.config
    }
}

/// The campaign engine: sweeps the full case matrix for one system and
/// produces a deduplicated [`CampaignReport`] with [`CampaignMetrics`]
/// attached.
///
/// [`CampaignMetrics`]: crate::campaign::report::CampaignMetrics
pub struct Campaign<'a> {
    sut: &'a dyn SystemUnderTest,
    config: CampaignConfig,
    observer: Option<Box<dyn CampaignObserver>>,
}

impl<'a> Campaign<'a> {
    /// Starts a builder for `sut` with the default configuration.
    pub fn builder(sut: &'a dyn SystemUnderTest) -> CampaignBuilder<'a> {
        CampaignBuilder {
            sut,
            config: CampaignConfig::default(),
            observer: None,
        }
    }

    /// A campaign with an explicit configuration and no observer.
    pub fn new(sut: &'a dyn SystemUnderTest, config: CampaignConfig) -> Campaign<'a> {
        Campaign {
            sut,
            config,
            observer: None,
        }
    }

    /// The configuration this campaign runs with.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the full sweep. Deterministic for a given configuration: the
    /// returned report (failures, order, counts, signatures, rendered
    /// table) does not depend on the thread count.
    ///
    /// With a [`SearchConfig`] set (via [`CampaignBuilder::search`]) this
    /// runs the coverage-guided search instead and returns its campaign
    /// half; call [`Campaign::run_search`] for the search-specific evidence
    /// (per-group coverage, corpora, detections).
    pub fn run(&self) -> CampaignReport {
        if self.config.search.is_some() {
            return self.run_search().campaign;
        }
        let started = Instant::now();
        let matrix = CaseMatrix::enumerate(self.sut, &self.config);
        let metrics = MetricsObserver::new();
        let fan = FanOut {
            metrics: &metrics,
            user: self.observer.as_deref(),
        };
        let threads = self.resolve_threads(matrix.groups().len());

        let records = if threads <= 1 {
            self.run_groups_sequential(&matrix, &fan)
        } else {
            self.run_groups_parallel(&matrix, &fan, threads)
        };

        let mut report = aggregate(
            self.sut.name(),
            &matrix,
            &records,
            &fan,
            &self.sut.versions(),
            self.sut.cluster_size(),
        );
        report.metrics = metrics.finish(threads, started.elapsed());
        report
    }

    /// Runs the coverage-guided search (or, with `blind: true`, its blind
    /// baseline) and returns the full [`SearchReport`].
    ///
    /// The campaign matrix's non-seed axes (pairs, scenarios, workloads,
    /// faults, durabilities) still define the groups; within each group the
    /// search drives its own input sequence — bootstrap seeds, then
    /// coverage-gated mutation rounds — instead of the `seeds` axis. Trace
    /// recording is always on (coverage needs it): an explicitly configured
    /// trace config is honoured, otherwise the default one is used.
    /// Deterministic like [`Campaign::run`]: the report is byte-identical
    /// across thread counts, rerun-stable, and independent of snapshotting.
    pub fn run_search(&self) -> SearchReport {
        let started = Instant::now();
        let search = self.config.search.clone().unwrap_or_default();
        // One matrix slot per group: the placeholder seed is never executed
        // (the search substitutes its own inputs), it only shapes the
        // group/batch structure.
        let mut shape = self.config.clone();
        shape.seeds = vec![0];
        let matrix = CaseMatrix::enumerate(self.sut, &shape);
        let trace = Some(self.config.trace.unwrap_or_default());
        let metrics = MetricsObserver::new();
        let fan = FanOut {
            metrics: &metrics,
            user: self.observer.as_deref(),
        };
        let threads = self.resolve_threads(matrix.groups().len());

        let records = if threads <= 1 {
            let mut runner = CaseRunner::with_options(self.sut, trace, self.config.snapshot);
            let mut pools = SearchPools::new();
            matrix
                .groups()
                .iter()
                .enumerate()
                .map(|(g, group)| {
                    let template = matrix.case_at(group.start);
                    run_search_group(&mut runner, &mut pools, g, &template, &search, &fan)
                })
                .collect()
        } else {
            self.run_search_parallel(&matrix, &search, trace, &fan, threads)
        };

        let mut report = aggregate_search(
            self.sut.name(),
            search.budget_per_group.max(1),
            records,
            &fan,
            &self.sut.versions(),
            self.sut.cluster_size(),
        );
        report.campaign.metrics = metrics.finish(threads, started.elapsed());
        report
    }

    fn run_search_parallel(
        &self,
        matrix: &CaseMatrix,
        search: &SearchConfig,
        trace: Option<TraceConfig>,
        fan: &FanOut<'_>,
        threads: usize,
    ) -> Vec<SearchGroupRecord> {
        let groups = matrix.groups();
        let batches = matrix.batches();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SearchGroupRecord>>> =
            groups.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One warm runner and one set of pooled search buffers
                    // per worker, reused across every group the worker runs.
                    let mut runner =
                        CaseRunner::with_options(self.sut, trace, self.config.snapshot);
                    let mut pools = SearchPools::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        let Some(batch) = batches.get(b) else { break };
                        for g in batch.clone() {
                            let template = matrix.case_at(groups[g].start);
                            let rec = run_search_group(
                                &mut runner,
                                &mut pools,
                                g,
                                &template,
                                search,
                                fan,
                            );
                            *slots[g].lock().expect("slot lock") = Some(rec);
                        }
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every group slot filled once the scope joins")
            })
            .collect()
    }

    fn resolve_threads(&self, groups: usize) -> usize {
        let requested = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        requested.clamp(1, groups.max(1))
    }

    fn run_groups_sequential(&self, matrix: &CaseMatrix, fan: &FanOut<'_>) -> Vec<GroupRecord> {
        let mut runner =
            CaseRunner::with_options(self.sut, self.config.trace, self.config.snapshot);
        let mut records = Vec::with_capacity(matrix.groups().len());
        for group in matrix.groups() {
            records.push(run_group(&mut runner, matrix, group, &self.config, fan));
        }
        records
    }

    fn run_groups_parallel(
        &self,
        matrix: &CaseMatrix,
        fan: &FanOut<'_>,
        threads: usize,
    ) -> Vec<GroupRecord> {
        let groups = matrix.groups();
        // Workers pull (pair, scenario) batches, not single groups: the
        // groups of one batch share cluster topology and workload shape, so
        // a warm runner replays near-identical allocation patterns and its
        // pools stay exactly-sized; consecutive groups of a batch also often
        // share a prefix snapshot. Coarser units also mean fewer trips to
        // the shared queue.
        let batches = matrix.batches();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<GroupRecord>>> =
            groups.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One warm runner per worker for the whole campaign.
                    let mut runner =
                        CaseRunner::with_options(self.sut, self.config.trace, self.config.snapshot);
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        let Some(batch) = batches.get(b) else { break };
                        for g in batch.clone() {
                            let rec = run_group(&mut runner, matrix, &groups[g], &self.config, fan);
                            *slots[g].lock().expect("slot lock") = Some(rec);
                        }
                    }
                });
            }
        });

        // Stitch group results back together in matrix order — this, not
        // completion order, is what the report sees.
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every group slot filled once the scope joins")
            })
            .collect()
    }
}

/// Runs one seed group in order, applying dedup-aware pruning within it,
/// and folds the results into one [`GroupRecord`].
fn run_group(
    runner: &mut CaseRunner<'_>,
    matrix: &CaseMatrix,
    group: &SeedGroup,
    config: &CampaignConfig,
    fan: &FanOut<'_>,
) -> GroupRecord {
    let mut rec = GroupRecord::default();
    let mut sig_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut prune_rest = false;
    for index in group.indices() {
        let case = matrix.case_at(index);
        fan.case_start(index, &case);
        if prune_rest {
            fan.case_done(index, &case, CaseStatus::Pruned, Duration::ZERO);
            rec.cases_pruned += 1;
            continue;
        }
        let t0 = Instant::now();
        // Contain panics: a buggy SUT adapter (or harness) must cost one
        // case, not the whole campaign. Reusing the runner after an unwind
        // is sound despite AssertUnwindSafe because `run_in` starts with an
        // unconditional `Sim::reset` or `Sim::restore` — whatever torn state
        // the panicking case left behind is cleared before the next case
        // sees it. (A snapshot captured *before* the panic is still the
        // prefix's pristine end state, so restoring from it stays sound.)
        let CaseResult {
            outcome,
            digest,
            slice,
        } = match catch_unwind(AssertUnwindSafe(|| case.run_in(runner))) {
            Ok(result) => result,
            Err(payload) => CaseResult {
                outcome: CaseOutcome::Fail(vec![Observation::HarnessPanic {
                    message: panic_message(payload.as_ref()),
                }]),
                digest: CaseDigest::default(),
                slice: None,
            },
        };
        fan.trace_counts(&digest);
        let wall = t0.elapsed();
        rec.cases_run += 1;
        rec.events_processed += digest.events_processed;
        rec.messages_delivered += digest.messages_delivered;
        rec.faults_injected += digest.faults_injected;
        let status = match &outcome {
            CaseOutcome::Pass => CaseStatus::Passed,
            CaseOutcome::InvalidWorkload(_) => CaseStatus::Invalid,
            CaseOutcome::Fail(observations) => {
                if let Some(k) = config.prune_after {
                    let count = sig_counts.entry(dedup_key(observations)).or_insert(0);
                    *count += 1;
                    if *count >= k {
                        prune_rest = true;
                    }
                }
                if observations
                    .iter()
                    .any(|o| matches!(o, Observation::HarnessPanic { .. }))
                {
                    CaseStatus::Panicked
                } else if observations
                    .iter()
                    .any(|o| matches!(o, Observation::CaseHung { .. }))
                {
                    CaseStatus::Hung
                } else {
                    CaseStatus::Failed
                }
            }
        };
        fan.case_done(index, &case, status, wall);
        match outcome {
            CaseOutcome::Pass => rec.cases_passed += 1,
            CaseOutcome::InvalidWorkload(_) => rec.cases_invalid += 1,
            CaseOutcome::Fail(observations) => rec.failures.push(GroupFailure {
                index,
                observations,
                slice,
            }),
        }
    }
    rec
}

/// Renders a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Folds per-group records into the deduplicated report, in matrix order
/// (groups in order, each group's failures in case-index order) — so the
/// report reads exactly as a sequential per-case walk would, at O(groups +
/// failures) memory.
fn aggregate(
    system: &str,
    matrix: &CaseMatrix,
    records: &[GroupRecord],
    fan: &FanOut<'_>,
    catalog: &[VersionId],
    cluster_size: u32,
) -> CampaignReport {
    debug_assert_eq!(matrix.groups().len(), records.len());
    let mut report = CampaignReport {
        system: system.to_string(),
        ..Default::default()
    };
    // dedup key -> index into report.failures
    let mut seen: BTreeMap<(VersionId, VersionId, String), usize> = BTreeMap::new();

    for record in records {
        report.cases_run += record.cases_run;
        report.cases_passed += record.cases_passed;
        report.cases_invalid += record.cases_invalid;
        report.cases_pruned += record.cases_pruned;
        // Per-case digests are deterministic in the seed, so these sums are
        // independent of worker thread count — the determinism-digest tests
        // key on exactly that.
        report.sim_events_processed += record.events_processed;
        report.sim_messages_delivered += record.messages_delivered;
        report.sim_faults_injected += record.faults_injected;
        for failure_case in &record.failures {
            let index = failure_case.index;
            let case = matrix.case_at(index);
            let observations = &failure_case.observations;
            let signature = dedup_key(observations);
            let key = (case.from, case.to, signature.clone());
            if let Some(&idx) = seen.get(&key) {
                report.failures[idx].reproductions += 1;
            } else {
                let cause = observations
                    .iter()
                    .map(|o| o.classify())
                    .find(|c| *c != "Unclassified")
                    .unwrap_or("Unclassified");
                seen.insert(key, report.failures.len());
                report.failures.push(FailureReport {
                    system: system.to_string(),
                    from: case.from,
                    to: case.to,
                    scenario: case.scenario,
                    workload: case.workload.clone(),
                    seed: case.seed,
                    faults: case.faults,
                    durability: case.durability,
                    signature,
                    cause,
                    observations: observations.clone(),
                    reproductions: 1,
                    trace: failure_case.slice.clone(),
                    plan: crate::rollout::rendered_plan(&case, None, catalog, cluster_size),
                });
                let failure = report.failures.last().expect("just pushed");
                fan.failure_found(index, &case, failure);
                if let Some(slice) = &failure.trace {
                    fan.trace_slice(index, &case, slice);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Observation;

    fn crash(reason: &str) -> Observation {
        Observation::NodeCrash {
            node: 0,
            version: "2.0.0".into(),
            reason: reason.to_string(),
        }
    }

    fn case(seed: u64) -> TestCase {
        TestCase {
            from: "1.0.0".parse().unwrap(),
            to: "2.0.0".parse().unwrap(),
            scenario: Scenario::FullStop,
            workload: crate::workload::WorkloadSpec::Stress,
            seed,
            faults: FaultIntensity::Off,
            durability: Durability::Strict,
        }
    }

    fn fail(index: usize, observations: Vec<Observation>) -> GroupFailure {
        GroupFailure {
            index,
            observations,
            slice: None,
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = CampaignConfig::default();
        assert_eq!(c.scenarios.len(), 3);
        assert!(!c.seeds.is_empty());
        assert!(c.use_unit_tests);
        assert_eq!(c.fault_intensities, vec![FaultIntensity::Off]);
        assert_eq!(c.durabilities, vec![Durability::Strict]);
        assert!(c.workloads.is_empty(), "open-loop axis is opt-in");
        assert_eq!(c.threads, 0);
        assert!(c.prune_after.is_none());
        assert!(c.trace.is_none());
        assert!(c.snapshot, "snapshot-and-fork is the default");
    }

    #[test]
    fn aggregation_keys_on_all_observation_signatures() {
        // Two failing cases share their *first* observation but differ in
        // the second: they must surface as two distinct failures (the old
        // first-signature keying silently merged them).
        let matrix = CaseMatrix::from_cases(vec![case(1), case(2), case(3)]);
        assert_eq!(matrix.groups().len(), 1, "seeds fold into one group");
        let records = vec![GroupRecord {
            cases_run: 3,
            failures: vec![
                fail(0, vec![crash("shared root symptom"), crash("beta effect")]),
                fail(1, vec![crash("shared root symptom"), crash("gamma effect")]),
                fail(2, vec![crash("beta effect"), crash("shared root symptom")]),
            ],
            ..GroupRecord::default()
        }];
        let metrics = MetricsObserver::new();
        let fan = FanOut {
            metrics: &metrics,
            user: None,
        };
        let report = aggregate("sys", &matrix, &records, &fan, &[], 3);
        assert_eq!(report.failures.len(), 2, "{:#?}", report.failures);
        // Case 3 has the same *set* as case 1 (order-insensitive): a dedup hit.
        assert_eq!(report.failures[0].reproductions, 2);
        assert_eq!(report.failures[1].reproductions, 1);
        assert_eq!(metrics.snapshot().distinct_failures, 2);
    }

    #[test]
    fn aggregation_counts_pruned_separately() {
        let matrix = CaseMatrix::from_cases(vec![case(1), case(2)]);
        let records = vec![GroupRecord {
            cases_run: 1,
            cases_pruned: 1,
            failures: vec![fail(0, vec![crash("boom")])],
            ..GroupRecord::default()
        }];
        let metrics = MetricsObserver::new();
        let fan = FanOut {
            metrics: &metrics,
            user: None,
        };
        let report = aggregate("sys", &matrix, &records, &fan, &[], 3);
        assert_eq!(report.cases_run, 1);
        assert_eq!(report.cases_pruned, 1);
        assert_eq!(report.failures.len(), 1);
    }
}
