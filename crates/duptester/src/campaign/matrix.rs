//! Case-matrix enumeration: describes the full version-pair × scenario ×
//! workload × seed sweep *arithmetically*, giving every case a stable index
//! without materializing the cases.
//!
//! Stable indices are what make the parallel executor deterministic: workers
//! may finish in any order, but results are aggregated by index, so the
//! report reads exactly as if the matrix had been walked sequentially.
//!
//! An enumerated matrix stores only the sweep's *axes* (the version pairs,
//! scenarios, workloads, fault intensities, durabilities, and seeds) plus
//! the O(groups) seed-group table; [`CaseMatrix::case_at`] decodes a case
//! index into its [`TestCase`] by mixed-radix arithmetic. That is what lets
//! a campaign sweep 10⁶+ cases without ever holding 10⁶ `TestCase`s — or
//! per-case results — in memory.

use crate::campaign::CampaignConfig;
use crate::faults::FaultIntensity;
use crate::harness::TestCase;
use crate::scenario::Scenario;
use crate::workload::WorkloadSpec;
use dup_core::{upgrade_pairs, SystemUnderTest, VersionId};
use dup_simnet::Durability;
use std::sync::Arc;

// The enumeration order is pairs → scenarios → workloads → fault
// intensities → durabilities → seeds; seeds stay innermost so each
// (…, intensity, durability) combination still forms one contiguous
// `SeedGroup`.

/// A contiguous run of case indices that differ only in seed — one
/// (version pair, scenario, workload) combination swept across every
/// configured seed.
///
/// Seed groups are the unit of work handed to executor threads: seeds of one
/// group run in enumeration order on a single worker, which is what lets
/// dedup-aware seed pruning stay deterministic under parallelism. They are
/// also the unit of *prefix sharing*: every case of a group has the same
/// `(from, workload)`, so a snapshotting runner executes the warmup prefix
/// once per group at most.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedGroup {
    /// Index of the group's first case.
    pub start: usize,
    /// Number of cases (seeds) in the group.
    pub len: usize,
}

impl SeedGroup {
    /// The case indices this group covers.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// The sweep's axes, from which any case index decodes arithmetically.
#[derive(Debug, Clone)]
struct MatrixShape {
    pairs: Vec<(VersionId, VersionId)>,
    scenarios: Vec<Scenario>,
    workloads: Vec<WorkloadSpec>,
    faults: Vec<FaultIntensity>,
    durabilities: Vec<Durability>,
    seeds: Vec<u64>,
}

impl MatrixShape {
    fn len(&self) -> usize {
        self.pairs
            .len()
            .saturating_mul(self.scenarios.len())
            .saturating_mul(self.workloads.len())
            .saturating_mul(self.faults.len())
            .saturating_mul(self.durabilities.len())
            .saturating_mul(self.seeds.len())
    }

    /// Decodes `index` in the canonical mixed-radix order (seeds innermost,
    /// pairs outermost). The only allocation is the workload's `Arc` bump.
    fn case_at(&self, index: usize) -> TestCase {
        debug_assert!(index < self.len());
        let mut rest = index;
        let seed = self.seeds[rest % self.seeds.len()];
        rest /= self.seeds.len();
        let durability = self.durabilities[rest % self.durabilities.len()];
        rest /= self.durabilities.len();
        let faults = self.faults[rest % self.faults.len()];
        rest /= self.faults.len();
        let workload = self.workloads[rest % self.workloads.len()].clone();
        rest /= self.workloads.len();
        let scenario = self.scenarios[rest % self.scenarios.len()];
        rest /= self.scenarios.len();
        let (from, to) = self.pairs[rest];
        TestCase {
            from,
            to,
            scenario,
            workload,
            seed,
            faults,
            durability,
        }
    }
}

/// The campaign sweep: either an arithmetic description of the full
/// enumeration ([`CaseMatrix::enumerate`], O(axes + groups) memory) or an
/// explicit case list ([`CaseMatrix::from_cases`]).
#[derive(Debug, Clone, Default)]
pub struct CaseMatrix {
    /// `Some` for enumerated (lazy) matrices; `None` for explicit ones.
    shape: Option<MatrixShape>,
    /// Explicit cases; empty when `shape` is `Some`.
    cases: Vec<TestCase>,
    groups: Vec<SeedGroup>,
    len: usize,
}

impl CaseMatrix {
    /// Enumerates every case for `sut` under `config`, in the canonical
    /// order: version pairs, then scenarios, then workloads, then fault
    /// intensities, then durability modes, then seeds.
    ///
    /// Lazy: stores the axes and the seed-group table, not the cases —
    /// memory is O(groups) no matter how many seeds the sweep multiplies
    /// out to.
    pub fn enumerate(sut: &dyn SystemUnderTest, config: &CampaignConfig) -> CaseMatrix {
        let versions = sut.versions();
        let pairs = upgrade_pairs(&versions, config.include_gap_two);

        let mut workloads: Vec<WorkloadSpec> = vec![WorkloadSpec::Stress];
        if config.use_unit_tests {
            for test in sut.unit_tests() {
                let name: Arc<str> = Arc::from(test.name.as_str());
                workloads.push(WorkloadSpec::TranslatedUnit(Arc::clone(&name)));
                workloads.push(WorkloadSpec::UnitStateHandoff(name));
            }
        }
        for spec in &config.workloads {
            workloads.push(WorkloadSpec::OpenLoop(*spec));
        }

        let shape = MatrixShape {
            pairs,
            scenarios: config.scenarios.clone(),
            workloads,
            faults: config.fault_intensities.clone(),
            durabilities: config.durabilities.clone(),
            seeds: config.seeds.clone(),
        };
        let len = shape.len();
        let seeds = shape.seeds.len();
        let groups = match len.checked_div(seeds) {
            None => Vec::new(),
            Some(n) => (0..n)
                .map(|g| SeedGroup {
                    start: g * seeds,
                    len: seeds,
                })
                .collect(),
        };
        CaseMatrix {
            shape: Some(shape),
            cases: Vec::new(),
            groups,
            len,
        }
    }

    /// Builds a matrix from explicit cases, grouping consecutive cases that
    /// differ only in seed. Useful for targeted sweeps and tests.
    pub fn from_cases(cases: Vec<TestCase>) -> CaseMatrix {
        let mut groups: Vec<SeedGroup> = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            let extends = groups.last().map(|g| {
                let prev = &cases[i - 1];
                g.start + g.len == i
                    && prev.from == case.from
                    && prev.to == case.to
                    && prev.scenario == case.scenario
                    && prev.workload == case.workload
                    && prev.faults == case.faults
                    && prev.durability == case.durability
            });
            match (groups.last_mut(), extends) {
                (Some(g), Some(true)) => g.len += 1,
                _ => groups.push(SeedGroup { start: i, len: 1 }),
            }
        }
        let len = cases.len();
        CaseMatrix {
            shape: None,
            cases,
            groups,
            len,
        }
    }

    /// The case at `index` (stable enumeration order). Decoded
    /// arithmetically for enumerated matrices, cloned for explicit ones;
    /// either way the cost is O(1) and a workload `Arc` bump.
    pub fn case_at(&self, index: usize) -> TestCase {
        match &self.shape {
            Some(shape) => shape.case_at(index),
            None => self.cases[index].clone(),
        }
    }

    /// All cases in stable index order, produced on demand.
    pub fn iter(&self) -> impl Iterator<Item = TestCase> + '_ {
        (0..self.len).map(|i| self.case_at(i))
    }

    /// The seed groups, each a contiguous index range.
    pub fn groups(&self) -> &[SeedGroup] {
        &self.groups
    }

    /// Partitions the group list into batches of consecutive groups that
    /// share one (version pair, scenario) — the executor's dispatch unit.
    /// Groups of a batch run the same cluster topology and upgrade shape,
    /// so a warm worker runner replays near-identical allocation patterns
    /// across a whole batch; coarser units also cost fewer queue round
    /// trips. Each range indexes into [`CaseMatrix::groups`].
    pub fn batches(&self) -> Vec<std::ops::Range<usize>> {
        let mut batches: Vec<std::ops::Range<usize>> = Vec::new();
        let mut prev_key: Option<(VersionId, VersionId, Scenario)> = None;
        for (g, group) in self.groups.iter().enumerate() {
            let case = self.case_at(group.start);
            let key = (case.from, case.to, case.scenario);
            match (batches.last_mut(), prev_key == Some(key)) {
                (Some(b), true) if b.end == g => b.end = g + 1,
                _ => batches.push(g..g + 1),
            }
            prev_key = Some(key);
        }
        batches
    }

    /// Total number of cases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use dup_core::VersionId;

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn case(from: &str, to: &str, scenario: Scenario, seed: u64) -> TestCase {
        TestCase {
            from: v(from),
            to: v(to),
            scenario,
            workload: WorkloadSpec::Stress,
            seed,
            faults: crate::faults::FaultIntensity::Off,
            durability: dup_simnet::Durability::Strict,
        }
    }

    #[test]
    fn enumeration_is_stable_and_grouped() {
        let config = crate::campaign::Campaign::builder(&dup_kvstore::KvStoreSystem)
            .seeds([1, 2])
            .scenarios([Scenario::FullStop, Scenario::Rolling])
            .unit_tests(false)
            .into_config();
        let a = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &config);
        let b = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &config);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        assert!(!a.is_empty());
        // Seeds are the innermost loop: every group covers all seeds of one
        // (pair, scenario, workload) combination, contiguously.
        for g in a.groups() {
            assert_eq!(g.len, 2);
            let cases: Vec<TestCase> = g.indices().map(|i| a.case_at(i)).collect();
            assert_eq!(cases[0].seed, 1);
            assert_eq!(cases[1].seed, 2);
            assert_eq!(cases[0].from, cases[1].from);
            assert_eq!(cases[0].scenario, cases[1].scenario);
        }
        // Groups tile the matrix exactly.
        let covered: usize = a.groups().iter().map(|g| g.len).sum();
        assert_eq!(covered, a.len());
    }

    #[test]
    fn lazy_enumeration_agrees_with_eager_case_for_case() {
        // The pre-lazy enumeration materialized the sweep with this exact
        // nested loop; replay it and demand index-for-index agreement.
        let sut = &dup_kvstore::KvStoreSystem;
        let config = crate::campaign::Campaign::builder(sut)
            .seeds([1, 2, 3])
            .faults(crate::faults::FaultIntensity::ALL)
            .durabilities([Durability::Strict, Durability::Torn])
            .workloads([crate::workload::OpenLoopSpec::small()])
            .into_config();
        let lazy = CaseMatrix::enumerate(sut, &config);

        let versions = sut.versions();
        let pairs = upgrade_pairs(&versions, config.include_gap_two);
        let mut workloads: Vec<WorkloadSpec> = vec![WorkloadSpec::Stress];
        for test in sut.unit_tests() {
            workloads.push(WorkloadSpec::TranslatedUnit(test.name.as_str().into()));
            workloads.push(WorkloadSpec::UnitStateHandoff(test.name.as_str().into()));
        }
        workloads.push(WorkloadSpec::OpenLoop(
            crate::workload::OpenLoopSpec::small(),
        ));
        let mut eager: Vec<TestCase> = Vec::new();
        for (from, to) in pairs {
            for &scenario in &config.scenarios {
                for workload in &workloads {
                    for &faults in &config.fault_intensities {
                        for &durability in &config.durabilities {
                            for &seed in &config.seeds {
                                eager.push(TestCase {
                                    from,
                                    to,
                                    scenario,
                                    workload: workload.clone(),
                                    seed,
                                    faults,
                                    durability,
                                });
                            }
                        }
                    }
                }
            }
        }

        assert_eq!(lazy.len(), eager.len());
        assert!(lazy.len() > 100, "sweep too small to be a meaningful check");
        for (i, expected) in eager.iter().enumerate() {
            assert_eq!(&lazy.case_at(i), expected, "case {i} diverges");
        }
        // And grouping matches the eager grouper exactly.
        let from_eager = CaseMatrix::from_cases(eager);
        assert_eq!(lazy.groups(), from_eager.groups());
        assert_eq!(lazy.batches(), from_eager.batches());
    }

    #[test]
    fn million_case_matrix_stays_lazy() {
        // ~1.2M cases: the matrix must enumerate, group, and batch without
        // materializing a single TestCase.
        let sut = &dup_kvstore::KvStoreSystem;
        let seeds: Vec<u64> = (0..20_000).collect();
        let config = crate::campaign::Campaign::builder(sut)
            .seeds(seeds)
            .faults(crate::faults::FaultIntensity::ALL)
            .into_config();
        let m = CaseMatrix::enumerate(sut, &config);
        assert!(m.len() >= 1_000_000, "only {} cases", m.len());
        // Lazy backing: no cases materialized, groups table is O(groups).
        assert!(m.cases.is_empty());
        assert_eq!(m.groups().len(), m.len() / 20_000);
        // Every group covers exactly the seed axis.
        let g = m.groups()[m.groups().len() / 2];
        assert_eq!(g.len, 20_000);
        // Spot-check arithmetic decoding across the range, including both
        // ends, and that seeds are the innermost axis.
        let last = m.len() - 1;
        for index in [0, 1, 19_999, 20_000, m.len() / 2, last] {
            let case = m.case_at(index);
            assert_eq!(case.seed, (index % 20_000) as u64);
        }
        // Batches tile the group list exactly, in order.
        let batches = m.batches();
        assert_eq!(
            batches.iter().map(|b| b.len()).sum::<usize>(),
            m.groups().len()
        );
        assert!(batches.windows(2).all(|w| w[0].end == w[1].start));
    }

    #[test]
    fn batches_merge_groups_by_pair_and_scenario() {
        let cases = vec![
            // Two groups sharing (pair, scenario) — one batch.
            case("1.0.0", "2.0.0", Scenario::FullStop, 1),
            case("1.0.0", "2.0.0", Scenario::FullStop, 2),
            // Scenario changes — new batch.
            case("1.0.0", "2.0.0", Scenario::Rolling, 1),
            // Pair changes — new batch.
            case("2.0.0", "3.0.0", Scenario::Rolling, 1),
            case("2.0.0", "3.0.0", Scenario::Rolling, 2),
        ];
        // Seeds 1 and 2 of each run fold into one group already; force
        // distinct groups per seed by alternating workloads instead.
        let mut cases = cases;
        cases[1].workload = WorkloadSpec::TranslatedUnit("t".into());
        cases[4].workload = WorkloadSpec::TranslatedUnit("t".into());
        let m = CaseMatrix::from_cases(cases);
        assert_eq!(m.groups().len(), 5);
        let batches = m.batches();
        assert_eq!(batches, vec![0..2, 2..3, 3..5]);
        // Batches tile the group list exactly, in order.
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 5);
        assert!(CaseMatrix::default().batches().is_empty());
    }

    #[test]
    fn from_cases_groups_seed_runs() {
        let cases = vec![
            case("1.0.0", "2.0.0", Scenario::FullStop, 1),
            case("1.0.0", "2.0.0", Scenario::FullStop, 2),
            case("1.0.0", "2.0.0", Scenario::Rolling, 1),
            case("2.0.0", "3.0.0", Scenario::Rolling, 1),
        ];
        let m = CaseMatrix::from_cases(cases);
        assert_eq!(m.groups().len(), 3);
        assert_eq!(m.groups()[0], SeedGroup { start: 0, len: 2 });
        assert_eq!(m.groups()[1], SeedGroup { start: 2, len: 1 });
        assert_eq!(m.groups()[2], SeedGroup { start: 3, len: 1 });
    }
}
