//! Case-matrix enumeration: materializes the full version-pair × scenario ×
//! workload × seed sweep up front, giving every case a stable index.
//!
//! Stable indices are what make the parallel executor deterministic: workers
//! may finish in any order, but results are aggregated by index, so the
//! report reads exactly as if the matrix had been walked sequentially.

use crate::campaign::CampaignConfig;
use crate::harness::TestCase;
use crate::scenario::WorkloadSource;
use dup_core::{upgrade_pairs, SystemUnderTest};

// The enumeration order is pairs → scenarios → workloads → fault
// intensities → durabilities → seeds; seeds stay innermost so each
// (…, intensity, durability) combination still forms one contiguous
// `SeedGroup`.

/// A contiguous run of case indices that differ only in seed — one
/// (version pair, scenario, workload) combination swept across every
/// configured seed.
///
/// Seed groups are the unit of work handed to executor threads: seeds of one
/// group run in enumeration order on a single worker, which is what lets
/// dedup-aware seed pruning stay deterministic under parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedGroup {
    /// Index of the group's first case.
    pub start: usize,
    /// Number of cases (seeds) in the group.
    pub len: usize,
}

impl SeedGroup {
    /// The case indices this group covers.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// The fully materialized campaign sweep.
#[derive(Debug, Clone, Default)]
pub struct CaseMatrix {
    cases: Vec<TestCase>,
    groups: Vec<SeedGroup>,
}

impl CaseMatrix {
    /// Enumerates every case for `sut` under `config`, in the canonical
    /// order: version pairs, then scenarios, then workloads, then fault
    /// intensities, then durability modes, then seeds.
    pub fn enumerate(sut: &dyn SystemUnderTest, config: &CampaignConfig) -> CaseMatrix {
        let versions = sut.versions();
        let pairs = upgrade_pairs(&versions, config.include_gap_two);

        let mut workloads: Vec<WorkloadSource> = vec![WorkloadSource::Stress];
        if config.use_unit_tests {
            for test in sut.unit_tests() {
                workloads.push(WorkloadSource::TranslatedUnit(test.name.clone()));
                workloads.push(WorkloadSource::UnitStateHandoff(test.name.clone()));
            }
        }

        let mut matrix = CaseMatrix::default();
        for (from, to) in pairs {
            for scenario in &config.scenarios {
                for workload in &workloads {
                    for &faults in &config.fault_intensities {
                        for &durability in &config.durabilities {
                            let start = matrix.cases.len();
                            for &seed in &config.seeds {
                                matrix.cases.push(TestCase {
                                    from,
                                    to,
                                    scenario: *scenario,
                                    workload: workload.clone(),
                                    seed,
                                    faults,
                                    durability,
                                });
                            }
                            matrix.groups.push(SeedGroup {
                                start,
                                len: matrix.cases.len() - start,
                            });
                        }
                    }
                }
            }
        }
        matrix
    }

    /// Builds a matrix from explicit cases, grouping consecutive cases that
    /// differ only in seed. Useful for targeted sweeps and tests.
    pub fn from_cases(cases: Vec<TestCase>) -> CaseMatrix {
        let mut groups: Vec<SeedGroup> = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            let extends = groups.last().map(|g| {
                let prev = &cases[i - 1];
                g.start + g.len == i
                    && prev.from == case.from
                    && prev.to == case.to
                    && prev.scenario == case.scenario
                    && prev.workload == case.workload
                    && prev.faults == case.faults
                    && prev.durability == case.durability
            });
            match (groups.last_mut(), extends) {
                (Some(g), Some(true)) => g.len += 1,
                _ => groups.push(SeedGroup { start: i, len: 1 }),
            }
        }
        CaseMatrix { cases, groups }
    }

    /// All cases, in stable index order.
    pub fn cases(&self) -> &[TestCase] {
        &self.cases
    }

    /// The seed groups, each a contiguous index range.
    pub fn groups(&self) -> &[SeedGroup] {
        &self.groups
    }

    /// Partitions the group list into batches of consecutive groups that
    /// share one (version pair, scenario) — the executor's dispatch unit.
    /// Groups of a batch run the same cluster topology and upgrade shape,
    /// so a warm worker runner replays near-identical allocation patterns
    /// across a whole batch; coarser units also cost fewer queue round
    /// trips. Each range indexes into [`CaseMatrix::groups`].
    pub fn batches(&self) -> Vec<std::ops::Range<usize>> {
        let mut batches: Vec<std::ops::Range<usize>> = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            let case = &self.cases[group.start];
            let extends = batches.last().is_some_and(|b| {
                let prev = &self.cases[self.groups[b.end - 1].start];
                b.end == g
                    && prev.from == case.from
                    && prev.to == case.to
                    && prev.scenario == case.scenario
            });
            match (batches.last_mut(), extends) {
                (Some(b), true) => b.end = g + 1,
                _ => batches.push(g..g + 1),
            }
        }
        batches
    }

    /// Total number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use dup_core::VersionId;

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn case(from: &str, to: &str, scenario: Scenario, seed: u64) -> TestCase {
        TestCase {
            from: v(from),
            to: v(to),
            scenario,
            workload: WorkloadSource::Stress,
            seed,
            faults: crate::faults::FaultIntensity::Off,
            durability: dup_simnet::Durability::Strict,
        }
    }

    #[test]
    fn enumeration_is_stable_and_grouped() {
        let config = crate::campaign::Campaign::builder(&dup_kvstore::KvStoreSystem)
            .seeds([1, 2])
            .scenarios([Scenario::FullStop, Scenario::Rolling])
            .unit_tests(false)
            .into_config();
        let a = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &config);
        let b = CaseMatrix::enumerate(&dup_kvstore::KvStoreSystem, &config);
        assert_eq!(a.cases(), b.cases());
        assert!(!a.is_empty());
        // Seeds are the innermost loop: every group covers all seeds of one
        // (pair, scenario, workload) combination, contiguously.
        for g in a.groups() {
            assert_eq!(g.len, 2);
            let cases = &a.cases()[g.indices()];
            assert_eq!(cases[0].seed, 1);
            assert_eq!(cases[1].seed, 2);
            assert_eq!(cases[0].from, cases[1].from);
            assert_eq!(cases[0].scenario, cases[1].scenario);
        }
        // Groups tile the matrix exactly.
        let covered: usize = a.groups().iter().map(|g| g.len).sum();
        assert_eq!(covered, a.len());
    }

    #[test]
    fn batches_merge_groups_by_pair_and_scenario() {
        let cases = vec![
            // Two groups sharing (pair, scenario) — one batch.
            case("1.0.0", "2.0.0", Scenario::FullStop, 1),
            case("1.0.0", "2.0.0", Scenario::FullStop, 2),
            // Scenario changes — new batch.
            case("1.0.0", "2.0.0", Scenario::Rolling, 1),
            // Pair changes — new batch.
            case("2.0.0", "3.0.0", Scenario::Rolling, 1),
            case("2.0.0", "3.0.0", Scenario::Rolling, 2),
        ];
        // Seeds 1 and 2 of each run fold into one group already; force
        // distinct groups per seed by alternating workloads instead.
        let mut cases = cases;
        cases[1].workload = WorkloadSource::TranslatedUnit("t".into());
        cases[4].workload = WorkloadSource::TranslatedUnit("t".into());
        let m = CaseMatrix::from_cases(cases);
        assert_eq!(m.groups().len(), 5);
        let batches = m.batches();
        assert_eq!(batches, vec![0..2, 2..3, 3..5]);
        // Batches tile the group list exactly, in order.
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 5);
        assert!(CaseMatrix::default().batches().is_empty());
    }

    #[test]
    fn from_cases_groups_seed_runs() {
        let cases = vec![
            case("1.0.0", "2.0.0", Scenario::FullStop, 1),
            case("1.0.0", "2.0.0", Scenario::FullStop, 2),
            case("1.0.0", "2.0.0", Scenario::Rolling, 1),
            case("2.0.0", "3.0.0", Scenario::Rolling, 1),
        ];
        let m = CaseMatrix::from_cases(cases);
        assert_eq!(m.groups().len(), 3);
        assert_eq!(m.groups()[0], SeedGroup { start: 0, len: 2 });
        assert_eq!(m.groups()[1], SeedGroup { start: 2, len: 1 });
        assert_eq!(m.groups()[2], SeedGroup { start: 3, len: 1 });
    }
}
