//! Coverage signatures over causal traces.
//!
//! A campaign case's [`TraceBuffer`] is a deterministic record of what the
//! schedule actually did. This module folds that record into a fixed-size
//! bitmap signature — each consecutive pair of structural event tokens
//! (event kind + the endpoints/nodes it touches, never timings or byte
//! counts) hashes to one bit — so "did this case do anything new?" becomes a
//! bitmap union. Signatures are byte-identical across thread counts,
//! warm-vs-fresh runners, and snapshot on/off, because the underlying
//! structural token stream is; and both the per-case signature and the
//! accumulated [`CoverageMap`] are pooled buffers that are cleared rather
//! than reallocated, so the fold is allocation-free in steady state.

use dup_simnet::TraceBuffer;

/// Number of bits in a coverage signature. A 16 Ki-bit map (2 KiB) is large
/// enough that the few-thousand-edge traces of the mini systems collide
/// rarely, and small enough to union and hash in a few hundred word ops.
pub const SIGNATURE_BITS: usize = 1 << 14;

const SIGNATURE_WORDS: usize = SIGNATURE_BITS / 64;

/// The coverage signature of one executed case: a fixed-size bitmap where
/// each set bit witnesses one (previous-event, event) structural pair seen
/// in the case's trace.
#[derive(Clone, PartialEq, Eq)]
pub struct CaseSignature {
    words: Vec<u64>,
    bits: u32,
}

impl CaseSignature {
    /// Creates an empty signature. This is the only allocating call; reuse
    /// the value across cases via [`CaseSignature::clear`].
    pub fn new() -> Self {
        Self {
            words: vec![0; SIGNATURE_WORDS],
            bits: 0,
        }
    }

    /// Resets the signature to empty without releasing its storage.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.bits = 0;
    }

    /// Folds a trace into the signature: hashes every consecutive pair of
    /// structural tokens (seeded with a zero sentinel so the first event
    /// also contributes) to a bit index and sets it. Allocation-free.
    pub fn fold(&mut self, trace: &TraceBuffer) {
        let words = &mut self.words;
        let bits = &mut self.bits;
        let mut prev = 0u64;
        trace.fold_structural(|token| {
            let pair = mix_pair(prev, token);
            prev = token;
            let bit = (pair as usize) & (SIGNATURE_BITS - 1);
            let slot = &mut words[bit / 64];
            let mask = 1u64 << (bit % 64);
            if *slot & mask == 0 {
                *slot |= mask;
                *bits += 1;
            }
        });
    }

    /// Number of bits currently set.
    pub fn bits_set(&self) -> u32 {
        self.bits
    }

    /// The raw bitmap words, for byte-level equality checks in tests.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// A 64-bit digest of the bitmap, used as the corpus dedup key: two
    /// cases whose traces set the same bits are the same schedule as far as
    /// the search is concerned.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in &self.words {
            h = mix_pair(h, w);
        }
        h
    }
}

impl Default for CaseSignature {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CaseSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseSignature")
            .field("bits_set", &self.bits)
            .field("digest", &format_args!("{:#018x}", self.digest()))
            .finish()
    }
}

/// The accumulated coverage of a search run: the union of every observed
/// case signature. [`CoverageMap::observe`] reports how many bits a case
/// contributed that no earlier case had — the search's novelty signal.
#[derive(Clone, PartialEq, Eq)]
pub struct CoverageMap {
    words: Vec<u64>,
    bits: u32,
}

impl CoverageMap {
    /// Creates an empty map. Like [`CaseSignature::new`], this is the only
    /// allocating call; clear and reuse it between groups.
    pub fn new() -> Self {
        Self {
            words: vec![0; SIGNATURE_WORDS],
            bits: 0,
        }
    }

    /// Resets the map to empty without releasing its storage.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.bits = 0;
    }

    /// Unions a case signature into the map and returns the number of bits
    /// that were new — zero means the case explored nothing unseen.
    pub fn observe(&mut self, signature: &CaseSignature) -> u32 {
        let mut new_bits = 0u32;
        for (acc, &w) in self.words.iter_mut().zip(signature.words.iter()) {
            let fresh = w & !*acc;
            new_bits += fresh.count_ones();
            *acc |= fresh;
        }
        self.bits += new_bits;
        new_bits
    }

    /// Total bits covered so far.
    pub fn bits_set(&self) -> u32 {
        self.bits
    }
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoverageMap")
            .field("bits_set", &self.bits)
            .finish()
    }
}

/// SplitMix64-style two-input mixer shared by the pair hash and the digest.
#[inline(always)]
fn mix_pair(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_simnet::{TraceConfig, TraceEventKind};

    fn trace_of(nodes: &[u32]) -> TraceBuffer {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        for &n in nodes {
            buf.record(
                dup_simnet::SimTime::ZERO,
                0,
                TraceEventKind::TimerFire { node: n, token: 0 },
            );
        }
        buf
    }

    #[test]
    fn identical_traces_fold_to_identical_signatures() {
        let mut a = CaseSignature::new();
        let mut b = CaseSignature::new();
        a.fold(&trace_of(&[1, 2, 3]));
        b.fold(&trace_of(&[1, 2, 3]));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert!(a.bits_set() > 0);
    }

    #[test]
    fn order_matters_because_pairs_are_hashed() {
        let mut a = CaseSignature::new();
        let mut b = CaseSignature::new();
        a.fold(&trace_of(&[1, 2, 3]));
        b.fold(&trace_of(&[3, 2, 1]));
        assert_ne!(
            a.digest(),
            b.digest(),
            "reordered schedules are distinct coverage"
        );
    }

    #[test]
    fn clear_restores_the_empty_signature_without_reallocating() {
        let mut sig = CaseSignature::new();
        sig.fold(&trace_of(&[1, 2]));
        assert!(sig.bits_set() > 0);
        sig.clear();
        assert_eq!(sig.bits_set(), 0);
        assert_eq!(sig, CaseSignature::new());
    }

    #[test]
    fn coverage_map_counts_only_new_bits() {
        let mut sig = CaseSignature::new();
        sig.fold(&trace_of(&[1, 2, 3]));
        let mut map = CoverageMap::new();
        let first = map.observe(&sig);
        assert_eq!(first, sig.bits_set());
        assert_eq!(map.observe(&sig), 0, "re-observing adds nothing");
        assert_eq!(map.bits_set(), first);

        let mut other = CaseSignature::new();
        other.fold(&trace_of(&[4, 5]));
        assert!(map.observe(&other) > 0, "a new schedule adds bits");
    }
}
