//! Campaigns: systematic sweeps over version pairs × scenarios × workloads,
//! with deduplicated failure reports — the machinery behind Table 5.
//!
//! The engine lives in four layers:
//!
//! - [`matrix`] — describes the sweep as a lazy [`CaseMatrix`] with stable
//!   case indices: cases decode arithmetically from their index, so memory
//!   is O(seed groups) even for million-case sweeps;
//! - [`executor`] — the [`Campaign`] builder/engine: a `std::thread::scope`
//!   worker pool over an atomic work queue of seed groups, snapshot-and-fork
//!   case execution per group, aggregating per-group records by index so
//!   parallel runs report byte-identically to sequential ones;
//! - [`observer`] — the [`CampaignObserver`] callbacks plus the bundled
//!   [`ProgressObserver`] and [`MetricsObserver`];
//! - [`report`] — [`CampaignReport`], [`FailureReport`], and the per-run
//!   [`CampaignMetrics`];
//! - [`coverage`] — trace-derived [`CaseSignature`]s and the accumulated
//!   [`CoverageMap`] that turn the causal trace into a novelty signal;
//! - [`search`] — the coverage-guided [`SearchConfig`]/[`SearchReport`]
//!   driver that mutates schedule-affecting inputs instead of sweeping
//!   seeds blindly.

pub mod coverage;
pub mod executor;
pub mod matrix;
pub mod observer;
pub mod report;
pub mod search;

pub use coverage::{CaseSignature, CoverageMap, SIGNATURE_BITS};
pub use executor::{Campaign, CampaignBuilder, CampaignConfig};
pub use matrix::{CaseMatrix, SeedGroup};
pub use observer::{CampaignObserver, MetricsObserver, NoopObserver, ProgressObserver};
pub use report::{
    dedup_key, CampaignMetrics, CampaignReport, CaseStatus, FailureReport, RenderOptions,
    ScenarioCounts,
};
pub use search::{
    Corpus, CorpusEntry, Detection, MutationOp, SearchConfig, SearchInput, SearchReport,
    SearchRound,
};
