//! Campaigns: systematic sweeps over version pairs × scenarios × workloads,
//! with deduplicated failure reports — the machinery behind Table 5.
//!
//! The engine lives in four layers:
//!
//! - [`matrix`] — materializes the sweep into a [`CaseMatrix`] with stable
//!   case indices;
//! - [`executor`] — the [`Campaign`] builder/engine: a `std::thread::scope`
//!   worker pool over an atomic work queue of seed groups, aggregating by
//!   case index so parallel runs report byte-identically to sequential ones;
//! - [`observer`] — the [`CampaignObserver`] callbacks plus the bundled
//!   [`ProgressObserver`] and [`MetricsObserver`];
//! - [`report`] — [`CampaignReport`], [`FailureReport`], and the per-run
//!   [`CampaignMetrics`].

pub mod executor;
pub mod matrix;
pub mod observer;
pub mod report;

pub use executor::{Campaign, CampaignBuilder, CampaignConfig};
pub use matrix::{CaseMatrix, SeedGroup};
pub use observer::{CampaignObserver, MetricsObserver, NoopObserver, ProgressObserver};
pub use report::{
    dedup_key, CampaignMetrics, CampaignReport, CaseStatus, FailureReport, RenderOptions,
    ScenarioCounts,
};
