//! Campaign outputs: deduplicated failures, the Table-5-style report, and
//! per-run execution metrics.

use crate::faults::FaultIntensity;
use crate::oracle::Observation;
use crate::scenario::Scenario;
use crate::workload::WorkloadSpec;
use dup_core::VersionId;
use dup_simnet::{Durability, TraceSlice};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One deduplicated failure found by a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// System name.
    pub system: String,
    /// Version upgraded from.
    pub from: VersionId,
    /// Version upgraded to.
    pub to: VersionId,
    /// The scenario that first exposed it.
    pub scenario: Scenario,
    /// The workload that first exposed it.
    pub workload: WorkloadSpec,
    /// Seed of the first exposing run.
    pub seed: u64,
    /// Fault intensity of the first exposing run. Together with the
    /// durability and the seed this pins the exact fault plan (a pure
    /// function of all three).
    pub faults: FaultIntensity,
    /// Storage durability mode of the first exposing run.
    pub durability: Durability,
    /// Dedup signature: the sorted, joined signatures of *all* observations
    /// of the first exposing case, so two failures only merge when their
    /// whole evidence sets collapse to the same signatures.
    pub signature: String,
    /// Heuristic root-cause label (Table 5 vocabulary).
    pub cause: &'static str,
    /// The evidence.
    pub observations: Vec<Observation>,
    /// How many (scenario, workload, seed) combinations reproduced it.
    pub reproductions: usize,
    /// Causal trace slice of the first exposing case: the lineage chain
    /// ending at the violating observation plus the trailing event window.
    /// `None` when the campaign ran without tracing.
    pub trace: Option<TraceSlice>,
    /// The rendered rollout plan of the first exposing case, recorded for
    /// extended scenarios (whose plans depend on seed and — under search —
    /// the detecting nudge). `None` for the paper scenarios, whose plans
    /// are pinned by `scenario` + `seed` alone.
    pub plan: Option<String>,
}

impl FailureReport {
    /// One-line repro string: everything needed to re-run the first
    /// exposing case — version pair, scenario, workload, seed, fault
    /// intensity, and durability mode (the concrete fault plan, crash
    /// points included, is derived from intensity + durability + seed, so
    /// quoting them pins the whole plan).
    ///
    /// ```text
    /// repro: 1.0.0->2.0.0 scenario=rolling workload=stress seed=7 faults=heavy durability=torn
    /// ```
    ///
    /// Extended-scenario failures append a `plan=` segment — the rendered
    /// [`RolloutPlan`](crate::RolloutPlan), parseable standalone via
    /// [`RolloutPlan::parse`](crate::RolloutPlan::parse) — so rollback and
    /// multi-hop cases replay without recompiling the plan.
    pub fn repro(&self) -> String {
        let mut out = format!(
            "repro: {}->{} scenario={} workload={} seed={} faults={} durability={}",
            self.from,
            self.to,
            self.scenario,
            self.workload,
            self.seed,
            self.faults,
            self.durability
        );
        if let Some(plan) = &self.plan {
            out.push_str(" plan=");
            out.push_str(plan);
        }
        out
    }

    /// Renders this failure under explicit [`RenderOptions`]. The first line
    /// is always the plain [`Display`](fmt::Display) form; the `repro:` line
    /// and the causal trace timeline compose onto it, each indented three
    /// spaces. Requesting the trace on an untraced failure adds nothing.
    pub fn render(&self, options: RenderOptions) -> String {
        let mut out = format!("{self}\n");
        if options.repro {
            out.push_str(&format!("   {}\n", self.repro()));
        }
        if options.trace {
            if let Some(slice) = &self.trace {
                for line in slice.render_timeline().lines() {
                    out.push_str(&format!("   {line}\n"));
                }
            }
        }
        out
    }
}

/// Which parts of a [`FailureReport`] to render. Compose via the
/// constructors or set fields directly; [`RenderOptions::plain`] matches the
/// `Display` impl exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderOptions {
    /// Include the one-line `repro:` string.
    pub repro: bool,
    /// Include the causal trace timeline, when the failure carries one.
    pub trace: bool,
}

impl RenderOptions {
    /// Just the one-line summary — the `Display` form.
    pub fn plain() -> Self {
        RenderOptions::default()
    }

    /// Summary plus the `repro:` line.
    pub fn with_repro() -> Self {
        RenderOptions {
            repro: true,
            trace: false,
        }
    }

    /// Summary, `repro:` line, and the causal trace timeline.
    pub fn with_trace() -> Self {
        RenderOptions {
            repro: true,
            trace: true,
        }
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} [{} / {}] {}: {}",
            self.system,
            self.from,
            self.to,
            self.scenario,
            self.workload,
            self.cause,
            self.observations
                .first()
                .map(|o| o.to_string())
                .unwrap_or_default()
        )
    }
}

/// The dedup key for a case's evidence: every observation's signature,
/// sorted, deduplicated, and joined. Keying on the full set (rather than the
/// first observation only) keeps two distinct failures whose leading
/// symptoms collide from being silently merged.
pub fn dedup_key(observations: &[Observation]) -> String {
    let mut sigs: Vec<String> = observations.iter().map(|o| o.signature()).collect();
    sigs.sort();
    sigs.dedup();
    sigs.join("|")
}

/// How one enumerated case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaseStatus {
    /// The upgrade went through cleanly.
    Passed,
    /// The oracle collected failure evidence.
    Failed,
    /// The workload could not be set up.
    Invalid,
    /// Skipped by dedup-aware seed pruning (never executed).
    Pruned,
    /// The harness panicked while executing the case; the executor contained
    /// the panic and isolated it into a failure report.
    Panicked,
    /// The case exceeded its event budget and was cut off by the watchdog.
    Hung,
}

impl fmt::Display for CaseStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CaseStatus::Passed => "passed",
            CaseStatus::Failed => "failed",
            CaseStatus::Invalid => "invalid",
            CaseStatus::Pruned => "pruned",
            CaseStatus::Panicked => "panicked",
            CaseStatus::Hung => "hung",
        };
        f.write_str(s)
    }
}

/// Per-scenario outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioCounts {
    /// Cases that passed.
    pub passed: usize,
    /// Cases with failure evidence.
    pub failed: usize,
    /// Cases with invalid workloads.
    pub invalid: usize,
    /// Cases skipped by seed pruning.
    pub pruned: usize,
    /// Cases whose harness execution panicked.
    pub panicked: usize,
    /// Cases cut off by the event-budget watchdog.
    pub hung: usize,
}

impl ScenarioCounts {
    fn bump(&mut self, status: CaseStatus) {
        match status {
            CaseStatus::Passed => self.passed += 1,
            CaseStatus::Failed => self.failed += 1,
            CaseStatus::Invalid => self.invalid += 1,
            CaseStatus::Pruned => self.pruned += 1,
            CaseStatus::Panicked => self.panicked += 1,
            CaseStatus::Hung => self.hung += 1,
        }
    }
}

/// Execution observability for one campaign run: per-case wall-clock,
/// per-scenario outcome counts, and dedup statistics.
///
/// Everything here except the wall-clock durations (and `threads_used`) is a
/// pure function of the campaign configuration, so two runs of the same
/// config agree on every other field regardless of thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignMetrics {
    /// Wall-clock duration of each case, indexed by case index (zero for
    /// pruned cases, which never execute).
    pub case_wall: Vec<Duration>,
    /// Status of each case, indexed by case index.
    pub case_status: Vec<CaseStatus>,
    /// Outcome counts per scenario.
    pub per_scenario: BTreeMap<Scenario, ScenarioCounts>,
    /// Executed cases whose oracle collected failure evidence.
    pub failing_cases: usize,
    /// Distinct (post-dedup) failures.
    pub distinct_failures: usize,
    /// Seeds skipped by dedup-aware pruning.
    pub pruned_seeds: usize,
    /// Worker threads the run used.
    pub threads_used: usize,
    /// Sum of per-case wall-clock (CPU-side work, not elapsed time).
    pub total_case_wall: Duration,
    /// Elapsed wall-clock of the whole campaign.
    pub campaign_wall: Duration,
    /// Trace events recorded across executed cases (0 when tracing is off).
    /// Deterministic in the configuration, like the per-scenario counts.
    pub trace_events_recorded: u64,
    /// Trace events evicted by ring wrap across executed cases.
    pub trace_events_dropped: u64,
}

impl CampaignMetrics {
    /// Records one finished (or pruned) case.
    pub fn record_case(
        &mut self,
        index: usize,
        scenario: Scenario,
        status: CaseStatus,
        wall: Duration,
    ) {
        if self.case_wall.len() <= index {
            self.case_wall.resize(index + 1, Duration::ZERO);
            self.case_status.resize(index + 1, CaseStatus::Pruned);
        }
        self.case_wall[index] = wall;
        self.case_status[index] = status;
        self.per_scenario.entry(scenario).or_default().bump(status);
        match status {
            CaseStatus::Failed | CaseStatus::Panicked | CaseStatus::Hung => self.failing_cases += 1,
            CaseStatus::Pruned => self.pruned_seeds += 1,
            _ => {}
        }
        self.total_case_wall += wall;
    }

    /// Records one distinct (post-dedup) failure.
    pub fn record_distinct_failure(&mut self) {
        self.distinct_failures += 1;
    }

    /// Accumulates one executed case's trace counters (a no-op for the
    /// all-zero counters an untraced case reports).
    pub fn record_trace_counts(&mut self, recorded: u64, dropped: u64) {
        self.trace_events_recorded += recorded;
        self.trace_events_dropped += dropped;
    }

    /// Failing cases that deduplicated onto an already-known failure.
    pub fn dedup_hits(&self) -> usize {
        self.failing_cases.saturating_sub(self.distinct_failures)
    }

    /// Fraction of failing cases that were dedup hits (0.0 when none failed).
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.failing_cases == 0 {
            0.0
        } else {
            self.dedup_hits() as f64 / self.failing_cases as f64
        }
    }

    /// Mean wall-clock of executed (non-pruned) cases.
    pub fn mean_case_wall(&self) -> Duration {
        let executed = self
            .case_status
            .iter()
            .filter(|s| **s != CaseStatus::Pruned)
            .count();
        if executed == 0 {
            Duration::ZERO
        } else {
            self.total_case_wall / executed as u32
        }
    }

    /// The slowest case, as `(index, wall)`.
    pub fn slowest_case(&self) -> Option<(usize, Duration)> {
        self.case_wall
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| **d)
            .map(|(i, d)| (i, *d))
    }

    /// The deterministic slice of the metrics: per-scenario outcome counts,
    /// pruning, and dedup statistics. Identical across thread counts, so
    /// [`CampaignReport::render_table`] can include it and stay
    /// byte-identical between sequential and parallel runs.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for (scenario, c) in &self.per_scenario {
            out.push_str(&format!(
                "   {:<14} {:>4} passed {:>4} failed {:>4} invalid {:>4} pruned {:>4} panicked {:>4} hung\n",
                scenario.to_string(),
                c.passed,
                c.failed,
                c.invalid,
                c.pruned,
                c.panicked,
                c.hung
            ));
        }
        out.push_str(&format!(
            "   dedup: {} failing cases -> {} distinct ({} hits, {:.0}% hit rate); {} seeds pruned\n",
            self.failing_cases,
            self.distinct_failures,
            self.dedup_hits(),
            self.dedup_hit_rate() * 100.0,
            self.pruned_seeds
        ));
        // Only traced campaigns get the trace line, so untraced reports stay
        // byte-identical to what they rendered before tracing existed.
        if self.trace_events_recorded > 0 {
            out.push_str(&format!(
                "   trace: {} events recorded, {} dropped by ring wrap\n",
                self.trace_events_recorded, self.trace_events_dropped
            ));
        }
        out
    }

    /// The timing slice of the metrics (wall-clock varies run to run, so
    /// this is rendered separately from the deterministic report).
    pub fn render_timings(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "   campaign wall-clock {:?} on {} thread(s); case work {:?} total, {:?} mean",
            self.campaign_wall,
            self.threads_used,
            self.total_case_wall,
            self.mean_case_wall()
        ));
        if let Some((idx, wall)) = self.slowest_case() {
            out.push_str(&format!(", slowest case #{idx} at {wall:?}"));
        }
        out.push('\n');
        out
    }
}

/// The full outcome of a campaign over one system.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// System name.
    pub system: String,
    /// Deduplicated failures, in case-index (discovery) order.
    pub failures: Vec<FailureReport>,
    /// Cases actually executed (excludes pruned seeds).
    pub cases_run: usize,
    /// Cases that passed.
    pub cases_passed: usize,
    /// Cases skipped as invalid workloads.
    pub cases_invalid: usize,
    /// Seeds skipped by dedup-aware pruning.
    pub cases_pruned: usize,
    /// Total simulator events processed across executed cases. Deterministic
    /// in the configuration (each case's digest is deterministic in its
    /// seed), so identical across thread counts.
    pub sim_events_processed: u64,
    /// Total simulated messages delivered across executed cases; same
    /// determinism guarantee as [`CampaignReport::sim_events_processed`].
    pub sim_messages_delivered: u64,
    /// Total faults injected across executed cases (message perturbations
    /// plus applied scheduled actions); same determinism guarantee.
    pub sim_faults_injected: u64,
    /// Execution metrics for this run.
    pub metrics: CampaignMetrics,
}

impl CampaignReport {
    /// Failures on the given version pair.
    pub fn failures_on(&self, from: VersionId, to: VersionId) -> Vec<&FailureReport> {
        self.failures
            .iter()
            .filter(|f| f.from == from && f.to == to)
            .collect()
    }

    /// Renders a Table-5-style listing plus the deterministic metrics
    /// summary. Byte-identical for a given configuration regardless of the
    /// thread count the campaign ran with.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:<14} {:<28} {}\n",
            "System", "From", "To", "Scenario", "Workload", "Cause"
        ));
        for f in &self.failures {
            out.push_str(&format!(
                "{:<16} {:>8} {:>8} {:<14} {:<28} {}\n",
                f.system,
                f.from.to_string(),
                f.to.to_string(),
                f.scenario.to_string(),
                f.workload.to_string(),
                f.cause
            ));
            out.push_str(&format!("   {}\n", f.repro()));
            if let Some(slice) = &f.trace {
                for line in slice.render_timeline().lines() {
                    out.push_str(&format!("   {line}\n"));
                }
            }
        }
        out.push_str(&format!(
            "-- {} distinct failures / {} cases ({} passed, {} invalid workloads, {} pruned)\n",
            self.failures.len(),
            self.cases_run,
            self.cases_passed,
            self.cases_invalid,
            self.cases_pruned
        ));
        out.push_str(&format!(
            "   sim totals: {} events, {} messages delivered, {} faults injected\n",
            self.sim_events_processed, self.sim_messages_delivered, self.sim_faults_injected
        ));
        out.push_str(&self.metrics.render_summary());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_table_renders_counts() {
        let report = CampaignReport {
            system: "x".into(),
            failures: vec![],
            cases_run: 10,
            cases_passed: 9,
            cases_invalid: 1,
            cases_pruned: 0,
            sim_events_processed: 1234,
            sim_messages_delivered: 567,
            sim_faults_injected: 89,
            metrics: CampaignMetrics::default(),
        };
        let table = report.render_table();
        assert!(table.contains("0 distinct failures / 10 cases"));
        assert!(
            table.contains("sim totals: 1234 events, 567 messages delivered, 89 faults injected")
        );
    }

    #[test]
    fn repro_string_pins_the_case() {
        let f = FailureReport {
            system: "kvstore".into(),
            from: "1.0.0".parse().unwrap(),
            to: "2.0.0".parse().unwrap(),
            scenario: Scenario::Rolling,
            workload: WorkloadSpec::Stress,
            seed: 7,
            faults: FaultIntensity::Heavy,
            durability: Durability::Torn,
            signature: String::new(),
            cause: "Unclassified",
            observations: vec![],
            reproductions: 1,
            trace: None,
            plan: None,
        };
        assert_eq!(
            f.repro(),
            "repro: 1.0.0->2.0.0 scenario=rolling workload=stress seed=7 faults=heavy durability=torn"
        );
    }

    #[test]
    fn repro_string_appends_the_rollout_plan() {
        let f = FailureReport {
            system: "kvstore".into(),
            from: "1.0.0".parse().unwrap(),
            to: "2.0.0".parse().unwrap(),
            scenario: Scenario::RollbackAfterPartial,
            workload: WorkloadSpec::Stress,
            seed: 7,
            faults: FaultIntensity::Off,
            durability: Durability::Strict,
            signature: String::new(),
            cause: "Unclassified",
            observations: vec![],
            reproductions: 1,
            trace: None,
            plan: Some("[1.0.0>2.0.0]s0,w3600,u0:1,w2000,t0/2".to_string()),
        };
        assert_eq!(
            f.repro(),
            "repro: 1.0.0->2.0.0 scenario=rollback-after-partial workload=stress seed=7 \
             faults=off durability=strict plan=[1.0.0>2.0.0]s0,w3600,u0:1,w2000,t0/2"
        );
    }

    #[test]
    fn render_options_compose_onto_the_plain_line() {
        use dup_simnet::{SimTime, TraceEvent, TraceEventKind};
        let mut f = FailureReport {
            system: "kvstore".into(),
            from: "1.0.0".parse().unwrap(),
            to: "2.0.0".parse().unwrap(),
            scenario: Scenario::Rolling,
            workload: WorkloadSpec::Stress,
            seed: 7,
            faults: FaultIntensity::Heavy,
            durability: Durability::Torn,
            signature: String::new(),
            cause: "Unclassified",
            observations: vec![],
            reproductions: 1,
            trace: None,
            plan: None,
        };
        // Plain render is exactly the Display line.
        assert_eq!(f.render(RenderOptions::plain()), format!("{f}\n"));
        let with_repro = f.render(RenderOptions::with_repro());
        assert!(with_repro.starts_with(&format!("{f}\n")));
        assert!(with_repro.contains("   repro: 1.0.0->2.0.0"));
        // Requesting the trace on an untraced failure changes nothing.
        assert_eq!(f.render(RenderOptions::with_trace()), with_repro);
        f.trace = Some(TraceSlice {
            lineage: vec![TraceEvent {
                id: 1,
                parent: 0,
                time: SimTime::ZERO,
                kind: TraceEventKind::Observation { node: Some(0) },
            }],
            tail: vec![],
            events_recorded: 1,
            events_dropped: 0,
        });
        let traced = f.render(RenderOptions::with_trace());
        assert!(traced.contains("   trace: 1 events recorded"));
        assert!(traced.contains("   lineage (cause -> violation):"));
        assert!(traced.contains("observation node-0"));
    }

    #[test]
    fn metrics_trace_line_appears_only_when_traced() {
        let mut m = CampaignMetrics::default();
        m.record_trace_counts(0, 0);
        assert!(!m.render_summary().contains("trace:"));
        m.record_trace_counts(120, 4);
        m.record_trace_counts(30, 0);
        assert_eq!(m.trace_events_recorded, 150);
        assert_eq!(m.trace_events_dropped, 4);
        assert!(m
            .render_summary()
            .contains("trace: 150 events recorded, 4 dropped by ring wrap"));
    }

    #[test]
    fn dedup_key_uses_all_observations() {
        let crash = |reason: &str| Observation::NodeCrash {
            node: 0,
            version: "1.0.0".into(),
            reason: reason.to_string(),
        };
        // Same leading observation, different second observation: keys differ.
        let a = dedup_key(&[crash("alpha failure"), crash("beta failure")]);
        let b = dedup_key(&[crash("alpha failure"), crash("gamma failure")]);
        assert_ne!(a, b);
        // Order-insensitive and duplicate-insensitive.
        let c = dedup_key(&[
            crash("beta failure"),
            crash("alpha failure"),
            crash("alpha failure"),
        ]);
        assert_eq!(a, c);
    }

    #[test]
    fn metrics_accumulate_and_summarize() {
        let mut m = CampaignMetrics::default();
        m.record_case(
            0,
            Scenario::FullStop,
            CaseStatus::Passed,
            Duration::from_millis(5),
        );
        m.record_case(
            1,
            Scenario::FullStop,
            CaseStatus::Failed,
            Duration::from_millis(7),
        );
        m.record_case(
            2,
            Scenario::Rolling,
            CaseStatus::Failed,
            Duration::from_millis(9),
        );
        m.record_case(3, Scenario::Rolling, CaseStatus::Pruned, Duration::ZERO);
        m.record_distinct_failure();
        assert_eq!(m.failing_cases, 2);
        assert_eq!(m.dedup_hits(), 1);
        assert!((m.dedup_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(m.pruned_seeds, 1);
        assert_eq!(m.per_scenario[&Scenario::FullStop].passed, 1);
        assert_eq!(m.per_scenario[&Scenario::Rolling].pruned, 1);
        assert_eq!(m.slowest_case(), Some((2, Duration::from_millis(9))));
        assert_eq!(m.mean_case_wall(), Duration::from_millis(7));
        let summary = m.render_summary();
        assert!(summary.contains("full-stop"));
        assert!(summary.contains("1 seeds pruned"));
        assert!(m.render_timings().contains("thread"));
    }
}
