//! Campaigns: systematic sweeps over version pairs × scenarios × workloads,
//! with deduplicated failure reports — the machinery behind Table 5.

use crate::harness::{run_case, CaseOutcome, TestCase};
use crate::oracle::Observation;
use crate::scenario::{Scenario, WorkloadSource};
use dup_core::{upgrade_pairs, SystemUnderTest, VersionId};
use std::collections::BTreeMap;
use std::fmt;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds to try per case (Finding 11: ~89% of bugs need only one; the
    /// timing-dependent rest benefit from a few).
    pub seeds: Vec<u64>,
    /// Also test version pairs at distance two (Finding 9's extra 9%).
    pub include_gap_two: bool,
    /// Scenarios to run.
    pub scenarios: Vec<Scenario>,
    /// Include unit-test-derived workloads.
    pub use_unit_tests: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: vec![1, 2, 3],
            include_gap_two: false,
            scenarios: Scenario::ALL.to_vec(),
            use_unit_tests: true,
        }
    }
}

/// One deduplicated failure found by a campaign.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// System name.
    pub system: String,
    /// Version upgraded from.
    pub from: VersionId,
    /// Version upgraded to.
    pub to: VersionId,
    /// The scenario that first exposed it.
    pub scenario: Scenario,
    /// The workload that first exposed it.
    pub workload: WorkloadSource,
    /// Seed of the first exposing run.
    pub seed: u64,
    /// Dedup signature.
    pub signature: String,
    /// Heuristic root-cause label (Table 5 vocabulary).
    pub cause: &'static str,
    /// The evidence.
    pub observations: Vec<Observation>,
    /// How many (scenario, workload, seed) combinations reproduced it.
    pub reproductions: usize,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} [{} / {}] {}: {}",
            self.system,
            self.from,
            self.to,
            self.scenario,
            self.workload,
            self.cause,
            self.observations
                .first()
                .map(|o| o.to_string())
                .unwrap_or_default()
        )
    }
}

/// The full outcome of a campaign over one system.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// System name.
    pub system: String,
    /// Deduplicated failures, in discovery order.
    pub failures: Vec<FailureReport>,
    /// Total cases executed.
    pub cases_run: usize,
    /// Cases that passed.
    pub cases_passed: usize,
    /// Cases skipped as invalid workloads.
    pub cases_invalid: usize,
}

impl CampaignReport {
    /// Failures on the given version pair.
    pub fn failures_on(&self, from: VersionId, to: VersionId) -> Vec<&FailureReport> {
        self.failures
            .iter()
            .filter(|f| f.from == from && f.to == to)
            .collect()
    }

    /// Renders a Table-5-style listing.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>8} {:>8} {:<14} {:<28} {}\n",
            "System", "From", "To", "Scenario", "Workload", "Cause"
        ));
        for f in &self.failures {
            out.push_str(&format!(
                "{:<16} {:>8} {:>8} {:<14} {:<28} {}\n",
                f.system,
                f.from.to_string(),
                f.to.to_string(),
                f.scenario.to_string(),
                f.workload.to_string(),
                f.cause
            ));
        }
        out.push_str(&format!(
            "-- {} distinct failures / {} cases ({} passed, {} invalid workloads)\n",
            self.failures.len(),
            self.cases_run,
            self.cases_passed,
            self.cases_invalid
        ));
        out
    }
}

/// Runs a full campaign over `sut`.
pub fn run_campaign(sut: &dyn SystemUnderTest, config: &CampaignConfig) -> CampaignReport {
    let versions = sut.versions();
    let pairs = upgrade_pairs(&versions, config.include_gap_two);
    let mut report = CampaignReport {
        system: sut.name().to_string(),
        ..Default::default()
    };
    // signature key -> index into report.failures
    let mut seen: BTreeMap<(VersionId, VersionId, String), usize> = BTreeMap::new();

    let mut workloads: Vec<WorkloadSource> = vec![WorkloadSource::Stress];
    if config.use_unit_tests {
        for test in sut.unit_tests() {
            workloads.push(WorkloadSource::TranslatedUnit(test.name.clone()));
            workloads.push(WorkloadSource::UnitStateHandoff(test.name.clone()));
        }
    }

    for (from, to) in pairs {
        for scenario in &config.scenarios {
            for workload in &workloads {
                for &seed in &config.seeds {
                    let case = TestCase {
                        from,
                        to,
                        scenario: *scenario,
                        workload: workload.clone(),
                        seed,
                    };
                    report.cases_run += 1;
                    match run_case(sut, &case) {
                        CaseOutcome::Pass => report.cases_passed += 1,
                        CaseOutcome::InvalidWorkload(_) => report.cases_invalid += 1,
                        CaseOutcome::Fail(observations) => {
                            let signature = observations
                                .first()
                                .map(|o| o.signature())
                                .unwrap_or_default();
                            let key = (from, to, signature.clone());
                            if let Some(&idx) = seen.get(&key) {
                                report.failures[idx].reproductions += 1;
                            } else {
                                let cause = observations
                                    .iter()
                                    .map(|o| o.classify())
                                    .find(|c| *c != "Unclassified")
                                    .unwrap_or("Unclassified");
                                seen.insert(key, report.failures.len());
                                report.failures.push(FailureReport {
                                    system: sut.name().to_string(),
                                    from,
                                    to,
                                    scenario: *scenario,
                                    workload: workload.clone(),
                                    seed,
                                    signature,
                                    cause,
                                    observations,
                                    reproductions: 1,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = CampaignConfig::default();
        assert_eq!(c.scenarios.len(), 3);
        assert!(!c.seeds.is_empty());
        assert!(c.use_unit_tests);
    }

    #[test]
    fn report_table_renders_counts() {
        let report = CampaignReport {
            system: "x".into(),
            failures: vec![],
            cases_run: 10,
            cases_passed: 9,
            cases_invalid: 1,
        };
        let table = report.render_table();
        assert!(table.contains("0 distinct failures / 10 cases"));
    }
}
