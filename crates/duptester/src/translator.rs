//! The unit-test translator (paper §6.1.3).
//!
//! Translates a unit test written against internal APIs into a sequence of
//! client commands, using the system's [`TranslationTable`]. Statements with
//! no translation rule are omitted, **along with every statement that
//! depends on them** — exactly the prototype behaviour the paper describes
//! (and the source of its false negatives, which we reproduce too).

use dup_core::{ClientOp, TranslationTable, UnitTest};
use std::collections::BTreeMap;

/// The result of translating one unit test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// Client commands, in statement order.
    pub ops: Vec<ClientOp>,
    /// Calls that were dropped (no rule, or dependent on a dropped call).
    pub dropped: Vec<String>,
}

impl Translation {
    /// `true` if at least one statement translated.
    pub fn is_usable(&self) -> bool {
        !self.ops.is_empty()
    }
}

/// Translates `test` into client commands addressed to `target_node`.
///
/// Variable references (`$name`) resolve to the *value* of the binding
/// statement, which by convention is its first resolved argument (e.g.
/// `ks1 = createKeyspace("ks1")` has value `"ks1"`).
pub fn translate(test: &UnitTest, table: &TranslationTable, target_node: u32) -> Translation {
    let mut ops = Vec::new();
    let mut dropped = Vec::new();
    // Values of variables bound by successfully translated statements.
    let mut values: BTreeMap<String, String> = BTreeMap::new();

    'stmt: for stmt in &test.statements {
        let Some(template) = table.template(&stmt.call) else {
            dropped.push(stmt.call.clone());
            continue;
        };
        // Resolve arguments; a reference to a dropped binding poisons this
        // statement too.
        let mut resolved = Vec::with_capacity(stmt.args.len());
        for arg in &stmt.args {
            if let Some(var) = arg.strip_prefix('$') {
                match values.get(var) {
                    Some(v) => resolved.push(v.clone()),
                    None => {
                        dropped.push(stmt.call.clone());
                        continue 'stmt;
                    }
                }
            } else {
                resolved.push(arg.clone());
            }
        }
        let mut command = template.to_string();
        for (i, value) in resolved.iter().enumerate() {
            command = command.replace(&format!("{{{i}}}"), value);
        }
        ops.push(ClientOp::new(target_node, command));
        if let Some(var) = &stmt.var {
            let value = resolved
                .first()
                .cloned()
                .unwrap_or_else(|| stmt.call.clone());
            values.insert(var.clone(), value);
        }
    }
    Translation { ops, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_core::UnitStatement;

    fn table() -> TranslationTable {
        TranslationTable::new()
            .rule("createKeyspace", "CREATE_KS {0}")
            .rule("createTable", "CREATE_TABLE {0}.{1}")
            .rule("dropKeyspace", "DROP_KS {0}")
    }

    #[test]
    fn translates_straight_line_tests() {
        let test = UnitTest::new(
            "t",
            vec![
                UnitStatement::bind("ks", "createKeyspace", &["ks1"]),
                UnitStatement::call("createTable", &["$ks", "t1"]),
            ],
        );
        let tr = translate(&test, &table(), 0);
        assert!(tr.is_usable());
        assert_eq!(tr.ops[0].command, "CREATE_KS ks1");
        assert_eq!(tr.ops[1].command, "CREATE_TABLE ks1.t1");
        assert!(tr.dropped.is_empty());
    }

    #[test]
    fn drops_untranslatable_statements_and_their_dependents() {
        // Mirrors testCachedPreparedStatements: prepareInternal has no rule;
        // executePrepared depends on its binding and is dropped too — but
        // the later dropKeyspace survives.
        let test = UnitTest::new(
            "t",
            vec![
                UnitStatement::bind("ks2", "createKeyspace", &["ks2"]),
                UnitStatement::bind("stmt", "prepareInternal", &["SELECT"]),
                UnitStatement::call("executePrepared", &["$stmt"]),
                UnitStatement::call("dropKeyspace", &["$ks2"]),
            ],
        );
        let table = table().rule("executePrepared", "EXEC {0}");
        let tr = translate(&test, &table, 2);
        assert_eq!(
            tr.dropped,
            vec!["prepareInternal".to_string(), "executePrepared".to_string()]
        );
        assert_eq!(tr.ops.len(), 2);
        assert_eq!(tr.ops[1].command, "DROP_KS ks2");
        assert_eq!(tr.ops[1].node, 2);
    }

    #[test]
    fn transitive_dependencies_are_dropped() {
        let test = UnitTest::new(
            "t",
            vec![
                UnitStatement::bind("a", "noRule", &["x"]),
                UnitStatement::bind("b", "createKeyspace", &["$a"]),
                UnitStatement::call("createTable", &["$b", "t"]),
            ],
        );
        let tr = translate(&test, &table(), 0);
        assert!(!tr.is_usable());
        assert_eq!(tr.dropped.len(), 3);
    }

    #[test]
    fn empty_test_is_unusable() {
        let tr = translate(&UnitTest::new("t", vec![]), &table(), 0);
        assert!(!tr.is_usable());
    }

    #[test]
    fn multi_placeholder_templates() {
        let table = TranslationTable::new().rule("put", "PUT {0}.{1} {2} {3}");
        let test = UnitTest::new(
            "t",
            vec![UnitStatement::call("put", &["ks", "cf", "k", "v"])],
        );
        let tr = translate(&test, &table, 1);
        assert_eq!(tr.ops[0].command, "PUT ks.cf k v");
    }
}
