//! Upgrade scenarios and workload sources (paper §6.1.1–§6.1.2).

use std::fmt;
use std::sync::Arc;

/// The three upgrade scenarios DUPTester tests systematically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scenario {
    /// Old cluster runs the workload, shuts down gracefully, restarts with
    /// every node on the new version.
    FullStop,
    /// Nodes take turns going down and coming back on the new version while
    /// the workload keeps running.
    Rolling,
    /// Nodes running the new version join a cluster of old-version nodes
    /// while the workload runs.
    NewNodeJoin,
}

impl Scenario {
    /// All three scenarios, in the order the paper lists them.
    pub const ALL: [Scenario; 3] = [Scenario::FullStop, Scenario::Rolling, Scenario::NewNodeJoin];
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scenario::FullStop => "full-stop",
            Scenario::Rolling => "rolling",
            Scenario::NewNodeJoin => "new-node-join",
        };
        f.write_str(s)
    }
}

/// Where the testing workload comes from (§6.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadSource {
    /// The system's stress-testing operations with default configuration.
    Stress,
    /// A unit test translated into client commands by the translator
    /// (§6.1.3); the string is the unit-test name. The name is interned as
    /// an `Arc<str>` so the million-plus [`TestCase`]s a lazy campaign
    /// matrix materializes share one allocation per unit test instead of
    /// cloning the `String` per case.
    ///
    /// [`TestCase`]: crate::harness::TestCase
    TranslatedUnit(Arc<str>),
    /// A unit test executed in place against the old version's storage; the
    /// cluster then starts from the persistent state it left (§6.1.2,
    /// second scheme). Interned like [`WorkloadSource::TranslatedUnit`].
    UnitStateHandoff(Arc<str>),
}

impl fmt::Display for WorkloadSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSource::Stress => write!(f, "stress"),
            WorkloadSource::TranslatedUnit(name) => write!(f, "unit:{name}"),
            WorkloadSource::UnitStateHandoff(name) => write!(f, "state:{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_labels() {
        assert_eq!(Scenario::FullStop.to_string(), "full-stop");
        assert_eq!(Scenario::Rolling.to_string(), "rolling");
        assert_eq!(Scenario::NewNodeJoin.to_string(), "new-node-join");
        assert_eq!(WorkloadSource::Stress.to_string(), "stress");
        assert_eq!(
            WorkloadSource::TranslatedUnit("t".into()).to_string(),
            "unit:t"
        );
        assert_eq!(
            WorkloadSource::UnitStateHandoff("t".into()).to_string(),
            "state:t"
        );
        assert_eq!(Scenario::ALL.len(), 3);
    }
}
