//! Upgrade scenarios (paper §6.1.1). Workload sources live in
//! [`workload`](crate::workload) as [`WorkloadSpec`](crate::WorkloadSpec).

use std::fmt;

/// The upgrade scenarios DUPTester tests systematically: the paper's three
/// ([`Scenario::paper`]) plus four rollout-plan scenarios
/// ([`Scenario::extended`]) covering the failure classes the paper's
/// taxonomy names but its driver cannot reach — rollback over new-format
/// durable state, multi-hop version jumps, canary gating, and membership
/// churn mid-rollout.
///
/// Every scenario — old and new — compiles to an explicit
/// [`RolloutPlan`](crate::RolloutPlan) before it runs; the variants differ
/// only in the plan they compile to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scenario {
    /// Old cluster runs the workload, shuts down gracefully, restarts with
    /// every node on the new version.
    FullStop,
    /// Nodes take turns going down and coming back on the new version while
    /// the workload keeps running.
    Rolling,
    /// Nodes running the new version join a cluster of old-version nodes
    /// while the workload runs.
    NewNodeJoin,
    /// Upgrade `k` of `n` nodes (seed-chosen `k`), run traffic so
    /// new-version state lands on disk, then downgrade them — the
    /// CASSANDRA-13441-shaped rollback family where old code must read
    /// durable state a newer version wrote.
    RollbackAfterPartial,
    /// A → B → C across three catalog versions, rolling at each hop with
    /// traffic between hops. Requires a catalog release strictly between
    /// the pair's versions; without one it degenerates to a single hop.
    MultiHop,
    /// One seed-chosen canary node upgrades first; a health-probe gate
    /// decides whether the rest of the fleet follows or the rollout stops.
    CanaryThenFleet,
    /// A rolling upgrade interleaved with membership churn: an old-version
    /// node joins early in the rollout and leaves near its end.
    RollingWithChurn,
}

impl Scenario {
    /// The paper's three scenarios, in the order the paper lists them.
    /// Campaigns default to these; [`Scenario::extended`] is opt-in via the
    /// builder.
    pub const fn paper() -> [Scenario; 3] {
        [Scenario::FullStop, Scenario::Rolling, Scenario::NewNodeJoin]
    }

    /// All seven scenarios, paper-first.
    pub const fn extended() -> [Scenario; 7] {
        [
            Scenario::FullStop,
            Scenario::Rolling,
            Scenario::NewNodeJoin,
            Scenario::RollbackAfterPartial,
            Scenario::MultiHop,
            Scenario::CanaryThenFleet,
            Scenario::RollingWithChurn,
        ]
    }

    /// `true` for the rollout-plan scenarios beyond the paper's three.
    /// Extended scenarios carry a mutable schedule even with faults off, so
    /// the coverage-guided search runs its mutation rounds for them.
    pub const fn is_extended(&self) -> bool {
        !matches!(
            self,
            Scenario::FullStop | Scenario::Rolling | Scenario::NewNodeJoin
        )
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scenario::FullStop => "full-stop",
            Scenario::Rolling => "rolling",
            Scenario::NewNodeJoin => "new-node-join",
            Scenario::RollbackAfterPartial => "rollback-after-partial",
            Scenario::MultiHop => "multi-hop",
            Scenario::CanaryThenFleet => "canary-then-fleet",
            Scenario::RollingWithChurn => "rolling-with-churn",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_labels() {
        assert_eq!(Scenario::FullStop.to_string(), "full-stop");
        assert_eq!(Scenario::Rolling.to_string(), "rolling");
        assert_eq!(Scenario::NewNodeJoin.to_string(), "new-node-join");
        assert_eq!(
            Scenario::RollbackAfterPartial.to_string(),
            "rollback-after-partial"
        );
        assert_eq!(Scenario::MultiHop.to_string(), "multi-hop");
        assert_eq!(Scenario::CanaryThenFleet.to_string(), "canary-then-fleet");
        assert_eq!(Scenario::RollingWithChurn.to_string(), "rolling-with-churn");
        assert_eq!(Scenario::paper().len(), 3);
        assert_eq!(Scenario::extended().len(), 7);
    }

    #[test]
    fn paper_prefixes_extended_and_extends_the_split() {
        assert_eq!(Scenario::extended()[..3], Scenario::paper());
        for s in Scenario::paper() {
            assert!(!s.is_extended(), "{s} is a paper scenario");
        }
        for s in &Scenario::extended()[3..] {
            assert!(s.is_extended(), "{s} is an extended scenario");
        }
    }
}
