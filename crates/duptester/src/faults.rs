//! The fault-intensity axis of the campaign matrix.
//!
//! A [`FaultIntensity`] is the campaign-level knob; [`fault_plan_for`]
//! expands it (together with the storage [`Durability`] axis) into a
//! concrete [`FaultPlan`] as a *pure function* of
//! `(intensity, durability, seed, cluster size, base time)`. That purity is
//! the repro
//! contract: a failure report only needs to quote the intensity, the
//! durability, and the seed for anyone to rebuild the exact plan — drops,
//! partition windows, crash times, crash points and all — and replay the
//! run byte-for-byte.

use dup_simnet::{CrashPointKind, Durability, FaultKind, FaultPlan, SimDuration, SimRng, SimTime};
use std::fmt;

/// Stream id (under the case seed) for deriving a case's fault plan. Distinct
/// from every node stream and the network stream, so turning faults on never
/// perturbs the rest of the simulation's randomness.
const PLAN_STREAM: u64 = 0xFA17;

/// How much injected adversity a case runs under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultIntensity {
    /// No injected faults (the default; matches pre-fault-axis behaviour).
    #[default]
    Off,
    /// Mild chaos: a few percent of messages perturbed, one partition
    /// window, one crash-and-restart.
    Light,
    /// Heavy chaos: most perturbation probabilities doubled or more, two
    /// partition windows, two crash-and-restarts.
    Heavy,
}

impl FaultIntensity {
    /// All intensities, mildest first.
    pub const ALL: [FaultIntensity; 3] = [
        FaultIntensity::Off,
        FaultIntensity::Light,
        FaultIntensity::Heavy,
    ];
}

impl fmt::Display for FaultIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultIntensity::Off => "off",
            FaultIntensity::Light => "light",
            FaultIntensity::Heavy => "heavy",
        };
        f.write_str(s)
    }
}

/// Expands `(intensity, durability, seed, nodes)` into a concrete
/// [`FaultPlan`], or `None` when there is nothing to inject — i.e. for
/// [`FaultIntensity::Off`] under [`Durability::Strict`] (or an empty
/// cluster).
///
/// Deterministic: the same arguments always yield the same plan — same
/// probabilities, same partition windows, same crash/restart times, same
/// crash points. Crash and partition targets are drawn from `0..nodes` (the
/// booted cluster; a scenario's late joiner is never a target). Action times
/// land inside the harness's workload-plus-quiesce span so the adversity
/// overlaps the upgrade window, and every partition is healed and every
/// crash restarted well before the post-upgrade verification ops.
///
/// `base` shifts every scheduled action time and crash-point window by a
/// fixed offset without touching any random draw. The snapshot-and-fork
/// harness installs plans at the start of a case's seed-dependent *suffix*
/// (after the shared warmup prefix) rather than at boot, so it passes the
/// install time as `base` to keep the adversity aimed at the upgrade
/// window. `SimTime::ZERO` reproduces the boot-anchored plan byte-for-byte.
///
/// Under a non-strict durability the plan additionally carries the
/// durability mode plus two state-triggered [`dup_simnet::CrashPoint`]s: one
/// that turns a graceful upgrade stop into a crash (mid-upgrade), and one
/// that kills a node between a write and its flush (unflushed-write). Their
/// draws come *after* every intensity draw, so adding the durability axis
/// never shifts an existing plan's randomness.
pub fn fault_plan_for(
    intensity: FaultIntensity,
    durability: Durability,
    seed: u64,
    nodes: u32,
    base: SimTime,
) -> Option<FaultPlan> {
    if (intensity == FaultIntensity::Off && durability == Durability::Strict) || nodes == 0 {
        return None;
    }
    let mut rng = SimRng::new(seed).split(PLAN_STREAM);
    let mut plan = FaultPlan::new(rng.next_u64());
    let (partition_windows, crashes) = match intensity {
        FaultIntensity::Off => (0, 0),
        FaultIntensity::Light => {
            plan.drop_probability = 0.02;
            plan.duplicate_probability = 0.02;
            plan.delay_probability = 0.02;
            plan.max_delay_spike = SimDuration::from_millis(200);
            plan.reorder_probability = 0.05;
            plan.max_reorder_shift = SimDuration::from_millis(20);
            (1, 1)
        }
        FaultIntensity::Heavy => {
            plan.drop_probability = 0.06;
            plan.duplicate_probability = 0.05;
            plan.delay_probability = 0.05;
            plan.max_delay_spike = SimDuration::from_millis(800);
            plan.reorder_probability = 0.10;
            plan.max_reorder_shift = SimDuration::from_millis(40);
            (2, 2)
        }
    };
    for _ in 0..partition_windows {
        if nodes < 2 {
            break;
        }
        let a = rng.next_below(u64::from(nodes)) as u32;
        let b_raw = rng.next_below(u64::from(nodes) - 1) as u32;
        let b = if b_raw >= a { b_raw + 1 } else { b_raw };
        let at = base + SimDuration::from_millis(rng.next_range(3_000, 50_000));
        let heal_after = SimDuration::from_millis(rng.next_range(2_000, 8_000));
        plan = plan
            .schedule(at, FaultKind::Partition(a, b))
            .schedule(at + heal_after, FaultKind::Heal(a, b));
    }
    for _ in 0..crashes {
        let victim = rng.next_below(u64::from(nodes)) as u32;
        let at = base + SimDuration::from_millis(rng.next_range(3_000, 50_000));
        let back_after = SimDuration::from_millis(rng.next_range(1_000, 4_000));
        plan = plan
            .schedule(at, FaultKind::Crash(victim))
            .schedule(at + back_after, FaultKind::Restart(victim));
    }
    // Durability draws come last so the axis composes with (rather than
    // perturbs) the intensity draws above.
    if durability != Durability::Strict {
        plan.durability = durability;
        let mid_victim = rng.next_below(u64::from(nodes)) as u32;
        plan = plan.crash_point(
            mid_victim,
            CrashPointKind::MidUpgrade,
            base,
            base + SimDuration::from_millis(120_000),
        );
        let wal_victim = rng.next_below(u64::from(nodes)) as u32;
        let after = rng.next_range(3_000, 50_000);
        plan = plan.crash_point(
            wal_victim,
            CrashPointKind::UnflushedWrite,
            base + SimDuration::from_millis(after),
            base + SimDuration::from_millis(after + 8_000),
        );
    }
    Some(plan)
}

/// Largest magnitude (in milliseconds) a [`PlanNudge`] may shift scheduled
/// fault times or crash-point windows by. Mutation operators draw shifts
/// from `[-MAX_NUDGE_SHIFT_MS, MAX_NUDGE_SHIFT_MS]`.
pub const MAX_NUDGE_SHIFT_MS: u64 = 20_000;

/// The span after a plan's `base` install time inside which every nudged
/// action and crash-point window is clamped. Matches the widest window
/// [`fault_plan_for`] itself uses (the mid-upgrade crash-point window), so a
/// nudged plan never aims adversity past the harness's verification phase.
pub const PLAN_WINDOW_MS: u64 = 120_000;

/// A deterministic perturbation of a case's fault plan — the unit the
/// coverage-guided search mutates instead of drawing fresh seeds.
///
/// A nudge never touches the case seed, so the workload, cluster, and every
/// non-fault random stream replay identically; only *when* the scheduled
/// adversity lands and *which* messages the per-message fate stream picks
/// on change. Applied via [`apply_nudge`], itself a pure function, which
/// keeps the repro contract: `(intensity, durability, seed, nudge)` rebuilds
/// the exact perturbed plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanNudge {
    /// Signed shift, in milliseconds, applied uniformly to every scheduled
    /// partition/heal/crash/restart time.
    pub action_shift_ms: i64,
    /// Signed shift, in milliseconds, applied uniformly to both edges of
    /// every state-triggered crash-point window.
    pub crash_shift_ms: i64,
    /// XOR salt folded into the plan's fate-stream seed: re-rolls which
    /// messages get dropped/duplicated/delayed/reordered without changing
    /// the probabilities.
    pub fate_salt: u64,
    /// Signed shift, in milliseconds, applied to every settle step of the
    /// case's compiled [`RolloutPlan`](crate::RolloutPlan), bounded by
    /// [`MAX_SETTLE_SHIFT_MS`](crate::MAX_SETTLE_SHIFT_MS). Ignored by
    /// [`apply_nudge`] — the rollout plan consumes it via
    /// [`RolloutPlan::nudge`](crate::RolloutPlan::nudge).
    pub settle_shift_ms: i64,
    /// Selects one validity-preserving adjacent step swap in the case's
    /// compiled rollout plan (`0` = no swap). Like `settle_shift_ms`,
    /// consumed by the rollout plan, not by [`apply_nudge`].
    pub step_swap_salt: u64,
    /// Signed shift, in milliseconds, applied to every burst segment of the
    /// case's compiled [`WorkloadPlan`](crate::WorkloadPlan), clamped to a
    /// quarter burst slot so segments stay disjoint. Ignored by
    /// [`apply_nudge`] — the workload plan consumes it via
    /// [`WorkloadPlan::nudge`](crate::WorkloadPlan::nudge).
    pub burst_shift_ms: i64,
    /// XOR salt folded into the workload plan's rank→key permutation:
    /// re-ranks *which* keys are hot without changing the Zipf profile.
    /// Consumed by the workload plan, not by [`apply_nudge`].
    pub key_rank_salt: u64,
    /// XOR salt folded into the workload plan's index→client hash: moves
    /// which logical clients issue which arrivals without changing arrival
    /// timing or keys. Consumed by the workload plan, not by
    /// [`apply_nudge`].
    pub arrival_churn_salt: u64,
}

impl PlanNudge {
    /// True when applying this nudge would return the fault plan, the
    /// rollout plan, *and* the workload plan unchanged.
    pub fn is_noop(&self) -> bool {
        self.action_shift_ms == 0
            && self.crash_shift_ms == 0
            && self.fate_salt == 0
            && self.settle_shift_ms == 0
            && self.step_swap_salt == 0
            && self.burst_shift_ms == 0
            && self.key_rank_salt == 0
            && self.arrival_churn_salt == 0
    }
}

/// Applies a [`PlanNudge`] to a plan installed at `base`, returning the
/// perturbed plan.
///
/// Pure: same `(plan, nudge, base)` always yields the same result. Scheduled
/// action times shift uniformly by `action_shift_ms` and clamp into
/// `[base, base + PLAN_WINDOW_MS]`; crash-point windows shift by
/// `crash_shift_ms` under the same clamp. Because the shift is uniform and
/// the clamp is monotone, relative ordering is preserved — a heal never
/// moves before its partition, a restart never before its crash, and
/// `after <= not_after` still holds for every crash point. A non-zero
/// `fate_salt` reseeds only the per-message fate stream.
pub fn apply_nudge(plan: &FaultPlan, nudge: &PlanNudge, base: SimTime) -> FaultPlan {
    let mut out = FaultPlan::new(plan.seed() ^ nudge.fate_salt);
    out.drop_probability = plan.drop_probability;
    out.duplicate_probability = plan.duplicate_probability;
    out.delay_probability = plan.delay_probability;
    out.max_delay_spike = plan.max_delay_spike;
    out.reorder_probability = plan.reorder_probability;
    out.max_reorder_shift = plan.max_reorder_shift;
    out.durability = plan.durability;
    out.crash_point_restart = plan.crash_point_restart;
    let clamp = |ms: u64, shift: i64| -> SimTime {
        let lo = i128::from(base.as_millis());
        let hi = lo + i128::from(PLAN_WINDOW_MS);
        let shifted = i128::from(ms) + i128::from(shift);
        SimTime::from_millis(shifted.clamp(lo, hi) as u64)
    };
    for action in plan.actions() {
        out = out.schedule(
            clamp(action.at.as_millis(), nudge.action_shift_ms),
            action.kind,
        );
    }
    for point in plan.crash_points() {
        out = out.crash_point(
            point.node,
            point.kind,
            clamp(point.after.as_millis(), nudge.crash_shift_ms),
            clamp(point.not_after.as_millis(), nudge.crash_shift_ms),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_means_no_plan() {
        assert!(
            fault_plan_for(FaultIntensity::Off, Durability::Strict, 1, 3, SimTime::ZERO).is_none()
        );
        assert!(fault_plan_for(
            FaultIntensity::Heavy,
            Durability::Strict,
            1,
            0,
            SimTime::ZERO
        )
        .is_none());
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        for intensity in [FaultIntensity::Light, FaultIntensity::Heavy] {
            let a = fault_plan_for(intensity, Durability::Strict, 7, 3, SimTime::ZERO).unwrap();
            let b = fault_plan_for(intensity, Durability::Strict, 7, 3, SimTime::ZERO).unwrap();
            assert_eq!(a.seed(), b.seed());
            assert_eq!(a.actions(), b.actions());
            assert_eq!(a.describe(), b.describe());
        }
        let a = fault_plan_for(
            FaultIntensity::Heavy,
            Durability::Strict,
            7,
            3,
            SimTime::ZERO,
        )
        .unwrap();
        let b = fault_plan_for(
            FaultIntensity::Heavy,
            Durability::Strict,
            8,
            3,
            SimTime::ZERO,
        )
        .unwrap();
        assert_ne!(
            (a.seed(), a.actions().to_vec()),
            (b.seed(), b.actions().to_vec()),
            "different seeds must yield different plans"
        );
    }

    #[test]
    fn heavy_outpaces_light() {
        let light = fault_plan_for(
            FaultIntensity::Light,
            Durability::Strict,
            3,
            3,
            SimTime::ZERO,
        )
        .unwrap();
        let heavy = fault_plan_for(
            FaultIntensity::Heavy,
            Durability::Strict,
            3,
            3,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(heavy.drop_probability > light.drop_probability);
        assert!(heavy.actions().len() > light.actions().len());
        assert!(!light.is_noop());
    }

    #[test]
    fn targets_stay_inside_the_cluster_and_pairs_are_distinct() {
        for seed in 0..50 {
            let plan = fault_plan_for(
                FaultIntensity::Heavy,
                Durability::Strict,
                seed,
                3,
                SimTime::ZERO,
            )
            .unwrap();
            for action in plan.actions() {
                match action.kind {
                    FaultKind::Partition(a, b) | FaultKind::Heal(a, b) => {
                        assert!(a < 3 && b < 3, "{:?}", action.kind);
                        assert_ne!(a, b, "self-partition in {:?}", action.kind);
                    }
                    FaultKind::Crash(n) | FaultKind::Restart(n) => assert!(n < 3),
                    FaultKind::HealAll => {}
                }
                assert!(action.at.as_millis() <= 58_000);
            }
        }
    }

    #[test]
    fn single_node_cluster_gets_no_partitions() {
        let plan = fault_plan_for(
            FaultIntensity::Heavy,
            Durability::Strict,
            5,
            1,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(plan
            .actions()
            .iter()
            .all(|a| matches!(a.kind, FaultKind::Crash(0) | FaultKind::Restart(0))));
    }

    #[test]
    fn base_offset_shifts_times_without_touching_draws() {
        let base = SimTime::from_millis(12_345);
        for (intensity, durability) in [
            (FaultIntensity::Light, Durability::Strict),
            (FaultIntensity::Heavy, Durability::Torn),
        ] {
            let zero = fault_plan_for(intensity, durability, 7, 3, SimTime::ZERO).unwrap();
            let shifted = fault_plan_for(intensity, durability, 7, 3, base).unwrap();
            assert_eq!(zero.seed(), shifted.seed());
            assert_eq!(zero.actions().len(), shifted.actions().len());
            for (z, s) in zero.actions().iter().zip(shifted.actions()) {
                assert_eq!(z.kind, s.kind, "base must not change any draw");
                assert_eq!(s.at.as_millis(), z.at.as_millis() + base.as_millis());
            }
            for (z, s) in zero.crash_points().iter().zip(shifted.crash_points()) {
                assert_eq!((z.node, z.kind), (s.node, s.kind));
                assert_eq!(s.after.as_millis(), z.after.as_millis() + base.as_millis());
                assert_eq!(
                    s.not_after.as_millis(),
                    z.not_after.as_millis() + base.as_millis()
                );
            }
        }
    }

    #[test]
    fn intensity_labels() {
        assert_eq!(FaultIntensity::Off.to_string(), "off");
        assert_eq!(FaultIntensity::Light.to_string(), "light");
        assert_eq!(FaultIntensity::Heavy.to_string(), "heavy");
        assert_eq!(FaultIntensity::default(), FaultIntensity::Off);
        assert_eq!(FaultIntensity::ALL.len(), 3);
    }

    #[test]
    fn durability_axis_rides_along_without_shifting_intensity_draws() {
        for intensity in [FaultIntensity::Light, FaultIntensity::Heavy] {
            let strict =
                fault_plan_for(intensity, Durability::Strict, 7, 3, SimTime::ZERO).unwrap();
            let torn = fault_plan_for(intensity, Durability::Torn, 7, 3, SimTime::ZERO).unwrap();
            // Same seed and identical scheduled actions: the durability
            // draws come after every intensity draw.
            assert_eq!(strict.seed(), torn.seed());
            assert_eq!(strict.actions(), torn.actions());
            assert_eq!(strict.crash_points().len(), 0);
            assert_eq!(torn.crash_points().len(), 2);
            assert_eq!(torn.durability, Durability::Torn);
        }
    }

    #[test]
    fn durability_alone_yields_a_plan_with_crash_points() {
        let plan = fault_plan_for(
            FaultIntensity::Off,
            Durability::Buffered,
            9,
            3,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(plan.actions().is_empty());
        assert!(!plan.is_noop());
        assert_eq!(plan.durability, Durability::Buffered);
        let kinds: Vec<_> = plan.crash_points().iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![CrashPointKind::MidUpgrade, CrashPointKind::UnflushedWrite]
        );
        for point in plan.crash_points() {
            assert!(point.node < 3);
            assert!(point.after <= point.not_after);
            assert!(point.not_after.as_millis() <= 120_000);
        }
        // Still a pure function of its inputs.
        let again = fault_plan_for(
            FaultIntensity::Off,
            Durability::Buffered,
            9,
            3,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(plan.crash_points(), again.crash_points());
        assert!(
            fault_plan_for(FaultIntensity::Off, Durability::Strict, 9, 3, SimTime::ZERO).is_none()
        );
    }

    #[test]
    fn noop_nudge_reproduces_the_plan_byte_for_byte() {
        let base = SimTime::from_millis(5_000);
        let plan = fault_plan_for(FaultIntensity::Heavy, Durability::Torn, 7, 3, base).unwrap();
        let nudged = apply_nudge(&plan, &PlanNudge::default(), base);
        assert!(PlanNudge::default().is_noop());
        assert_eq!(plan.seed(), nudged.seed());
        assert_eq!(plan.actions(), nudged.actions());
        assert_eq!(plan.crash_points(), nudged.crash_points());
        assert_eq!(plan.describe(), nudged.describe());
    }

    #[test]
    fn nudged_times_stay_in_window_and_preserve_order() {
        let base = SimTime::from_millis(2_000);
        let plan = fault_plan_for(FaultIntensity::Heavy, Durability::Torn, 11, 3, base).unwrap();
        for shift in [
            -(MAX_NUDGE_SHIFT_MS as i64),
            -7,
            13,
            MAX_NUDGE_SHIFT_MS as i64,
        ] {
            let nudge = PlanNudge {
                action_shift_ms: shift,
                crash_shift_ms: -shift,
                ..PlanNudge::default()
            };
            let nudged = apply_nudge(&plan, &nudge, base);
            let lo = base.as_millis();
            let hi = lo + PLAN_WINDOW_MS;
            for (orig, moved) in plan.actions().iter().zip(nudged.actions()) {
                assert_eq!(orig.kind, moved.kind, "nudges never change targets");
                assert!((lo..=hi).contains(&moved.at.as_millis()));
            }
            // Uniform shift + monotone clamp: every originally-ordered pair
            // of actions stays ordered (heals after partitions, restarts
            // after crashes).
            for i in 0..plan.actions().len() {
                for j in 0..plan.actions().len() {
                    if plan.actions()[i].at <= plan.actions()[j].at {
                        assert!(nudged.actions()[i].at <= nudged.actions()[j].at);
                    }
                }
            }
            for point in nudged.crash_points() {
                assert!(point.after <= point.not_after);
                assert!((lo..=hi).contains(&point.after.as_millis()));
                assert!((lo..=hi).contains(&point.not_after.as_millis()));
            }
        }
    }

    #[test]
    fn fate_salt_reseeds_without_moving_anything() {
        let base = SimTime::ZERO;
        let plan = fault_plan_for(FaultIntensity::Light, Durability::Strict, 3, 3, base).unwrap();
        let nudge = PlanNudge {
            fate_salt: 0xDEAD_BEEF,
            ..PlanNudge::default()
        };
        let nudged = apply_nudge(&plan, &nudge, base);
        assert_eq!(nudged.seed(), plan.seed() ^ 0xDEAD_BEEF);
        assert_eq!(plan.actions(), nudged.actions());
        assert_eq!(plan.drop_probability, nudged.drop_probability);
    }
}
