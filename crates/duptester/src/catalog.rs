//! The ground-truth catalog of seeded upgrade bugs, used to measure
//! DUPTester's recall (the analog of the paper's §6.1.4 false-negative
//! experiment, where DUPTester reproduced 5 of 15 sampled study failures).

use crate::Scenario;
use dup_core::VersionId;

/// One seeded bug: where it lives and how to recognize it in the evidence.
#[derive(Debug, Clone)]
pub struct SeededBug {
    /// The studied ticket this bug re-implements.
    pub ticket: &'static str,
    /// System name (matches `SystemUnderTest::name()`).
    pub system: &'static str,
    /// Version upgraded from.
    pub from: &'static str,
    /// Version upgraded to.
    pub to: &'static str,
    /// A substring that appears in the failure evidence when caught.
    pub marker: &'static str,
    /// Whether the trigger needs timing luck (Finding 11's ~11%).
    pub timing_dependent: bool,
    /// The extended rollout-plan scenario required to reach the bug, or
    /// `None` when the paper's three scenarios suffice. Recall suites use
    /// this to decide which scenario sweep each bug belongs to.
    pub scenario: Option<Scenario>,
}

impl SeededBug {
    /// Parsed `from` version.
    pub fn from_version(&self) -> VersionId {
        self.from.parse().expect("static version strings parse")
    }

    /// Parsed `to` version.
    pub fn to_version(&self) -> VersionId {
        self.to.parse().expect("static version strings parse")
    }
}

/// Every bug seeded in the four mini systems.
pub fn seeded_bugs() -> Vec<SeededBug> {
    vec![
        SeededBug {
            ticket: "CASSANDRA-4195",
            system: "cassandra-mini",
            from: "1.1.0",
            to: "1.2.0",
            marker: "cannot deserialize gossip ApplicationState",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "CASSANDRA-6678",
            system: "cassandra-mini",
            from: "1.2.0",
            to: "2.0.0",
            marker: "cannot apply schema migrated from",
            timing_dependent: true,
            scenario: None,
        },
        SeededBug {
            ticket: "CASSANDRA-16257 (shape)",
            system: "cassandra-mini",
            from: "2.0.0",
            to: "2.1.0",
            marker: "corrupt sstable row",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "CASSANDRA-13441",
            system: "cassandra-mini",
            from: "3.0.0",
            to: "3.11.0",
            marker: "message storm",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "CASSANDRA-16292 (shape)",
            system: "cassandra-mini",
            from: "3.0.0",
            to: "3.11.0",
            marker: "tombstone for dropped keyspace",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "CASSANDRA-15794",
            system: "cassandra-mini",
            from: "3.11.0",
            to: "4.0.0",
            marker: "Compact Tables are not allowed",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "CASSANDRA-16301",
            system: "cassandra-mini",
            from: "3.11.0",
            to: "4.0.0",
            marker: "unable to find replication strategy class",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "HDFS-1936",
            system: "hdfs-mini",
            from: "0.20.0",
            to: "1.0.0",
            marker: "must be compressed",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "HDFS-5988",
            system: "hdfs-mini",
            from: "1.0.0",
            to: "2.0.0",
            marker: "no inode found",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "HDFS-8676",
            system: "hdfs-mini",
            from: "2.6.0",
            to: "2.7.0",
            marker: "marked dead",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "HDFS-11856",
            system: "hdfs-mini",
            from: "2.7.0",
            to: "2.8.0",
            marker: "bad permanently",
            timing_dependent: true,
            scenario: None,
        },
        SeededBug {
            ticket: "HDFS-14726",
            system: "hdfs-mini",
            from: "3.1.0",
            to: "3.2.0",
            marker: "InvalidProtocolBufferException",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "HDFS-15624",
            system: "hdfs-mini",
            from: "3.2.0",
            to: "3.3.0",
            marker: "NVDIMM",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "KAFKA-6238",
            system: "kafka-mini",
            from: "0.11.0",
            to: "1.0.0",
            marker: "message.version",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "KAFKA-7403",
            system: "kafka-mini",
            from: "1.0.0",
            to: "2.1.0",
            marker: "offset commit",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "KAFKA-10173",
            system: "kafka-mini",
            from: "2.3.0",
            to: "2.4.0",
            marker: "corrupt replica batch",
            timing_dependent: false,
            scenario: None,
        },
        SeededBug {
            ticket: "ZOOKEEPER-1805",
            system: "zookeeper-mini",
            from: "3.4.0",
            to: "3.5.0",
            marker: "inconsistent peerEpoch",
            timing_dependent: true,
            scenario: None,
        },
        SeededBug {
            ticket: "MESOS-3834 (shape)",
            system: "zookeeper-mini",
            from: "3.5.0",
            to: "3.6.0",
            marker: "checkpoint",
            timing_dependent: false,
            scenario: None,
        },
        // Rollout-plan-exclusive bugs: unreachable under the paper's three
        // scenarios, which never downgrade and never take multi-hop paths.
        SeededBug {
            // CASSANDRA-13441's rollback face: 4.0 writes a format-40
            // commit-log header before validation, so a 3.11 node
            // downgraded over that durable state fatals replaying a
            // segment format newer than its own.
            ticket: "CASSANDRA-15794 (rollback)",
            system: "cassandra-mini",
            from: "3.11.0",
            to: "4.0.0",
            marker: "unknown format 40",
            timing_dependent: false,
            scenario: Some(Scenario::RollbackAfterPartial),
        },
        SeededBug {
            // The multi-hop face of CASSANDRA-13441: a direct 3.0 → 4.0
            // rolling upgrade is storm-free (4.0 checks proto versions
            // before pulling), but the 3.0 → 3.11 → 4.0 path storms in its
            // first hop because 3.0 and 3.11 share a protocol version.
            ticket: "CASSANDRA-13441 (multi-hop)",
            system: "cassandra-mini",
            from: "3.0.0",
            to: "4.0.0",
            marker: "message storm",
            timing_dependent: false,
            scenario: Some(Scenario::MultiHop),
        },
    ]
}

/// Computes which seeded bugs a campaign caught: the bug's marker must
/// appear in some failure's evidence on the right version pair.
pub fn recall(report: &crate::campaign::CampaignReport) -> (Vec<&'static str>, Vec<&'static str>) {
    let mut caught = Vec::new();
    let mut missed = Vec::new();
    for bug in seeded_bugs() {
        if bug.system != report.system {
            continue;
        }
        // A scenario-gated bug only counts against campaigns that actually
        // ran its gating scenario; the paper sweep structurally cannot
        // reach the rollout-exclusive bugs.
        if let Some(scenario) = bug.scenario {
            if !report.metrics.per_scenario.contains_key(&scenario) {
                continue;
            }
        }
        let hit = report
            .failures_on(bug.from_version(), bug.to_version())
            .iter()
            .any(|f| {
                f.observations
                    .iter()
                    .any(|o| o.to_string().contains(bug.marker))
            });
        if hit {
            caught.push(bug.ticket);
        } else {
            missed.push(bug.ticket);
        }
    }
    (caught, missed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_four_systems() {
        let bugs = seeded_bugs();
        assert_eq!(bugs.len(), 20);
        for system in [
            "cassandra-mini",
            "hdfs-mini",
            "kafka-mini",
            "zookeeper-mini",
        ] {
            assert!(bugs.iter().any(|b| b.system == system), "{system} missing");
        }
        // Every from/to parses and is ordered.
        for b in &bugs {
            assert!(b.from_version() < b.to_version(), "{}", b.ticket);
        }
    }

    #[test]
    fn scenario_gated_bugs_require_extended_scenarios() {
        let bugs = seeded_bugs();
        let gated: Vec<_> = bugs.iter().filter(|b| b.scenario.is_some()).collect();
        assert_eq!(gated.len(), 2);
        for b in gated {
            let s = b.scenario.expect("filtered on is_some");
            assert!(s.is_extended(), "{} gates on a paper scenario", b.ticket);
        }
    }

    #[test]
    fn timing_dependent_fraction_is_small() {
        let bugs = seeded_bugs();
        let nondet = bugs.iter().filter(|b| b.timing_dependent).count();
        // Finding 11: ~11% of the studied bugs are timing-dependent; our
        // catalog keeps the deterministic majority.
        assert!(
            nondet * 4 <= bugs.len(),
            "{nondet} of {} timing-dependent",
            bugs.len()
        );
    }
}
