//! The failure oracle (paper §6.1.1).
//!
//! "DUPTester treats error log messages, exceptions, and crashes as
//! indication for upgrade failures." The oracle also watches for message
//! storms (the CASSANDRA-13441 class, which crashes nothing) and for
//! unresponsive nodes after the upgrade.

use dup_simnet::{LogLevel, LogMark, NodeStatus, Sim};
use std::fmt;

/// One piece of evidence that the upgrade failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// A node crashed (fatal error or panic).
    NodeCrash {
        /// The crashed node.
        node: u32,
        /// Its version label at crash time.
        version: String,
        /// The crash reason.
        reason: String,
    },
    /// ERROR/FATAL records were logged during or after the upgrade.
    ErrorLogs {
        /// How many.
        count: usize,
        /// A representative message.
        sample: String,
    },
    /// A client operation received an error response.
    FailedOp {
        /// The command.
        command: String,
        /// The error response.
        response: String,
    },
    /// A client operation after the upgrade received no response at all.
    Unresponsive {
        /// The command.
        command: String,
    },
    /// Cluster traffic exploded relative to the pre-upgrade baseline.
    MessageStorm {
        /// Messages observed in the upgrade window.
        messages: u64,
        /// Messages observed in an equally long pre-upgrade window.
        baseline: u64,
    },
    /// The harness itself panicked while executing the case (a bug in the
    /// system-under-test adapter or the harness, not in the upgrade). The
    /// campaign executor contains the panic and isolates it here so the
    /// remaining cases still run.
    HarnessPanic {
        /// The panic payload, as text.
        message: String,
    },
    /// The case exceeded its simulator event budget and was cut off: the
    /// run never terminated on its own (livelock, restart storm, timer
    /// loop).
    CaseHung {
        /// Events the simulator had processed when the watchdog fired.
        events: u64,
    },
}

impl Observation {
    /// A short, version-number-free signature used for deduplication.
    pub fn signature(&self) -> String {
        let raw = match self {
            Observation::NodeCrash { reason, .. } => format!("crash:{reason}"),
            Observation::ErrorLogs { sample, .. } => format!("errlog:{sample}"),
            Observation::FailedOp { command, response } => {
                let verb = command.split_whitespace().next().unwrap_or("");
                format!("op:{verb}:{response}")
            }
            Observation::Unresponsive { command } => {
                let verb = command.split_whitespace().next().unwrap_or("");
                format!("timeout:{verb}")
            }
            Observation::MessageStorm { .. } => "storm".to_string(),
            Observation::HarnessPanic { message } => format!("panic:{message}"),
            Observation::CaseHung { .. } => "hung".to_string(),
        };
        // Strip digits so differing ids/epochs/offsets collapse together.
        let cleaned: String = raw
            .chars()
            .filter(|c| !c.is_ascii_digit())
            .take(72)
            .collect();
        cleaned
    }

    /// Heuristic root-cause label in Table 5's vocabulary, keyed on the
    /// diagnostic text the mini systems (like the real ones) emit.
    pub fn classify(&self) -> &'static str {
        let text = match self {
            Observation::NodeCrash { reason, .. } => reason.as_str(),
            Observation::ErrorLogs { sample, .. } => sample.as_str(),
            Observation::FailedOp { response, .. } => response.as_str(),
            Observation::Unresponsive { .. } => return "Node Unresponsive",
            Observation::MessageStorm { .. } => return "Perf. Degradation",
            Observation::HarnessPanic { .. } => return "Harness Panic",
            Observation::CaseHung { .. } => return "Non-termination",
        };
        let syntax_markers = [
            "deserialize",
            "missing required",
            "InvalidProtocolBuffer",
            "cannot load",
            "corrupt",
            "unknown format",
            "must be compressed",
            "parse",
            "tombstone",
            "no inode",
            "Compact Tables",
        ];
        // Checked first: a semantics bug often *surfaces* as a parse error
        // downstream (KAFKA-7403's required-expiry encode failure,
        // CASSANDRA-6678's unparseable pulled schema), so the more specific
        // semantic context wins over generic parse-failure text.
        let semantics_markers = [
            "NVDIMM",
            "offset commit",
            "expire",
            "peerEpoch",
            "replication strategy",
            "cannot apply schema",
            "no leader",
            "election",
        ];
        let upgrade_op_markers = [
            "bad permanently",
            "marked dead",
            "under-replicated",
            "trash",
        ];
        let config_markers = ["message.version", "configuration"];
        let lower = text.to_lowercase();
        if config_markers
            .iter()
            .any(|m| lower.contains(&m.to_lowercase()))
        {
            return "Misconfiguration";
        }
        if upgrade_op_markers
            .iter()
            .any(|m| lower.contains(&m.to_lowercase()))
        {
            return "Broken Upgrade Op.";
        }
        if semantics_markers
            .iter()
            .any(|m| lower.contains(&m.to_lowercase()))
        {
            return "Data-semantics Incomp.";
        }
        if syntax_markers
            .iter()
            .any(|m| lower.contains(&m.to_lowercase()))
        {
            return "Data-syntax Incomp.";
        }
        "Unclassified"
    }
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::NodeCrash {
                node,
                version,
                reason,
            } => {
                write!(f, "node {node} (v{version}) crashed: {reason}")
            }
            Observation::ErrorLogs { count, sample } => {
                write!(f, "{count} error/fatal log records, e.g. \"{sample}\"")
            }
            Observation::FailedOp { command, response } => {
                write!(f, "operation '{command}' failed: {response}")
            }
            Observation::Unresponsive { command } => {
                write!(f, "operation '{command}' got no response after the upgrade")
            }
            Observation::MessageStorm { messages, baseline } => {
                write!(
                    f,
                    "message storm: {messages} messages vs {baseline} baseline"
                )
            }
            Observation::HarnessPanic { message } => {
                write!(f, "harness panicked while running the case: {message}")
            }
            Observation::CaseHung { events } => {
                write!(f, "case did not terminate within {events} simulator events")
            }
        }
    }
}

/// The result of one client operation, as recorded by the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// The command issued.
    pub command: String,
    /// The target node.
    pub node: u32,
    /// `None` on timeout.
    pub response: Option<String>,
    /// Whether the op ran before, during, or after the upgrade.
    pub after_upgrade_started: bool,
    /// Whether the op ran in the post-upgrade verification phase.
    pub in_after_phase: bool,
}

/// Responses that signal a *miss*, not a malfunction. Workload gaps are
/// expected when some operations timed out against a node that was down for
/// its upgrade step; the paper's oracle likewise keys on crashes, exceptions
/// and error logs rather than semantic result checking (§6.1.1, Finding 3).
fn is_benign_miss(response: &str) -> bool {
    ["ERR not found", "ERR no record", "ERR no committed offset"]
        .iter()
        .any(|b| response.starts_with(b))
}

/// Storm thresholds: the window must both exceed an absolute floor and be a
/// large multiple of the pre-upgrade baseline.
pub(crate) const STORM_FLOOR: u64 = 2_000;
pub(crate) const STORM_FACTOR: u64 = 10;

/// Evaluates everything the harness recorded and returns the observations.
///
/// `log_mark` is a [`LogMark`] taken at upgrade start; `baseline_msgs` and
/// `window_msgs` are message counts for equal-length windows before and
/// after that point. `harness_killed` nodes are excluded from crash checks.
pub fn evaluate(
    sim: &Sim,
    log_mark: LogMark,
    baseline_msgs: u64,
    window_msgs: u64,
    ops: &[OpResult],
) -> Vec<Observation> {
    let mut out = Vec::new();
    for node in sim.crashed_nodes() {
        let reason = sim.crash_reason(node).unwrap_or("unknown").to_string();
        if reason == "killed by harness" || reason == dup_simnet::FAULT_CRASH_REASON {
            // Harness kills and fault-plan crashes are both injected by the
            // tester itself; only crashes the system caused are upgrade
            // failure evidence.
            continue;
        }
        out.push(Observation::NodeCrash {
            node,
            version: sim.node_version(node).to_string(),
            reason,
        });
    }
    // Group error records by digit-stripped prefix so every *distinct*
    // failure pattern surfaces as its own observation (a run often has a
    // cascade: the root error plus its knock-on effects). The per-level
    // count snapshot in the mark makes the common no-errors case O(1):
    // no scan at all unless something at ERROR+ was appended since.
    let mut groups: Vec<(String, usize, String)> = Vec::new();
    let scan: &[_] = if sim.logs().has_at_or_above_since(LogLevel::Error, log_mark) {
        sim.logs().records_since(log_mark)
    } else {
        &[]
    };
    for r in scan {
        if r.level < LogLevel::Error {
            continue;
        }
        let key: String = r
            .message
            .chars()
            .filter(|c| !c.is_ascii_digit())
            .take(48)
            .collect();
        match groups.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, count, _)) => *count += 1,
            None => groups.push((key, 1, r.message.clone())),
        }
    }
    for (_, count, sample) in groups.into_iter().take(10) {
        out.push(Observation::ErrorLogs { count, sample });
    }
    for op in ops {
        if !op.after_upgrade_started {
            continue;
        }
        match &op.response {
            Some(resp) if resp.starts_with("ERR") && !is_benign_miss(resp) => {
                out.push(Observation::FailedOp {
                    command: op.command.clone(),
                    response: resp.clone(),
                });
            }
            None if op.in_after_phase => {
                // Mid-rolling timeouts are expected (the target is down);
                // post-upgrade timeouts are not.
                let target_running = sim.node_status(op.node) == NodeStatus::Running;
                if target_running {
                    out.push(Observation::Unresponsive {
                        command: op.command.clone(),
                    });
                }
            }
            _ => {}
        }
    }
    if window_msgs > STORM_FLOOR && window_msgs > baseline_msgs.saturating_mul(STORM_FACTOR) {
        out.push(Observation::MessageStorm {
            messages: window_msgs,
            baseline: baseline_msgs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_strip_numbers() {
        let a = Observation::NodeCrash {
            node: 1,
            version: "4.0.0".into(),
            reason: "cannot replay commit log segment seg-b3: unknown format 40".into(),
        };
        let b = Observation::NodeCrash {
            node: 2,
            version: "4.0.0".into(),
            reason: "cannot replay commit log segment seg-b7: unknown format 40".into(),
        };
        assert_eq!(a.signature(), b.signature());
        assert!(!a.signature().contains('4'));
    }

    #[test]
    fn classification_keywords() {
        let crash = |reason: &str| Observation::NodeCrash {
            node: 0,
            version: String::new(),
            reason: reason.to_string(),
        };
        assert_eq!(
            crash("InvalidProtocolBufferException: x").classify(),
            "Data-syntax Incomp."
        );
        assert_eq!(
            crash("message.version 0.11.0 is not compatible").classify(),
            "Misconfiguration"
        );
        assert_eq!(
            crash("unable to find replication strategy class 'X'").classify(),
            "Data-semantics Incomp."
        );
        let log = Observation::ErrorLogs {
            count: 3,
            sample: "marking DataNode dn-1 bad permanently".into(),
        };
        assert_eq!(log.classify(), "Broken Upgrade Op.");
        let storm = Observation::MessageStorm {
            messages: 9000,
            baseline: 10,
        };
        assert_eq!(storm.classify(), "Perf. Degradation");
    }

    #[test]
    fn failed_op_signature_uses_verb_and_response() {
        let a = Observation::FailedOp {
            command: "GET stress.standard1 key3".into(),
            response: "ERR corrupt sstable row: input truncated".into(),
        };
        let b = Observation::FailedOp {
            command: "GET stress.standard1 key7".into(),
            response: "ERR corrupt sstable row: input truncated".into(),
        };
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn panic_and_hang_observations_classify_and_sign() {
        let p = Observation::HarnessPanic {
            message: "index out of bounds: the len is 3 but the index is 7".into(),
        };
        assert_eq!(p.classify(), "Harness Panic");
        assert!(p.signature().starts_with("panic:"));
        assert!(!p.signature().contains('7'), "digits are stripped");
        let h = Observation::CaseHung { events: 2_000_000 };
        assert_eq!(h.classify(), "Non-termination");
        assert_eq!(h.signature(), "hung");
        assert!(h.to_string().contains("did not terminate"));
    }

    #[test]
    fn display_is_informative() {
        let o = Observation::MessageStorm {
            messages: 5000,
            baseline: 12,
        };
        assert!(o.to_string().contains("5000"));
    }
}
