//! Explicit rollout plans: every [`Scenario`] compiles to a validated,
//! seeded sequence of [`RolloutStep`]s over a version path before it runs.
//!
//! Making the rollout schedule *data* rather than driver control flow buys
//! three things at once:
//!
//! - **reach** — downgrades, multi-hop jumps, canary gates, and membership
//!   churn are just step sequences, so the four extended scenarios share the
//!   one interpreter the paper's three already use;
//! - **mutability** — the coverage-guided search's `NudgeRolloutPlan`
//!   operator can shift settle times and swap adjacent steps within the
//!   validity constraints ([`RolloutPlan::nudge`]), the same way it already
//!   perturbs fault plans;
//! - **repro** — a failing extended case's report quotes the rendered plan
//!   (`plan=` segment), and [`RolloutPlan::parse`] round-trips it, so any
//!   rollback or multi-hop failure replays standalone.
//!
//! The plan is a pure function of
//! `(scenario, from, to, catalog, cluster size, seed)` — compiled per case
//! into a pooled buffer ([`RolloutPlan::compile`] reuses its step vector, so
//! the warm path never allocates) — and for the paper's three scenarios it
//! replays the historical hard-coded driver sequence *exactly*, which keeps
//! every existing campaign report byte-identical.
//!
//! # Plan grammar
//!
//! A rendered plan is `[<path>]<steps>` where `<path>` is `>`-separated
//! versions (oldest first, length 2 or 3) and `<steps>` is a
//! comma-separated list of step mnemonics:
//!
//! | token | step |
//! |-------|------|
//! | `s<node>` | gracefully stop a node |
//! | `u<node>:<v>` | install path index `v` (higher than current) and start |
//! | `d<node>:<v>` | install path index `v` (lower than current) over newer on-disk state and start |
//! | `j<node>:<v>` | add a fresh node at path index `v` and start it |
//! | `l<node>` | gracefully stop a previously joined node |
//! | `w<millis>` | settle: drive the simulation for `millis` ms |
//! | `t<chunk>/<of>` | run the during-upgrade ops whose index ≡ chunk (mod of) |
//! | `p<node>` | health-probe a node |
//! | `g<node>` | canary gate: probe; on failure halt the remaining steps |

use crate::faults::PlanNudge;
use crate::scenario::Scenario;
use dup_core::VersionId;
use dup_simnet::NodeId;
use std::fmt;

/// Settle after an install or join, matching the harness's historical
/// post-install settle.
const SETTLE_MS: u64 = 2_000;
/// The brief full-stop gap between the last old-version stop and the first
/// new-version install.
const FULL_STOP_GAP_MS: u64 = 200;
/// Per-node downtime during a rolling step — past the 3 s restart
/// tolerance, far under the 60 s dead timeout (paper Fig. 1).
const ROLLING_DOWNTIME_MS: u64 = 3_600;
/// Dwell at each intermediate release of a multi-hop path before the next
/// hop starts. Long enough for intermediate-version-only pathologies (e.g.
/// a schema-pull feedback loop) to build observable pressure.
const INTERMEDIATE_SOAK_MS: u64 = 30_000;
/// Validity ceiling for any settle step: far above anything compiled or
/// nudged, far below the event-budget horizon.
const MAX_SETTLE_MS: u64 = 600_000;

/// Largest magnitude (in milliseconds) a [`PlanNudge::settle_shift_ms`] may
/// move a plan's settle steps by.
pub const MAX_SETTLE_SHIFT_MS: u64 = 2_000;

/// Longest version path a plan may carry (multi-hop: from → mid → to).
pub const MAX_PATH_LEN: usize = 3;

/// Most nodes a plan may govern (cluster plus one joiner); lets
/// [`RolloutPlan::validate`] track per-node state on the stack.
const MAX_NODES: usize = 32;

/// One step of a rollout schedule. Version fields are indices into the
/// plan's version path, not concrete versions — which is what makes
/// "downgrade" a structural property ([`RolloutStep::Downgrade`] must
/// strictly decrease the node's path index) instead of a runtime comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RolloutStep {
    /// Gracefully stop a running node (pre-install).
    Stop {
        /// The node to stop.
        node: NodeId,
    },
    /// Install the path version at `version` — higher than the node's
    /// current index — into a stopped node and start it.
    Upgrade {
        /// The node to upgrade.
        node: NodeId,
        /// Index into the plan's version path.
        version: u8,
    },
    /// Install the path version at `version` — *lower* than the node's
    /// current index — over the newer on-disk state and start it. This is
    /// the rollback step: the old process version must cope with durable
    /// state a newer version wrote.
    Downgrade {
        /// The node to downgrade.
        node: NodeId,
        /// Index into the plan's version path.
        version: u8,
    },
    /// Add a fresh node (with empty storage) at the path version `version`
    /// and start it.
    Join {
        /// The id the new node must receive.
        node: NodeId,
        /// Index into the plan's version path.
        version: u8,
    },
    /// Gracefully stop a node that leaves the cluster.
    Leave {
        /// The departing node.
        node: NodeId,
    },
    /// Drive the simulation for `millis` milliseconds.
    Settle {
        /// How long to drive.
        millis: u64,
    },
    /// Run the during-upgrade workload ops whose index is congruent to
    /// `chunk` modulo `of` (so `of` traffic steps with distinct chunks
    /// partition the workload round-robin, exactly like the historical
    /// rolling driver's chunking). Open-loop workload plans partition by
    /// *time* instead: step `chunk` replays slice `chunk` of the plan's
    /// `of`-way-split arrival window in simulated time, so scheduled bursts
    /// land against the rollout step their slice abuts.
    Traffic {
        /// Which residue class of op indices to run.
        chunk: u32,
        /// The modulus shared by every traffic step of the plan.
        of: u32,
    },
    /// Health-probe a node (the response lands in the oracle's op log).
    Probe {
        /// The node to probe.
        node: NodeId,
    },
    /// Health-probe a canary node; if the canary is genuinely crashed or
    /// the probe goes unanswered, the interpreter halts the remaining steps
    /// (the operator rolls no further) — quiesce and verification still
    /// run, so the oracle sees whatever the canary broke.
    CanaryGate {
        /// The canary node; must have been upgraded earlier in the plan.
        node: NodeId,
    },
}

/// A validated, seeded rollout schedule over a version path. See the
/// [module docs](self) for the grammar and the compile/nudge/repro
/// contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RolloutPlan {
    path: Vec<VersionId>,
    steps: Vec<RolloutStep>,
}

impl RolloutPlan {
    /// An empty plan. [`RolloutPlan::compile`] fills it in place, reusing
    /// both buffers across cases.
    pub fn new() -> RolloutPlan {
        RolloutPlan::default()
    }

    /// The version path, oldest first (`path()[0]` is the from-version and
    /// the last entry the to-version).
    pub fn path(&self) -> &[VersionId] {
        &self.path
    }

    /// The step sequence.
    pub fn steps(&self) -> &[RolloutStep] {
        &self.steps
    }

    /// The concrete version at path index `idx` (clamped to the path).
    pub fn version(&self, idx: u8) -> VersionId {
        self.path[(idx as usize).min(self.path.len().saturating_sub(1))]
    }

    /// Compiles `scenario` into this plan, in place, as a pure function of
    /// the arguments. `catalog` is the system's release catalog
    /// ([`dup_core::SystemUnderTest::versions`]): [`Scenario::MultiHop`]
    /// picks its middle hop from the releases strictly between `from` and
    /// `to` (none ⇒ single hop). `seed` picks the seeded choices — how many
    /// nodes a partial rollout upgrades, which node is the canary.
    ///
    /// For the paper's three scenarios the compiled plan replays the
    /// historical hard-coded driver sequence exactly.
    pub fn compile(
        &mut self,
        scenario: Scenario,
        from: VersionId,
        to: VersionId,
        catalog: &[VersionId],
        n: u32,
        seed: u64,
    ) {
        self.path.clear();
        self.steps.clear();
        self.path.push(from);
        if scenario == Scenario::MultiHop {
            if let Some(mid) = middle_hop(catalog, from, to) {
                self.path.push(mid);
            }
        }
        self.path.push(to);
        let last = (self.path.len() - 1) as u8;

        match scenario {
            Scenario::FullStop => {
                for i in (0..n).rev() {
                    self.steps.push(RolloutStep::Stop { node: i });
                }
                self.steps.push(RolloutStep::Settle {
                    millis: FULL_STOP_GAP_MS,
                });
                for i in 0..n {
                    self.steps.push(RolloutStep::Upgrade {
                        node: i,
                        version: last,
                    });
                }
                self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
                self.steps.push(RolloutStep::Traffic { chunk: 0, of: 1 });
            }
            Scenario::Rolling => self.rolling_hop(0, last, n, 2 * n),
            Scenario::NewNodeJoin => {
                self.steps.push(RolloutStep::Join {
                    node: n,
                    version: last,
                });
                self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
                self.steps.push(RolloutStep::Traffic { chunk: 0, of: 1 });
                self.steps.push(RolloutStep::Probe { node: n });
            }
            Scenario::RollbackAfterPartial => {
                // Upgrade k of n (seed-chosen, always partial for n >= 2),
                // run traffic so new-version state lands on disk, then roll
                // the upgraded nodes back to the from-version.
                let k = 1 + (seed % u64::from(n.saturating_sub(1).max(1))) as u32;
                for i in 0..k.min(n) {
                    self.steps.push(RolloutStep::Stop { node: i });
                    self.steps.push(RolloutStep::Settle {
                        millis: ROLLING_DOWNTIME_MS,
                    });
                    self.steps.push(RolloutStep::Upgrade {
                        node: i,
                        version: last,
                    });
                    self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
                }
                self.steps.push(RolloutStep::Traffic { chunk: 0, of: 2 });
                for i in 0..k.min(n) {
                    self.steps.push(RolloutStep::Stop { node: i });
                    self.steps.push(RolloutStep::Settle {
                        millis: ROLLING_DOWNTIME_MS,
                    });
                    self.steps.push(RolloutStep::Downgrade {
                        node: i,
                        version: 0,
                    });
                    self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
                }
                self.steps.push(RolloutStep::Traffic { chunk: 1, of: 2 });
            }
            Scenario::MultiHop => {
                // Rolling at each hop, with a soak at every intermediate
                // release before the next hop starts: the per-hop
                // mixed-version windows and the dwell *at* the intermediate
                // version are where multi-hop-only incompatibilities live
                // (CASSANDRA-13441's storm rages exactly while the fleet
                // sits on the middle release).
                let hops = last as u32;
                let of = (2 * n * hops).max(1);
                for hop in 1..=last {
                    self.rolling_hop(2 * n * (u32::from(hop) - 1), hop, n, of);
                    if hop < last {
                        self.steps.push(RolloutStep::Settle {
                            millis: INTERMEDIATE_SOAK_MS,
                        });
                    }
                }
            }
            Scenario::CanaryThenFleet => {
                let canary = (seed % u64::from(n.max(1))) as u32;
                self.steps.push(RolloutStep::Stop { node: canary });
                self.steps.push(RolloutStep::Settle {
                    millis: ROLLING_DOWNTIME_MS,
                });
                self.steps.push(RolloutStep::Upgrade {
                    node: canary,
                    version: last,
                });
                self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
                self.steps.push(RolloutStep::Traffic { chunk: 0, of: 2 });
                self.steps.push(RolloutStep::CanaryGate { node: canary });
                for i in (0..n).filter(|&i| i != canary) {
                    self.steps.push(RolloutStep::Stop { node: i });
                    self.steps.push(RolloutStep::Settle {
                        millis: ROLLING_DOWNTIME_MS,
                    });
                    self.steps.push(RolloutStep::Upgrade {
                        node: i,
                        version: last,
                    });
                    self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
                }
                self.steps.push(RolloutStep::Traffic { chunk: 1, of: 2 });
            }
            Scenario::RollingWithChurn => {
                // An old-version node joins as the rollout starts and leaves
                // near its end: membership churn mid-rollout.
                self.steps.push(RolloutStep::Join {
                    node: n,
                    version: 0,
                });
                self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
                self.rolling_hop(0, last, n, 2 * n);
                self.steps.push(RolloutStep::Leave { node: n });
                self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
            }
        }
    }

    /// One rolling pass over nodes `0..n` to path index `to`, consuming
    /// traffic chunks `chunk_base..chunk_base + 2n` out of `of`. Matches
    /// the historical rolling driver: half of each node's traffic while it
    /// is down (the restart-tolerance window), half right after it rejoins
    /// (the mixed-version live window).
    fn rolling_hop(&mut self, chunk_base: u32, to: u8, n: u32, of: u32) {
        for i in 0..n {
            self.steps.push(RolloutStep::Stop { node: i });
            self.steps.push(RolloutStep::Settle {
                millis: ROLLING_DOWNTIME_MS,
            });
            self.steps.push(RolloutStep::Traffic {
                chunk: chunk_base + 2 * i,
                of,
            });
            self.steps.push(RolloutStep::Upgrade {
                node: i,
                version: to,
            });
            self.steps.push(RolloutStep::Settle { millis: SETTLE_MS });
            self.steps.push(RolloutStep::Traffic {
                chunk: chunk_base + 2 * i + 1,
                of,
            });
        }
    }

    /// Applies the plan-level half of a [`PlanNudge`], in place:
    /// `settle_shift_ms` (clamped to ±[`MAX_SETTLE_SHIFT_MS`]) moves every
    /// settle step, and a non-zero `step_swap_salt` performs one
    /// validity-preserving adjacent step swap (chosen by the salt among the
    /// swappable pairs; plans with none are left untouched).
    ///
    /// Pure and bounded: the same `(plan, nudge)` always yields the same
    /// result, settles stay within `[0, MAX_SETTLE_MS]`, and a valid plan
    /// stays valid.
    pub fn nudge(&mut self, nudge: &PlanNudge) {
        if nudge.settle_shift_ms != 0 {
            let max = MAX_SETTLE_SHIFT_MS as i64;
            let shift = nudge.settle_shift_ms.clamp(-max, max);
            for step in &mut self.steps {
                if let RolloutStep::Settle { millis } = step {
                    *millis = millis.saturating_add_signed(shift).min(MAX_SETTLE_MS);
                }
            }
        }
        if nudge.step_swap_salt != 0 {
            let count = self
                .steps
                .windows(2)
                .filter(|w| swappable(&w[0], &w[1]))
                .count() as u64;
            if count > 0 {
                let target = nudge.step_swap_salt % count;
                let mut seen = 0u64;
                for i in 0..self.steps.len() - 1 {
                    if swappable(&self.steps[i], &self.steps[i + 1]) {
                        if seen == target {
                            self.steps.swap(i, i + 1);
                            break;
                        }
                        seen += 1;
                    }
                }
            }
        }
    }

    /// Checks the plan against the validity rules for a cluster of `n`
    /// initial members:
    ///
    /// - the version path is non-empty, at most [`MAX_PATH_LEN`] long, and
    ///   non-decreasing; every step's version index is inside it;
    /// - stops and leaves hit running nodes; upgrades and downgrades hit
    ///   stopped nodes and strictly raise resp. lower the node's path
    ///   index; joins introduce fresh ids in simulator order (`n`, `n+1`,
    ///   …);
    /// - probes and canary gates target running nodes, and a gate's canary
    ///   must have been upgraded earlier in the plan;
    /// - every traffic step shares one modulus, each chunk is used at most
    ///   once, and settles stay within `MAX_SETTLE_MS`.
    ///
    /// Never allocates on the success path.
    pub fn validate(&self, n: u32) -> Result<(), &'static str> {
        if self.path.is_empty() || self.path.len() > MAX_PATH_LEN {
            return Err("version path must have 1..=3 entries");
        }
        if self.path.windows(2).any(|w| w[0] > w[1]) {
            return Err("version path must be non-decreasing");
        }
        if n as usize + 1 > MAX_NODES {
            return Err("cluster too large to validate");
        }

        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Absent,
            Running,
            Stopped,
        }
        let mut state = [St::Absent; MAX_NODES];
        let mut version = [0u8; MAX_NODES];
        for s in state.iter_mut().take(n as usize) {
            *s = St::Running;
        }
        let mut next_join = n;
        let mut traffic_of: Option<u32> = None;
        let mut chunks_seen = 0u64; // bitmask over chunk ids < 64

        let slot = |node: NodeId| -> Result<usize, &'static str> {
            let i = node as usize;
            if i < MAX_NODES {
                Ok(i)
            } else {
                Err("node id out of validated range")
            }
        };
        for step in &self.steps {
            match *step {
                RolloutStep::Stop { node } | RolloutStep::Leave { node } => {
                    let i = slot(node)?;
                    if state[i] != St::Running {
                        return Err("stop/leave of a node that is not running");
                    }
                    state[i] = St::Stopped;
                }
                RolloutStep::Upgrade { node, version: v } => {
                    let i = slot(node)?;
                    if usize::from(v) >= self.path.len() {
                        return Err("upgrade to a version outside the path");
                    }
                    if state[i] != St::Stopped {
                        return Err("upgrade of a node that is not stopped");
                    }
                    if v <= version[i] {
                        return Err("upgrade must raise the node's path index");
                    }
                    version[i] = v;
                    state[i] = St::Running;
                }
                RolloutStep::Downgrade { node, version: v } => {
                    let i = slot(node)?;
                    if usize::from(v) >= self.path.len() {
                        return Err("downgrade to a version outside the path");
                    }
                    if state[i] != St::Stopped {
                        return Err("downgrade of a node that is not stopped");
                    }
                    if v >= version[i] {
                        return Err("downgrade must lower the node's path index");
                    }
                    version[i] = v;
                    state[i] = St::Running;
                }
                RolloutStep::Join { node, version: v } => {
                    let i = slot(node)?;
                    if usize::from(v) >= self.path.len() {
                        return Err("join at a version outside the path");
                    }
                    if node != next_join || state[i] != St::Absent {
                        return Err("join must introduce the next fresh node id");
                    }
                    next_join += 1;
                    version[i] = v;
                    state[i] = St::Running;
                }
                RolloutStep::Settle { millis } => {
                    if millis > MAX_SETTLE_MS {
                        return Err("settle exceeds the validity ceiling");
                    }
                }
                RolloutStep::Traffic { chunk, of } => {
                    if of == 0 || chunk >= of {
                        return Err("traffic chunk outside its modulus");
                    }
                    if *traffic_of.get_or_insert(of) != of {
                        return Err("traffic steps must share one modulus");
                    }
                    if chunk < 64 {
                        let bit = 1u64 << chunk;
                        if chunks_seen & bit != 0 {
                            return Err("traffic chunk used twice");
                        }
                        chunks_seen |= bit;
                    }
                }
                RolloutStep::Probe { node } => {
                    let i = slot(node)?;
                    if state[i] != St::Running {
                        return Err("probe of a node that is not running");
                    }
                }
                RolloutStep::CanaryGate { node } => {
                    let i = slot(node)?;
                    if state[i] != St::Running {
                        return Err("canary gate on a node that is not running");
                    }
                    if version[i] == 0 {
                        return Err("canary gate on a node that was never upgraded");
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the plan into the `plan=` grammar (see the module docs).
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parses a plan rendered by [`RolloutPlan::render`]; inverse of it.
    pub fn parse(s: &str) -> Result<RolloutPlan, String> {
        let rest = s
            .strip_prefix('[')
            .ok_or_else(|| "plan must start with '['".to_string())?;
        let (path_str, steps_str) = rest
            .split_once(']')
            .ok_or_else(|| "plan path must end with ']'".to_string())?;
        let mut plan = RolloutPlan::new();
        for v in path_str.split('>') {
            plan.path
                .push(v.parse().map_err(|e| format!("bad path version: {e:?}"))?);
        }
        for tok in steps_str.split(',').filter(|t| !t.is_empty()) {
            let (kind, body) = tok.split_at(1);
            let two = |sep: char| -> Result<(u32, u32), String> {
                let (a, b) = body
                    .split_once(sep)
                    .ok_or_else(|| format!("step {tok}: expected '{sep}'"))?;
                Ok((
                    a.parse().map_err(|_| format!("step {tok}: bad number"))?,
                    b.parse().map_err(|_| format!("step {tok}: bad number"))?,
                ))
            };
            let one = || -> Result<u64, String> {
                body.parse().map_err(|_| format!("step {tok}: bad number"))
            };
            plan.steps.push(match kind {
                "s" => RolloutStep::Stop {
                    node: one()? as u32,
                },
                "u" => {
                    let (node, v) = two(':')?;
                    RolloutStep::Upgrade {
                        node,
                        version: v as u8,
                    }
                }
                "d" => {
                    let (node, v) = two(':')?;
                    RolloutStep::Downgrade {
                        node,
                        version: v as u8,
                    }
                }
                "j" => {
                    let (node, v) = two(':')?;
                    RolloutStep::Join {
                        node,
                        version: v as u8,
                    }
                }
                "l" => RolloutStep::Leave {
                    node: one()? as u32,
                },
                "w" => RolloutStep::Settle { millis: one()? },
                "t" => {
                    let (chunk, of) = two('/')?;
                    RolloutStep::Traffic { chunk, of }
                }
                "p" => RolloutStep::Probe {
                    node: one()? as u32,
                },
                "g" => RolloutStep::CanaryGate {
                    node: one()? as u32,
                },
                other => return Err(format!("unknown step kind {other:?}")),
            });
        }
        Ok(plan)
    }
}

impl fmt::Display for RolloutPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, v) in self.path.iter().enumerate() {
            if i > 0 {
                f.write_str(">")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")?;
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match *step {
                RolloutStep::Stop { node } => write!(f, "s{node}")?,
                RolloutStep::Upgrade { node, version } => write!(f, "u{node}:{version}")?,
                RolloutStep::Downgrade { node, version } => write!(f, "d{node}:{version}")?,
                RolloutStep::Join { node, version } => write!(f, "j{node}:{version}")?,
                RolloutStep::Leave { node } => write!(f, "l{node}")?,
                RolloutStep::Settle { millis } => write!(f, "w{millis}")?,
                RolloutStep::Traffic { chunk, of } => write!(f, "t{chunk}/{of}")?,
                RolloutStep::Probe { node } => write!(f, "p{node}")?,
                RolloutStep::CanaryGate { node } => write!(f, "g{node}")?,
            }
        }
        Ok(())
    }
}

/// Renders the plan `case` executed, for the repro string — `Some` only for
/// extended scenarios, whose plans depend on the seed (and, under search,
/// the detecting nudge). Paper-scenario plans are pinned by `scenario` +
/// `seed` alone, so their repro strings stay exactly as they always were.
pub(crate) fn rendered_plan(
    case: &crate::harness::TestCase,
    nudge: Option<&PlanNudge>,
    catalog: &[VersionId],
    n: u32,
) -> Option<String> {
    if !case.scenario.is_extended() {
        return None;
    }
    let mut plan = RolloutPlan::new();
    plan.compile(case.scenario, case.from, case.to, catalog, n, case.seed);
    if let Some(nd) = nudge {
        plan.nudge(nd);
    }
    Some(plan.render())
}

/// The middle hop for a multi-hop path: the catalog release (strictly
/// between `from` and `to`) closest to the middle of the gap, or `None`
/// when the catalog has nothing in between.
fn middle_hop(catalog: &[VersionId], from: VersionId, to: VersionId) -> Option<VersionId> {
    let count = catalog.iter().filter(|v| **v > from && **v < to).count();
    if count == 0 {
        return None;
    }
    catalog
        .iter()
        .filter(|v| **v > from && **v < to)
        .nth(count / 2)
        .copied()
}

/// Whether swapping two *adjacent* steps preserves validity for any plan
/// this module compiles: member lifecycle steps (stop/upgrade/downgrade) on
/// *different* nodes commute, and settle/traffic steps are fluid — they
/// commute with each other and with any member lifecycle step. Join, leave,
/// probe, and canary-gate steps never move (the gate's position *is* its
/// semantics).
fn swappable(a: &RolloutStep, b: &RolloutStep) -> bool {
    fn member(s: &RolloutStep) -> Option<NodeId> {
        match *s {
            RolloutStep::Stop { node }
            | RolloutStep::Upgrade { node, .. }
            | RolloutStep::Downgrade { node, .. } => Some(node),
            _ => None,
        }
    }
    fn fluid(s: &RolloutStep) -> bool {
        matches!(s, RolloutStep::Settle { .. } | RolloutStep::Traffic { .. })
    }
    match (member(a), member(b)) {
        (Some(x), Some(y)) => x != y,
        _ => (member(a).is_some() || fluid(a)) && (member(b).is_some() || fluid(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn catalog() -> Vec<VersionId> {
        ["1.0.0", "2.0.0", "3.0.0", "4.0.0"]
            .iter()
            .map(|s| v(s))
            .collect()
    }

    fn compiled(scenario: Scenario, seed: u64) -> RolloutPlan {
        let mut plan = RolloutPlan::new();
        plan.compile(scenario, v("1.0.0"), v("3.0.0"), &catalog(), 3, seed);
        plan
    }

    #[test]
    fn every_scenario_compiles_to_a_valid_plan() {
        for scenario in Scenario::extended() {
            for seed in 0..8 {
                let plan = compiled(scenario, seed);
                assert!(
                    plan.validate(3).is_ok(),
                    "{scenario} seed {seed}: {:?} for {plan}",
                    plan.validate(3)
                );
                assert!(!plan.steps().is_empty(), "{scenario} compiled empty");
            }
        }
    }

    #[test]
    fn paper_plans_replay_the_historical_driver_shape() {
        let full_stop = compiled(Scenario::FullStop, 1);
        assert_eq!(
            full_stop.to_string(),
            "[1.0.0>3.0.0]s2,s1,s0,w200,u0:1,u1:1,u2:1,w2000,t0/1"
        );
        let rolling = compiled(Scenario::Rolling, 1);
        assert_eq!(
            rolling.to_string(),
            "[1.0.0>3.0.0]s0,w3600,t0/6,u0:1,w2000,t1/6,\
             s1,w3600,t2/6,u1:1,w2000,t3/6,s2,w3600,t4/6,u2:1,w2000,t5/6"
        );
        let join = compiled(Scenario::NewNodeJoin, 1);
        assert_eq!(join.to_string(), "[1.0.0>3.0.0]j3:1,w2000,t0/1,p3");
    }

    #[test]
    fn rollback_upgrades_then_downgrades_a_seeded_partial_set() {
        let plan = compiled(Scenario::RollbackAfterPartial, 0);
        let ups = plan
            .steps()
            .iter()
            .filter(|s| matches!(s, RolloutStep::Upgrade { .. }))
            .count();
        let downs = plan
            .steps()
            .iter()
            .filter(|s| matches!(s, RolloutStep::Downgrade { .. }))
            .count();
        assert_eq!(ups, downs, "every upgraded node rolls back");
        assert!((1..3).contains(&ups), "partial rollout for n=3, got {ups}");
        // Seeds pick different k.
        let k0 = compiled(Scenario::RollbackAfterPartial, 0).steps().len();
        let k1 = compiled(Scenario::RollbackAfterPartial, 1).steps().len();
        assert_ne!(k0, k1, "seed must vary the partial-set size");
        // Traffic lands between the upgrade leg and the rollback leg.
        let first_traffic = plan
            .steps()
            .iter()
            .position(|s| matches!(s, RolloutStep::Traffic { .. }))
            .unwrap();
        let first_down = plan
            .steps()
            .iter()
            .position(|s| matches!(s, RolloutStep::Downgrade { .. }))
            .unwrap();
        assert!(first_traffic < first_down);
    }

    #[test]
    fn multi_hop_routes_through_a_catalog_middle_version() {
        let plan = compiled(Scenario::MultiHop, 1);
        assert_eq!(plan.path(), &[v("1.0.0"), v("2.0.0"), v("3.0.0")]);
        // Every node upgrades twice: once per hop.
        let ups = plan
            .steps()
            .iter()
            .filter(|s| matches!(s, RolloutStep::Upgrade { .. }))
            .count();
        assert_eq!(ups, 6);
        // Without an intermediate release it degenerates to one rolling hop.
        let mut single = RolloutPlan::new();
        single.compile(Scenario::MultiHop, v("1.0.0"), v("2.0.0"), &catalog(), 3, 1);
        assert_eq!(single.path(), &[v("1.0.0"), v("2.0.0")]);
        assert!(single.validate(3).is_ok());
    }

    #[test]
    fn canary_gate_follows_the_seeded_canary_upgrade() {
        for seed in 0..6 {
            let plan = compiled(Scenario::CanaryThenFleet, seed);
            let gate = plan
                .steps()
                .iter()
                .position(|s| matches!(s, RolloutStep::CanaryGate { .. }))
                .expect("gate present");
            let RolloutStep::CanaryGate { node } = plan.steps()[gate] else {
                unreachable!()
            };
            let canary_up = plan
                .steps()
                .iter()
                .position(|s| matches!(s, RolloutStep::Upgrade { node: u, .. } if *u == node))
                .expect("canary upgraded");
            assert!(canary_up < gate, "gate must follow the canary upgrade");
            assert!(node < 3, "canary inside the cluster");
        }
    }

    #[test]
    fn churn_joins_old_version_early_and_leaves_late() {
        let plan = compiled(Scenario::RollingWithChurn, 1);
        assert!(matches!(
            plan.steps()[0],
            RolloutStep::Join {
                node: 3,
                version: 0
            }
        ));
        let leave = plan
            .steps()
            .iter()
            .position(|s| matches!(s, RolloutStep::Leave { node: 3 }))
            .expect("joiner leaves");
        let last_up = plan
            .steps()
            .iter()
            .rposition(|s| matches!(s, RolloutStep::Upgrade { .. }))
            .unwrap();
        assert!(leave > last_up, "leave lands after the rollout");
    }

    #[test]
    fn render_parse_round_trips_every_scenario() {
        for scenario in Scenario::extended() {
            for seed in [0, 3, 7] {
                let plan = compiled(scenario, seed);
                let rendered = plan.render();
                let parsed = RolloutPlan::parse(&rendered)
                    .unwrap_or_else(|e| panic!("{scenario}: {e} in {rendered}"));
                assert_eq!(parsed, plan, "{scenario} round trip");
            }
        }
        assert!(RolloutPlan::parse("no-bracket").is_err());
        assert!(RolloutPlan::parse("[1.0.0]x9").is_err());
        assert!(RolloutPlan::parse("[bogus]s0").is_err());
    }

    #[test]
    fn nudge_is_pure_bounded_and_validity_preserving() {
        for scenario in Scenario::extended() {
            for salt in [1u64, 0x9E37_79B9, u64::MAX] {
                for shift in [-5_000i64, -1, 1, 5_000] {
                    let nudge = PlanNudge {
                        settle_shift_ms: shift,
                        step_swap_salt: salt,
                        ..PlanNudge::default()
                    };
                    let mut a = compiled(scenario, 2);
                    a.nudge(&nudge);
                    let mut b = compiled(scenario, 2);
                    b.nudge(&nudge);
                    assert_eq!(a, b, "{scenario}: nudge must be pure");
                    assert!(
                        a.validate(3).is_ok(),
                        "{scenario}: nudged plan invalid: {:?}\n{a}",
                        a.validate(3)
                    );
                    let base = compiled(scenario, 2);
                    for (orig, moved) in base.steps().iter().zip(a.steps()) {
                        if let (
                            RolloutStep::Settle { millis: o },
                            RolloutStep::Settle { millis: m },
                        ) = (orig, moved)
                        {
                            let delta = (*m as i64) - (*o as i64);
                            assert!(
                                delta.unsigned_abs() <= MAX_SETTLE_SHIFT_MS,
                                "{scenario}: settle moved {delta} ms"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn noop_nudge_leaves_the_plan_untouched_and_salts_swap() {
        let mut plan = compiled(Scenario::Rolling, 1);
        let before = plan.clone();
        plan.nudge(&PlanNudge::default());
        assert_eq!(plan, before, "noop nudge must not move anything");

        let mut swapped = before.clone();
        swapped.nudge(&PlanNudge {
            step_swap_salt: 1,
            ..PlanNudge::default()
        });
        assert_ne!(swapped, before, "a salt must swap one adjacent pair");
        assert_eq!(swapped.steps().len(), before.steps().len());
        let moved: usize = before
            .steps()
            .iter()
            .zip(swapped.steps())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(moved, 2, "exactly one adjacent pair differs");
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let ok = compiled(Scenario::FullStop, 1);
        assert!(ok.validate(3).is_ok());

        // Upgrade of a running node.
        let mut bad = RolloutPlan::parse("[1.0.0>2.0.0]u0:1").unwrap();
        assert!(bad.validate(3).is_err());
        // Downgrade that does not lower the index.
        bad = RolloutPlan::parse("[1.0.0>2.0.0]s0,d0:1").unwrap();
        assert!(bad.validate(3).is_err());
        // Version index outside the path.
        bad = RolloutPlan::parse("[1.0.0>2.0.0]s0,u0:2").unwrap();
        assert!(bad.validate(3).is_err());
        // Join of an existing member.
        bad = RolloutPlan::parse("[1.0.0>2.0.0]j1:1").unwrap();
        assert!(bad.validate(3).is_err());
        // Canary gate before any upgrade.
        bad = RolloutPlan::parse("[1.0.0>2.0.0]g0").unwrap();
        assert!(bad.validate(3).is_err());
        // Mixed traffic moduli.
        bad = RolloutPlan::parse("[1.0.0>2.0.0]t0/2,t0/4").unwrap();
        assert!(bad.validate(3).is_err());
        // Decreasing path.
        bad = RolloutPlan::parse("[2.0.0>1.0.0]s0,u0:1").unwrap();
        assert!(bad.validate(3).is_err());
    }

    #[test]
    fn compile_reuses_buffers_in_place() {
        let mut plan = RolloutPlan::new();
        plan.compile(Scenario::MultiHop, v("1.0.0"), v("3.0.0"), &catalog(), 3, 1);
        let cap = (plan.steps.capacity(), plan.path.capacity());
        for seed in 0..16 {
            plan.compile(
                Scenario::RollbackAfterPartial,
                v("1.0.0"),
                v("3.0.0"),
                &catalog(),
                3,
                seed,
            );
            plan.compile(
                Scenario::MultiHop,
                v("1.0.0"),
                v("3.0.0"),
                &catalog(),
                3,
                seed,
            );
        }
        assert_eq!(
            (plan.steps.capacity(), plan.path.capacity()),
            cap,
            "recompiling equally-sized plans must not grow the buffers"
        );
    }
}
