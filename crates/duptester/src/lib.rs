//! # dup-tester — DUPTester, the upgrade testing framework (paper §6.1)
//!
//! DUPTester systematically tests a [`dup_core::SystemUnderTest`] across:
//!
//! - **version pairs**: consecutive releases, optionally distance-2 pairs
//!   (Finding 9 — this covers ~90% of studied failures with O(N) pairs);
//! - **scenarios** ([`Scenario`]): the paper's full-stop, rolling, and
//!   new-node-join, plus extended rollout-plan scenarios — rollback after a
//!   partial upgrade, multi-hop version paths, canary-gated fleets, and
//!   rolling upgrades under membership churn — each compiled to an explicit,
//!   validated [`RolloutPlan`] the harness interprets step by step;
//! - **workloads** ([`WorkloadSpec`]): the system's stress operations,
//!   unit tests *translated* into client commands ([`translate`], §6.1.3),
//!   unit tests executed in place whose persistent state the upgraded
//!   cluster must boot from (§6.1.2), and seeded open-loop arrival plans
//!   ([`WorkloadPlan`]) that drive millions of logical clients as pure
//!   arithmetic event streams over a Zipfian key-popularity model;
//! - **fault intensities** ([`FaultIntensity`]): deterministic injected
//!   chaos — message drops/duplicates/delays/reorders, partition windows,
//!   crash-then-restart — derived per case by [`fault_plan_for`], with the
//!   oracle distinguishing injected chaos from genuine upgrade failures;
//! - **durability modes** ([`Durability`]): whether host storage is
//!   write-through (strict), buffered until an explicit flush, or buffered
//!   with torn-tail crashes — with state-triggered crash points that kill
//!   nodes mid-upgrade or between a write and its flush.
//!
//! The failure [`oracle`] keys on crashes, fatal/error logs, failed or
//! unanswered client operations, and message storms — the observable
//! symptoms Finding 3 says cover 70% of real upgrade failures.
//!
//! [`Campaign`] sweeps everything — in parallel across a worker pool, yet
//! with a report byte-identical to a sequential run — and produces a
//! deduplicated, Table-5-style [`CampaignReport`] with per-case
//! [`CampaignMetrics`]; [`catalog`] holds the ground-truth seeded-bug list
//! so recall can be measured. The executor is self-protecting: a panicking
//! case is contained by `catch_unwind` and a runaway case is cut off by an
//! event-budget watchdog, each isolated into its own [`FailureReport`]
//! while the remaining cases complete.
//!
//! ```no_run
//! use dup_tester::{Campaign, Scenario};
//! let report = Campaign::builder(&dup_kvstore::KvStoreSystem)
//!     .seeds([1, 2, 3])
//!     .scenarios(Scenario::paper())
//!     .threads(4)
//!     .run();
//! print!("{}", report.render_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod catalog;
mod faults;
mod harness;
mod oracle;
mod rollout;
mod scenario;
mod translator;
mod workload;

pub use crate::campaign::search::mutate;
pub use crate::campaign::{
    dedup_key, Campaign, CampaignBuilder, CampaignConfig, CampaignMetrics, CampaignObserver,
    CampaignReport, CaseMatrix, CaseSignature, CaseStatus, Corpus, CorpusEntry, CoverageMap,
    Detection, FailureReport, MetricsObserver, MutationOp, NoopObserver, ProgressObserver,
    RenderOptions, ScenarioCounts, SearchConfig, SearchInput, SearchReport, SearchRound, SeedGroup,
    SIGNATURE_BITS,
};
pub use crate::faults::{
    apply_nudge, fault_plan_for, FaultIntensity, PlanNudge, MAX_NUDGE_SHIFT_MS, PLAN_WINDOW_MS,
};
pub use crate::harness::{CaseDigest, CaseOutcome, CaseResult, CaseRunner, TestCase};
pub use crate::oracle::{evaluate, Observation, OpResult};
pub use crate::rollout::{RolloutPlan, RolloutStep, MAX_PATH_LEN, MAX_SETTLE_SHIFT_MS};
pub use crate::scenario::Scenario;
pub use crate::translator::{translate, Translation};
pub use crate::workload::{
    Arrival, Arrivals, OpenLoopSpec, WorkloadPlan, WorkloadSpec, MAX_BURSTS,
};
pub use dup_core::VersionId;
pub use dup_simnet::{CrashPoint, CrashPointKind, Durability, TraceConfig, TraceSlice};
