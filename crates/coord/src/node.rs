//! The versioned coordination-service node (ZooKeeper-like).
//!
//! Three releases:
//!
//! - **3.4.0** — baseline; election votes carry `peerEpoch = currentEpoch`.
//! - **3.5.0** — votes carry a *proposed* epoch (`currentEpoch + 1`), and the
//!   election tally gained a strict epoch-consistency check. The combination
//!   is the ZOOKEEPER-1805 shape: a node restarting mid-rolling-upgrade
//!   receives different `peerEpoch` values from a 3.4 peer and a 3.5 peer
//!   and wedges in leader election. It takes all **three** nodes to trigger
//!   — the only 3-node case in the study (Finding 10).
//! - **3.6.0** — tolerant tally (the fix), but the snapshot gains a
//!   `required checkpoint_id` field, so checkpoints written by 3.5 fail to
//!   load (the MESOS-3834 mechanism transplanted).

use dup_core::{NodeSetup, VersionId};
use dup_simnet::{Ctx, Endpoint, Fatal, Process, SimDuration, SimTime, StepResult};
use dup_wire::{
    proto, FieldDescriptor, FieldType, Frame, MessageDescriptor, MessageValue, Schema, Value,
};
use std::collections::BTreeMap;

const TOKEN_ELECTION: u64 = 1;
const TOKEN_LEADER_PING: u64 = 2;
const TOKEN_PING_CHECK: u64 = 3;
const ELECTION_TICK: SimDuration = SimDuration::from_millis(500);
const PING_INTERVAL: SimDuration = SimDuration::from_millis(500);
const PING_TIMEOUT: SimDuration = SimDuration::from_secs(2);

fn vote_schema() -> Schema {
    Schema::new().with_message(
        MessageDescriptor::new("Vote")
            .with(FieldDescriptor::required(1, "node", FieldType::Uint32))
            .with(FieldDescriptor::required(
                2,
                "peer_epoch",
                FieldType::Uint64,
            ))
            .with(FieldDescriptor::required(3, "zxid", FieldType::Uint64)),
    )
}

/// Snapshot schema: 3.6 adds `required checkpoint_id` (the MESOS-3834 shape).
fn snapshot_schema(v: VersionId) -> Schema {
    let mut m = MessageDescriptor::new("Snapshot")
        .with(FieldDescriptor::required(1, "epoch", FieldType::Uint64))
        .with(FieldDescriptor::required(2, "zxid", FieldType::Uint64))
        .with(FieldDescriptor::repeated(
            3,
            "entries",
            FieldType::Message("Entry".into()),
        ));
    if v >= VersionId::new(3, 6, 0) {
        m = m.with(FieldDescriptor::required(
            4,
            "checkpoint_id",
            FieldType::Uint64,
        ));
    }
    Schema::new().with_message(m).with_message(
        MessageDescriptor::new("Entry")
            .with(FieldDescriptor::required(1, "key", FieldType::Str))
            .with(FieldDescriptor::required(2, "value", FieldType::Str)),
    )
}

fn sends_proposed_epoch(v: VersionId) -> bool {
    v >= VersionId::new(3, 5, 0)
}

/// The strict epoch-consistency tally exists only in 3.5.0.
fn strict_epoch_check(v: VersionId) -> bool {
    v.major == 3 && v.minor == 5
}

/// A coordination-service node.
#[derive(Clone)]
pub struct CoordNode {
    version: VersionId,
    setup: NodeSetup,
    epoch: u64,
    zxid: u64,
    data: BTreeMap<String, String>,
    leader: Option<u32>,
    in_election: bool,
    wedged: Option<String>,
    peer_votes: BTreeMap<u32, (u64, u64, u32)>,
    /// This node's vote, fixed at the start of the current election round.
    round_vote: (u64, u64, u32),
    last_leader_ping: SimTime,
}

impl CoordNode {
    /// Creates a node of `version`.
    pub fn new(version: VersionId, setup: NodeSetup) -> Self {
        CoordNode {
            version,
            setup,
            epoch: 1,
            zxid: 0,
            data: BTreeMap::new(),
            leader: None,
            in_election: false,
            wedged: None,
            peer_votes: BTreeMap::new(),
            round_vote: (0, 0, 0),
            last_leader_ping: SimTime::ZERO,
        }
    }

    fn my_vote(&self) -> (u64, u64, u32) {
        let peer_epoch = if sends_proposed_epoch(self.version) {
            self.epoch + 1
        } else {
            self.epoch
        };
        (peer_epoch, self.zxid, self.setup.index)
    }

    fn vote_bytes(&self) -> Vec<u8> {
        // While electing, a node campaigns with its round vote; settled (or
        // wedged) nodes echo their current view.
        let (e, z, n) = if self.in_election {
            self.round_vote
        } else {
            self.my_vote()
        };
        let v = MessageValue::new("Vote")
            .set("node", Value::U32(n))
            .set("peer_epoch", Value::U64(e))
            .set("zxid", Value::U64(z));
        proto::encode(&vote_schema(), &v).expect("own vote always encodes")
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_>) {
        self.in_election = true;
        self.leader = None;
        self.peer_votes.clear();
        self.round_vote = self.my_vote();
        let bytes = self.vote_bytes();
        for peer in self.setup.peers() {
            ctx.send(
                Endpoint::Node(peer),
                Frame::new(1, "vote", bytes.clone()).encode(),
            );
        }
        ctx.set_timer(ELECTION_TICK, TOKEN_ELECTION);
    }

    fn evaluate_election(&mut self, ctx: &mut Ctx<'_>) {
        if strict_epoch_check(self.version) && self.peer_votes.len() >= 2 {
            // ZOOKEEPER-1805: two peers proposed different epochs (a 3.4
            // peer and a 3.5 peer); the strict check can never succeed.
            let mut epochs: Vec<u64> = self.peer_votes.values().map(|v| v.0).collect();
            epochs.sort_unstable();
            epochs.dedup();
            if epochs.len() > 1 {
                let reason = format!("inconsistent peerEpoch values {epochs:?} in leader election");
                ctx.error(format!("leader election failed: {reason}"));
                self.wedged = Some(reason);
                self.peer_votes.clear();
                return;
            }
        }
        let mut best = self.round_vote;
        for v in self.peer_votes.values() {
            if (v.0, v.1, v.2) > best {
                best = *v;
            }
        }
        let leader = best.2;
        self.leader = Some(leader);
        self.in_election = false;
        ctx.info(format!(
            "elected node-{leader} as leader (epoch {})",
            self.epoch
        ));
        self.last_leader_ping = ctx.now();
        if leader == self.setup.index {
            ctx.set_timer(PING_INTERVAL, TOKEN_LEADER_PING);
        } else {
            ctx.set_timer(PING_TIMEOUT, TOKEN_PING_CHECK);
        }
    }

    fn snapshot(&self, ctx: &mut Ctx<'_>) -> Result<(), Fatal> {
        let schema = snapshot_schema(self.version);
        let mut snap = MessageValue::new("Snapshot")
            .set("epoch", Value::U64(self.epoch))
            .set("zxid", Value::U64(self.zxid));
        if self.version >= VersionId::new(3, 6, 0) {
            snap.put("checkpoint_id", Value::U64(self.zxid + 1));
        }
        for (k, v) in &self.data {
            snap.push_mut(
                "entries",
                Value::Msg(
                    MessageValue::new("Entry")
                        .set("key", Value::Str(k.clone()))
                        .set("value", Value::Str(v.clone())),
                ),
            );
        }
        let body = proto::encode(&schema, &snap)
            .map_err(|e| Fatal::new(format!("cannot write snapshot: {e}")))?;
        ctx.storage().write(
            "snapshot",
            Frame::new(1, "snapshot", body).encode().to_vec(),
        );
        // Snapshots are fsynced before they count (ZooKeeper syncs the
        // snapshot file before updating the epoch).
        ctx.flush("snapshot");
        Ok(())
    }

    fn load_snapshot(&mut self, ctx: &mut Ctx<'_>) -> Result<(), Fatal> {
        let Some(bytes) = ctx.storage_ref().read("snapshot").map(<[u8]>::to_vec) else {
            return Ok(());
        };
        let frame = Frame::decode(&bytes)
            .map_err(|e| Fatal::new(format!("corrupt snapshot container: {e}")))?;
        let schema = snapshot_schema(self.version);
        // MESOS-3834 shape: the new version assumes every checkpoint has the
        // id field; old checkpoints do not.
        let snap = proto::decode(&schema, "Snapshot", &frame.body)
            .map_err(|e| Fatal::new(format!("cannot load checkpoint: {e}")))?;
        self.epoch = snap
            .get_u64("epoch")
            .map_err(|e| Fatal::new(e.to_string()))?;
        self.zxid = snap
            .get_u64("zxid")
            .map_err(|e| Fatal::new(e.to_string()))?;
        for e in snap.get_all("entries") {
            if let Value::Msg(e) = e {
                if let (Ok(k), Ok(v)) = (e.get_str("key"), e.get_str("value")) {
                    self.data.insert(k.to_string(), v.to_string());
                }
            }
        }
        Ok(())
    }

    fn handle_client(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, text: &str) {
        let reply = if let Some(reason) = &self.wedged {
            format!("ERR leader election failed: {reason}")
        } else {
            let parts: Vec<&str> = text.split_whitespace().collect();
            match parts.as_slice() {
                ["HEALTH"] => match self.leader {
                    Some(_) => "OK healthy".to_string(),
                    None => "ERR no leader elected".to_string(),
                },
                ["STAT"] => format!(
                    "OK leader={} epoch={} zxid={}",
                    self.leader
                        .map(|l| l.to_string())
                        .unwrap_or_else(|| "none".into()),
                    self.epoch,
                    self.zxid
                ),
                ["SET", k, v] => {
                    if self.leader.is_none() {
                        "ERR no leader elected".to_string()
                    } else {
                        self.zxid += 1;
                        self.data.insert(k.to_string(), v.to_string());
                        "OK".to_string()
                    }
                }
                ["GET", k] => match self.data.get(*k) {
                    Some(v) => format!("OK {v}"),
                    None => "ERR not found".to_string(),
                },
                _ => format!("ERR unknown command '{text}'"),
            }
        };
        ctx.send(from, reply.into_bytes().into());
    }
}

impl Process for CoordNode {
    fn fork(&self) -> Option<Box<dyn Process>> {
        Some(Box::new(self.clone()))
    }

    fn restore_from(&mut self, src: &dyn Process) -> bool {
        let any: &dyn std::any::Any = src;
        match any.downcast_ref::<Self>() {
            Some(other) => {
                self.clone_from(other);
                true
            }
            None => false,
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        self.load_snapshot(ctx)?;
        ctx.info(format!(
            "coord node {} started (epoch {})",
            self.version, self.epoch
        ));
        self.start_election(ctx);
        Ok(())
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, payload: &[u8]) -> StepResult {
        match from {
            Endpoint::Client(_) => {
                let text = String::from_utf8_lossy(payload).into_owned();
                self.handle_client(ctx, from, &text);
                Ok(())
            }
            Endpoint::Node(n) => {
                let frame = match Frame::decode(payload) {
                    Ok(f) => f,
                    Err(e) => {
                        ctx.warn(format!("unparseable frame from node-{n}: {e}"));
                        return Ok(());
                    }
                };
                match frame.kind.as_str() {
                    "vote" => {
                        let Ok(vote) = proto::decode(&vote_schema(), "Vote", &frame.body) else {
                            ctx.warn(format!("malformed vote from node-{n}"));
                            return Ok(());
                        };
                        let v = (
                            vote.get_u64("peer_epoch").unwrap_or(0),
                            vote.get_u64("zxid").unwrap_or(0),
                            vote.get_u64("node").unwrap_or(0) as u32,
                        );
                        if self.in_election && self.wedged.is_none() {
                            self.peer_votes.insert(n, v);
                            if self.peer_votes.len() >= self.setup.peers().len() {
                                self.evaluate_election(ctx);
                            }
                        } else {
                            // Settled (or wedged) nodes echo their vote so a
                            // restarting peer can tally.
                            ctx.send(
                                Endpoint::Node(n),
                                Frame::new(1, "vote", self.vote_bytes()).encode(),
                            );
                        }
                        Ok(())
                    }
                    "ping" => {
                        self.last_leader_ping = ctx.now();
                        Ok(())
                    }
                    other => {
                        ctx.warn(format!("unknown message kind '{other}' from node-{n}"));
                        Ok(())
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> StepResult {
        match token {
            TOKEN_ELECTION => {
                if let Some(reason) = self.wedged.clone() {
                    ctx.error(format!("leader election still failing: {reason}"));
                    // Keep retrying — and keep failing while the cluster is
                    // mixed-version, like the real bug. Once every peer runs
                    // the same release the echoes agree and the retry
                    // finally succeeds.
                    self.wedged = None;
                    self.start_election(ctx);
                } else if self.in_election {
                    if !self.peer_votes.is_empty() {
                        self.evaluate_election(ctx);
                        if self.in_election || self.wedged.is_some() {
                            ctx.set_timer(ELECTION_TICK, TOKEN_ELECTION);
                        }
                    } else {
                        let bytes = self.vote_bytes();
                        for peer in self.setup.peers() {
                            ctx.send(
                                Endpoint::Node(peer),
                                Frame::new(1, "vote", bytes.clone()).encode(),
                            );
                        }
                        ctx.set_timer(ELECTION_TICK, TOKEN_ELECTION);
                    }
                }
            }
            TOKEN_LEADER_PING if self.leader == Some(self.setup.index) => {
                for peer in self.setup.peers() {
                    ctx.send(
                        Endpoint::Node(peer),
                        Frame::new(1, "ping", Vec::new()).encode(),
                    );
                }
                ctx.set_timer(PING_INTERVAL, TOKEN_LEADER_PING);
            }
            TOKEN_PING_CHECK => {
                if let Some(leader) = self.leader {
                    if leader != self.setup.index
                        && ctx.now().since(self.last_leader_ping) > PING_TIMEOUT
                    {
                        ctx.warn(format!("leader node-{leader} unreachable; re-electing"));
                        self.start_election(ctx);
                        return Ok(());
                    }
                    ctx.set_timer(PING_TIMEOUT, TOKEN_PING_CHECK);
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn on_shutdown(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        self.snapshot(ctx)?;
        ctx.info("coord node snapshotted and shut down");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_simnet::Sim;

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn boot(sim: &mut Sim, version: VersionId, n: u32) -> Vec<u32> {
        let mut ids = Vec::new();
        for i in 0..n {
            let id = sim.add_node(
                &format!("coord-host-{i}"),
                &version.to_string(),
                Box::new(CoordNode::new(version, NodeSetup::new(i, n))),
            );
            sim.start_node(id).unwrap();
            ids.push(id);
        }
        sim.run_for(SimDuration::from_secs(2));
        ids
    }

    fn cmd(sim: &mut Sim, node: u32, text: &str) -> String {
        sim.rpc(
            node,
            text.as_bytes().to_vec().into(),
            SimDuration::from_secs(2),
        )
        .map(|b| String::from_utf8_lossy(&b).into_owned())
        .unwrap_or_else(|| "TIMEOUT".to_string())
    }

    fn upgrade(sim: &mut Sim, idx: u32, to: &str, n: u32) {
        sim.stop_node(idx).unwrap();
        sim.install(
            idx,
            to,
            Box::new(CoordNode::new(v(to), NodeSetup::new(idx, n))),
        )
        .unwrap();
        sim.start_node(idx).unwrap();
    }

    #[test]
    fn cluster_elects_a_leader_and_serves() {
        let mut sim = Sim::new(1);
        let ids = boot(&mut sim, v("3.4.0"), 3);
        assert_eq!(cmd(&mut sim, ids[0], "HEALTH"), "OK healthy");
        assert_eq!(cmd(&mut sim, ids[1], "SET k v"), "OK");
        assert_eq!(cmd(&mut sim, ids[1], "GET k"), "OK v");
        // All nodes agree on the same leader.
        let stat0 = cmd(&mut sim, ids[0], "STAT");
        let stat2 = cmd(&mut sim, ids[2], "STAT");
        assert_eq!(
            stat0.split_whitespace().nth(1),
            stat2.split_whitespace().nth(1),
            "{stat0} vs {stat2}"
        );
    }

    #[test]
    fn zookeeper_1805_mid_upgrade_node_wedges_on_mixed_epochs() {
        let mut sim = Sim::new(2);
        let ids = boot(&mut sim, v("3.4.0"), 3);
        // Rolling upgrade: node 0 first — it tallies echoes from two 3.4
        // peers (consistent) and settles.
        upgrade(&mut sim, ids[0], "3.5.0", 3);
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(cmd(&mut sim, ids[0], "HEALTH"), "OK healthy");
        // Node 1 next: it receives peerEpoch e+1 from node 0 (3.5) and
        // peerEpoch e from node 2 (3.4) — the strict check wedges it.
        upgrade(&mut sim, ids[1], "3.5.0", 3);
        sim.run_for(SimDuration::from_secs(3));
        // The node oscillates between "wedged" and "retrying the election";
        // either way it cannot serve.
        let resp = cmd(&mut sim, ids[1], "HEALTH");
        assert!(resp.starts_with("ERR"), "got {resp}");
        assert!(sim.logs().matching("inconsistent peerEpoch").count() >= 1);
        // Finishing the rolling upgrade heals the cluster: once node 2 runs
        // 3.5 too, the wedged node's retry sees consistent peerEpochs.
        upgrade(&mut sim, ids[2], "3.5.0", 3);
        sim.run_for(SimDuration::from_secs(4));
        assert_eq!(cmd(&mut sim, ids[1], "HEALTH"), "OK healthy");
    }

    #[test]
    fn full_stop_3_4_to_3_5_is_clean() {
        let mut sim = Sim::new(3);
        let ids = boot(&mut sim, v("3.4.0"), 3);
        cmd(&mut sim, ids[0], "SET a 1");
        for &id in &ids {
            sim.stop_node(id).unwrap();
        }
        for &id in &ids {
            upgrade(&mut sim, id, "3.5.0", 3);
        }
        sim.run_for(SimDuration::from_secs(3));
        for &id in &ids {
            assert_eq!(cmd(&mut sim, id, "HEALTH"), "OK healthy");
        }
        assert_eq!(cmd(&mut sim, ids[0], "GET a"), "OK 1");
    }

    #[test]
    fn mesos_3834_shape_checkpoint_missing_id_crashes_3_6() {
        let mut sim = Sim::new(4);
        let ids = boot(&mut sim, v("3.5.0"), 3);
        cmd(&mut sim, ids[0], "SET a 1");
        for &id in &ids {
            sim.stop_node(id).unwrap();
        }
        for &id in &ids {
            upgrade(&mut sim, id, "3.6.0", 3);
        }
        sim.run_for(SimDuration::from_secs(1));
        // Every node crashes: the checkpoint has no checkpoint_id.
        assert_eq!(sim.crashed_nodes().len(), 3);
        assert!(sim.crash_reason(ids[0]).unwrap().contains("checkpoint_id"));
    }

    #[test]
    fn fresh_3_6_cluster_is_fine() {
        let mut sim = Sim::new(5);
        let ids = boot(&mut sim, v("3.6.0"), 3);
        assert_eq!(cmd(&mut sim, ids[0], "HEALTH"), "OK healthy");
        // And a 3.6 restart reads its own checkpoint fine.
        upgrade(&mut sim, ids[0], "3.6.0", 3);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(cmd(&mut sim, ids[0], "HEALTH"), "OK healthy");
    }

    #[test]
    fn leader_failover_after_kill() {
        let mut sim = Sim::new(6);
        let ids = boot(&mut sim, v("3.6.0"), 3);
        let stat = cmd(&mut sim, ids[0], "STAT");
        let leader: u32 = stat
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.strip_prefix("leader="))
            .and_then(|s| s.parse().ok())
            .unwrap();
        sim.kill_node(leader).unwrap();
        sim.run_for(SimDuration::from_secs(5));
        let other = ids.iter().copied().find(|&i| i != leader).unwrap();
        assert_eq!(cmd(&mut sim, other, "HEALTH"), "OK healthy");
    }
}
