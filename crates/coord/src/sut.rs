//! The [`SystemUnderTest`] implementation for the mini coordination service.

use crate::node::CoordNode;
use dup_core::{
    ClientOp, NodeSetup, SystemUnderTest, TranslationTable, UnitStatement, UnitTest, VersionId,
    WorkloadPhase,
};
use dup_simnet::Process;

/// The mini ZooKeeper-like service as a DUPTester subject.
#[derive(Debug, Default, Clone, Copy)]
pub struct CoordSystem;

impl CoordSystem {
    /// The release history, oldest first.
    pub fn release_history() -> Vec<VersionId> {
        ["3.4.0", "3.5.0", "3.6.0"]
            .iter()
            .map(|s| s.parse().expect("static versions parse"))
            .collect()
    }
}

impl SystemUnderTest for CoordSystem {
    fn name(&self) -> &'static str {
        "zookeeper-mini"
    }

    fn versions(&self) -> Vec<VersionId> {
        Self::release_history()
    }

    fn cluster_size(&self) -> u32 {
        3 // ZOOKEEPER-1805 needs all three (Finding 10's one 3-node case).
    }

    fn spawn(&self, version: VersionId, setup: &NodeSetup) -> Box<dyn Process> {
        Box::new(CoordNode::new(version, setup.clone()))
    }

    fn stress_ops(
        &self,
        _seed: u64,
        phase: WorkloadPhase,
        _client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    ) {
        match phase {
            WorkloadPhase::BeforeUpgrade => {
                for i in 0..5 {
                    emit(ClientOp::new(i % 3, format!("SET key{i} val{i}")));
                }
            }
            WorkloadPhase::DuringUpgrade => {
                for i in 0..6 {
                    emit(ClientOp::new(i % 3, "STAT".to_string()));
                }
            }
            WorkloadPhase::AfterUpgrade => {
                for node in 0..3 {
                    emit(ClientOp::new(node, "HEALTH"));
                    emit(ClientOp::new(node, format!("GET key{node}")));
                }
                emit(ClientOp::new(0, "SET post done"));
            }
        }
    }

    fn open_loop_op(
        &self,
        key: u64,
        client: u64,
        read: bool,
        _client_version: VersionId,
    ) -> ClientOp {
        // Znode traffic routed by key; reads of absent znodes return the
        // benign "ERR not found".
        let node = (key % 3) as u32;
        if read {
            ClientOp::new(node, format!("GET olk{key}"))
        } else {
            ClientOp::new(node, format!("SET olk{key} c{client}"))
        }
    }

    fn unit_tests(&self) -> Vec<UnitTest> {
        vec![UnitTest::new(
            "testQuorumWrites",
            vec![
                UnitStatement::call("setData", &["unit_key", "unit_val"]),
                UnitStatement::call("getData", &["unit_key"]),
            ],
        )]
    }

    fn translation(&self) -> TranslationTable {
        TranslationTable::new()
            .rule("setData", "SET {0} {1}")
            .rule("getData", "GET {0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_nodes_always() {
        assert_eq!(CoordSystem.cluster_size(), 3);
        assert_eq!(CoordSystem::release_history().len(), 3);
    }

    // Test-only compat shim over the streaming op API.
    fn stress_workload(
        s: &dyn SystemUnderTest,
        seed: u64,
        phase: WorkloadPhase,
        v: VersionId,
    ) -> Vec<ClientOp> {
        let mut ops = Vec::new();
        s.stress_ops(seed, phase, v, &mut |op| ops.push(op));
        ops
    }

    #[test]
    fn workload_reads_back_what_it_wrote() {
        let s = CoordSystem;
        let v = VersionId::new(3, 4, 0);
        let before = stress_workload(&s, 1, WorkloadPhase::BeforeUpgrade, v);
        let after = stress_workload(&s, 1, WorkloadPhase::AfterUpgrade, v);
        // key0..key2 are written to nodes 0..2 and read back from the same.
        for n in 0..3u32 {
            assert!(before
                .iter()
                .any(|op| op.node == n && op.command == format!("SET key{n} val{n}")));
            assert!(after
                .iter()
                .any(|op| op.node == n && op.command == format!("GET key{n}")));
        }
    }
}
