//! # dup-coord — a miniature versioned coordination service
//!
//! A ZooKeeper-like 3-node service (leader election with peerEpoch votes,
//! snapshot checkpoints) built as a DUPTester subject. Three releases:
//!
//! | Seeded bug | Pair | Mechanism |
//! |---|---|---|
//! | ZOOKEEPER-1805 | 3.4 → 3.5 rolling | a restarting node receives different `peerEpoch` values from a 3.4 and a 3.5 peer and wedges in election — needs all 3 nodes |
//! | MESOS-3834 shape | 3.5 → 3.6 | the new version requires a `checkpoint_id` field old checkpoints never wrote; every upgraded node crashes on load |
//!
//! The full-stop 3.4 → 3.5 path is a clean control (the wedge needs mixed
//! versions at election time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod sut;

pub use crate::node::CoordNode;
pub use crate::sut::CoordSystem;
